//! Baseline MRDTs merged through *invertible relational reification* — a
//! faithful re-creation of the merge strategy of **Quark** (Kaki et al.,
//! “Mergeable Replicated Data Types”, OOPSLA 2019), which the Peepul paper
//! evaluates against in §7.2.1 (Figs. 12 and 13).
//!
//! Quark derives merges automatically: the concrete state is *abstracted*
//! into its characteristic relations (sets capturing membership, ordering,
//! …), the relations are merged set-theoretically with
//! `(l ∩ a ∩ b) ∪ (a − l) ∪ (b − l)`, and the merged relations are
//! *concretized* back into a data structure. The price:
//!
//! * a queue's ordering relation has `n²` entries
//!   ([`queue::QuarkQueue`]) — reifying, merging and re-linearising it
//!   dominates merge time (Fig. 12);
//! * set merges operate on `(element, id)` pairs and cannot coalesce
//!   duplicate pairs for the same element, so OR-sets accumulate
//!   duplicates without bound ([`or_set::QuarkOrSet`], Fig. 13).
//!
//! Operation/value types are shared with `peepul-types` so the benchmark
//! harness can drive Peepul and Quark data types through identical
//! workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod or_set;
pub mod queue;
pub mod relations;

pub use or_set::QuarkOrSet;
pub use queue::QuarkQueue;

//! Characteristic relations and their set-theoretic merge.
//!
//! Quark models every data type by relations over its contents and merges
//! the *relations*, not the structures. The single merge rule, applied to
//! every characteristic relation `R`:
//!
//! ```text
//! R_merged = (R_lca ∩ R_a ∩ R_b) ∪ (R_a − R_lca) ∪ (R_b − R_lca)
//! ```
//!
//! — keep what all three versions agree on, plus whatever either branch
//! added.

use std::collections::HashSet;
use std::hash::Hash;

/// The relational three-way merge on a characteristic relation.
///
/// # Example
///
/// ```
/// use std::collections::HashSet;
/// use peepul_quark::relations::merge_relation;
///
/// let l: HashSet<u32> = [1, 2, 3].into();
/// let a: HashSet<u32> = [1, 3, 4].into();     // removed 2, added 4
/// let b: HashSet<u32> = [1, 2, 5].into();     // removed 3, added 5
/// let m = merge_relation(&l, &a, &b);
/// assert_eq!(m, [1, 4, 5].into());
/// ```
pub fn merge_relation<T: Eq + Hash + Clone>(
    lca: &HashSet<T>,
    a: &HashSet<T>,
    b: &HashSet<T>,
) -> HashSet<T> {
    let mut out: HashSet<T> = lca
        .iter()
        .filter(|x| a.contains(*x) && b.contains(*x))
        .cloned()
        .collect();
    out.extend(a.difference(lca).cloned());
    out.extend(b.difference(lca).cloned());
    out
}

/// The binary *ordering* characteristic relation of a sequence: every
/// ordered pair `(s[i], s[j])` with `i < j` — `n(n−1)/2` entries. This
/// quadratic reification is the root cause of Quark's queue-merge cost
/// (paper, Fig. 12).
pub fn ordering_relation<T: Eq + Hash + Clone>(seq: &[T]) -> HashSet<(T, T)> {
    let mut rel = HashSet::with_capacity(seq.len() * seq.len() / 2);
    for i in 0..seq.len() {
        for j in i + 1..seq.len() {
            rel.insert((seq[i].clone(), seq[j].clone()));
        }
    }
    rel
}

/// The unary *membership* characteristic relation of a sequence.
pub fn membership_relation<T: Eq + Hash + Clone>(seq: &[T]) -> HashSet<T> {
    seq.iter().cloned().collect()
}

/// Concretization for sequences: linearise a membership relation so that
/// the merged ordering relation is respected, interleaving elements the
/// relation leaves unordered by the smallest `key` first (Kahn's
/// topological sort with a min-key frontier). The edge scan makes this
/// `O(n²)` — the cost Fig. 12 of the paper measures.
pub fn linearise<T, K, F>(members: &HashSet<T>, ordering: &HashSet<(T, T)>, key: F) -> Vec<T>
where
    T: Eq + Hash + Clone,
    F: Fn(&T) -> K,
    K: Ord,
{
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};

    let nodes: Vec<T> = members.iter().cloned().collect();
    let index: HashMap<&T, usize> = nodes.iter().enumerate().map(|(i, x)| (x, i)).collect();
    let mut indegree = vec![0usize; nodes.len()];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (x, y) in ordering {
        if let (Some(&i), Some(&j)) = (index.get(x), index.get(y)) {
            indegree[j] += 1;
            successors[i].push(j);
        }
    }
    let mut frontier: BinaryHeap<Reverse<(K, usize)>> = indegree
        .iter()
        .enumerate()
        .filter(|(_, d)| **d == 0)
        .map(|(i, _)| Reverse((key(&nodes[i]), i)))
        .collect();
    let mut out = Vec::with_capacity(nodes.len());
    while let Some(Reverse((_, i))) = frontier.pop() {
        out.push(nodes[i].clone());
        for &j in &successors[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                frontier.push(Reverse((key(&nodes[j]), j)));
            }
        }
    }
    debug_assert_eq!(
        out.len(),
        nodes.len(),
        "merged ordering relation is acyclic"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_agreement_and_additions() {
        let l: HashSet<u32> = [1, 2].into();
        let a: HashSet<u32> = [1, 2, 3].into();
        let b: HashSet<u32> = [2].into();
        // 1 removed by b, 2 kept by all, 3 added by a.
        assert_eq!(merge_relation(&l, &a, &b), [2, 3].into());
    }

    #[test]
    fn ordering_relation_is_quadratic() {
        let seq: Vec<u32> = (0..10).collect();
        let rel = ordering_relation(&seq);
        assert_eq!(rel.len(), 45); // 10·9/2
        assert!(rel.contains(&(0, 9)));
        assert!(!rel.contains(&(9, 0)));
    }

    #[test]
    fn linearise_recovers_original_order() {
        let seq: Vec<u32> = vec![4, 1, 3, 2];
        let members = membership_relation(&seq);
        let ordering = ordering_relation(&seq);
        assert_eq!(linearise(&members, &ordering, |x| *x), seq);
    }

    #[test]
    fn linearise_interleaves_unordered_elements_by_key() {
        // 1 and 2 ordered; 10 unrelated to both → falls back to key order.
        let members: HashSet<u32> = [1, 2, 10].into();
        let ordering: HashSet<(u32, u32)> = [(1, 2)].into();
        let got = linearise(&members, &ordering, |x| *x);
        assert_eq!(got, vec![1, 2, 10]);
    }
}

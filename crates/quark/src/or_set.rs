//! The Quark OR-set: relational merge over `(element, id)` pairs, unable
//! to coalesce duplicates.
//!
//! Because Quark derives the merge from the characteristic (set) relation
//! over `(element, id)` pairs, a duplicate `add` must insert a fresh pair —
//! collapsing pairs for the same element would not be expressible as a set
//! merge of the reified relation. Likewise the derived interface cannot
//! bulk-remove the duplicates: the Peepul paper notes that *“Quark does not
//! allow duplicate elements to be removed from the OR-set”* (§7.2.1), so a
//! client-level `remove(x)` retires a single observed pair and any
//! accumulated duplicates of `x` stay behind. Fig. 13 measures the
//! consequence: under a 50:50 add/remove workload the Quark set's footprint
//! keeps growing with the operation count (a reflected random walk per
//! element — the “non-linear growth” the paper describes), while Peepul's
//! space-efficient OR-set stays bounded by the universe of values.

use crate::relations::merge_relation;
use peepul_core::{Mrdt, Timestamp};
use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::hash::Hash;

pub use peepul_types::or_set::{OrSetOp, OrSetOutput, OrSetQuery};

/// OR-set with relationally derived merge (the Quark strategy).
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_quark::or_set::{QuarkOrSet, OrSetOp};
///
/// let ts = |t| Timestamp::new(t, ReplicaId::new(0));
/// let s: QuarkOrSet<u32> = QuarkOrSet::initial();
/// let (s, _) = s.apply(&OrSetOp::Add(1), ts(1));
/// let (s, _) = s.apply(&OrSetOp::Add(1), ts(2)); // duplicate pair!
/// assert_eq!(s.pair_count(), 2);
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct QuarkOrSet<T> {
    /// `(element, id)` pairs; duplicates per element accumulate.
    pairs: Vec<(T, Timestamp)>,
}

impl<T: Ord> QuarkOrSet<T> {
    /// Number of stored pairs including duplicates — the series Fig. 13
    /// plots.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of distinct elements.
    pub fn len(&self) -> usize {
        self.pairs
            .iter()
            .map(|(x, _)| x)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Whether the set is observably empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, x: &T) -> bool {
        self.pairs.iter().any(|(y, _)| y == x)
    }

    /// The distinct elements in order.
    pub fn elements(&self) -> Vec<T>
    where
        T: Clone,
    {
        let set: BTreeSet<&T> = self.pairs.iter().map(|(x, _)| x).collect();
        set.into_iter().cloned().collect()
    }
}

impl<T: fmt::Debug> fmt::Debug for QuarkOrSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(&self.pairs).finish()
    }
}

impl<T: Ord + Clone + Eq + Hash + peepul_core::Wire + fmt::Debug> Mrdt for QuarkOrSet<T> {
    type Op = OrSetOp<T>;
    type Value = ();
    type Query = OrSetQuery<T>;
    type Output = OrSetOutput<T>;

    fn initial() -> Self {
        QuarkOrSet { pairs: Vec::new() }
    }

    fn apply(&self, op: &OrSetOp<T>, t: Timestamp) -> (Self, ()) {
        match op {
            OrSetOp::Add(x) => {
                // Always a fresh pair: the relational representation has no
                // way to express "refresh in place".
                let mut next = self.clone();
                next.pairs.push((x.clone(), t));
                (next, ())
            }
            OrSetOp::Remove(x) => {
                // Retire a single observed pair (the oldest): the derived
                // relational interface cannot coalesce or bulk-remove
                // duplicates of the same element.
                let mut next = self.clone();
                if let Some(pos) = next.pairs.iter().position(|(y, _)| y == x) {
                    next.pairs.remove(pos);
                }
                (next, ())
            }
        }
    }

    fn query(&self, q: &OrSetQuery<T>) -> OrSetOutput<T> {
        match q {
            OrSetQuery::Lookup(x) => OrSetOutput::Present(self.contains(x)),
            OrSetQuery::Read => OrSetOutput::Elements(self.elements()),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        // Abstraction → relational merge → concretization.
        let rl: HashSet<(T, Timestamp)> = lca.pairs.iter().cloned().collect();
        let ra: HashSet<(T, Timestamp)> = a.pairs.iter().cloned().collect();
        let rb: HashSet<(T, Timestamp)> = b.pairs.iter().cloned().collect();
        let merged = merge_relation(&rl, &ra, &rb);
        let mut pairs: Vec<(T, Timestamp)> = merged.into_iter().collect();
        pairs.sort_by_key(|(_, t)| *t);
        QuarkOrSet { pairs }
    }

    fn observably_equal(&self, other: &Self) -> bool {
        let mine: BTreeSet<&(T, Timestamp)> = self.pairs.iter().collect();
        let theirs: BTreeSet<&(T, Timestamp)> = other.pairs.iter().collect();
        mine == theirs
    }
}

/// Canonical codec of the baseline OR-set: the `(element, id)` pairs in
/// stored order (sorted by timestamp, as the relational merge leaves
/// them).
impl<T: peepul_core::Wire> peepul_core::Wire for QuarkOrSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pairs.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(QuarkOrSet {
            pairs: peepul_core::Wire::decode(input)?,
        })
    }

    fn max_tick(&self) -> u64 {
        peepul_core::Wire::max_tick(&self.pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    #[test]
    fn duplicates_accumulate_across_adds() {
        let mut s: QuarkOrSet<u32> = QuarkOrSet::initial();
        for i in 0..10 {
            s = s.apply(&OrSetOp::Add(1), ts(i + 1, 0)).0;
        }
        assert_eq!(s.pair_count(), 10);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicates_survive_merges() {
        let (lca, _) = QuarkOrSet::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
        let (a, _) = lca.apply(&OrSetOp::Add(1), ts(2, 1));
        let (b, _) = lca.apply(&OrSetOp::Add(1), ts(3, 2));
        let m = QuarkOrSet::merge(&lca, &a, &b);
        // All three pairs for the same element survive the set merge.
        assert_eq!(m.pair_count(), 3);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn add_wins_semantics_matches_peepul() {
        let (lca, _) = QuarkOrSet::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
        let (a, _) = lca.apply(&OrSetOp::Remove(1), ts(2, 1));
        let (b, _) = lca.apply(&OrSetOp::Add(1), ts(3, 2));
        let m = QuarkOrSet::merge(&lca, &a, &b);
        assert!(m.contains(&1));
        assert_eq!(m.pair_count(), 1); // only the fresh pair
    }

    #[test]
    fn remove_retires_only_one_pair() {
        let mut s: QuarkOrSet<u32> = QuarkOrSet::initial();
        s = s.apply(&OrSetOp::Add(1), ts(1, 0)).0;
        s = s.apply(&OrSetOp::Add(1), ts(2, 0)).0;
        s = s.apply(&OrSetOp::Remove(1), ts(3, 0)).0;
        // The duplicate survives the remove — the element is still present.
        assert!(s.contains(&1));
        assert_eq!(s.pair_count(), 1);
        // Removing an absent element is a no-op.
        let s2 = s.apply(&OrSetOp::Remove(9), ts(4, 0)).0;
        assert_eq!(s2.pair_count(), 1);
    }

    #[test]
    fn duplicate_free_workloads_agree_with_peepul_or_set() {
        use peepul_types::or_set::OrSet;
        // When no element is ever added twice while present, Quark and
        // Peepul agree observably (the divergence is *only* about
        // duplicates).
        let mut tick = 0u64;
        let mut next = |r: u32| {
            tick += 1;
            ts(tick, r)
        };
        let mut pl: OrSet<u32> = OrSet::initial();
        let mut ql: QuarkOrSet<u32> = QuarkOrSet::initial();
        for x in 0..10u32 {
            let t = next(0);
            pl = pl.apply(&OrSetOp::Add(x), t).0;
            ql = ql.apply(&OrSetOp::Add(x), t).0;
        }
        let (mut pa, mut qa) = (pl.clone(), ql.clone());
        let (mut pb, mut qb) = (pl.clone(), ql.clone());
        for x in 0..5u32 {
            let t = next(1);
            pa = pa.apply(&OrSetOp::Remove(x), t).0;
            qa = qa.apply(&OrSetOp::Remove(x), t).0;
        }
        for x in 20..23u32 {
            let t = next(2);
            pb = pb.apply(&OrSetOp::Add(x), t).0;
            qb = qb.apply(&OrSetOp::Add(x), t).0;
        }
        let pm = OrSet::merge(&pl, &pa, &pb);
        let qm = QuarkOrSet::merge(&ql, &qa, &qb);
        assert_eq!(pm.elements(), qm.elements());
    }

    #[test]
    fn footprint_grows_under_balanced_workload() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // The Fig. 13 mechanism: with a 50:50 add/remove mix, each
        // element's pair count performs a reflected random walk, so the
        // total footprint drifts upward without bound while the universe
        // stays fixed.
        let mut rng = StdRng::seed_from_u64(5);
        let mut s: QuarkOrSet<u32> = QuarkOrSet::initial();
        let mut halfway = 0;
        for i in 0..6000u64 {
            let x = rng.gen_range(0..50);
            let op = if rng.gen_bool(0.5) {
                OrSetOp::Add(x)
            } else {
                OrSetOp::Remove(x)
            };
            s = s.apply(&op, ts(i + 1, 0)).0;
            if i == 3000 {
                halfway = s.pair_count();
            }
        }
        assert!(s.pair_count() > 50, "footprint exceeds the universe");
        assert!(
            s.pair_count() > halfway,
            "footprint keeps drifting upward: {} then {}",
            halfway,
            s.pair_count()
        );
    }
}

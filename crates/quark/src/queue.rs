//! The Quark queue: same sequential two-list queue as
//! [`peepul_types::queue::Queue`], merged through relational reification.
//!
//! The merge (§7.2.1 of the Peepul paper) abstracts each of the three
//! versions into its characteristic relations — unary membership and the
//! binary ordering relation with `n²` entries — merges the relations
//! set-theoretically, and concretizes the result by re-linearising the
//! merged ordering. Building, merging and consuming the quadratic ordering
//! relation is what makes this merge orders of magnitude slower than
//! Peepul's linear-time queue merge (Fig. 12), despite identical local
//! operations.

use crate::relations::{linearise, membership_relation, merge_relation, ordering_relation};
use peepul_core::{Mrdt, Timestamp};
use peepul_types::queue::Entry;
use std::fmt;
use std::hash::Hash;

pub use peepul_types::queue::{QueueOp, QueueQuery, QueueValue};

/// Two-list queue whose merge reifies membership and ordering relations
/// (the Quark strategy).
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_quark::queue::{QuarkQueue, QueueOp};
///
/// let ts = |t, r| Timestamp::new(t, ReplicaId::new(r));
/// let lca = QuarkQueue::initial();
/// let a = lca.apply(&QueueOp::Enqueue("a".to_owned()), ts(1, 1)).0;
/// let b = lca.apply(&QueueOp::Enqueue("b".to_owned()), ts(2, 2)).0;
/// let m = QuarkQueue::merge(&lca, &a, &b);
/// let vals: Vec<String> = m.to_list().into_iter().map(|(_, v)| v).collect();
/// assert_eq!(vals, ["a", "b"]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct QuarkQueue<T> {
    /// Next-out at the end (popped).
    front: Vec<Entry<T>>,
    /// Most recent enqueue at the end (pushed).
    rear: Vec<Entry<T>>,
}

impl<T: Clone> QuarkQueue<T> {
    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.front.len() + self.rear.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty() && self.rear.is_empty()
    }

    /// The queue in dequeue order.
    pub fn to_list(&self) -> Vec<Entry<T>> {
        let mut out: Vec<Entry<T>> = self.front.iter().rev().cloned().collect();
        out.extend(self.rear.iter().cloned());
        out
    }

    fn from_list(list: Vec<Entry<T>>) -> Self {
        QuarkQueue {
            front: list.into_iter().rev().collect(),
            rear: Vec::new(),
        }
    }
}

impl<T: Clone + PartialEq + Eq + Hash + peepul_core::Wire + fmt::Debug> Mrdt for QuarkQueue<T> {
    type Op = QueueOp<T>;
    type Value = QueueValue<T>;
    type Query = QueueQuery;
    type Output = Option<Entry<T>>;

    fn initial() -> Self {
        QuarkQueue {
            front: Vec::new(),
            rear: Vec::new(),
        }
    }

    fn apply(&self, op: &QueueOp<T>, t: Timestamp) -> (Self, QueueValue<T>) {
        match op {
            QueueOp::Enqueue(v) => {
                let mut next = self.clone();
                next.rear.push((t, v.clone()));
                (next, QueueValue::Ack)
            }
            QueueOp::Dequeue => {
                let mut next = self.clone();
                if next.front.is_empty() {
                    next.front = std::mem::take(&mut next.rear);
                    next.front.reverse();
                }
                let popped = next.front.pop();
                (next, QueueValue::Dequeued(popped))
            }
        }
    }

    fn query(&self, q: &QueueQuery) -> Option<Entry<T>> {
        match q {
            QueueQuery::Peek => self.front.last().or(self.rear.first()).cloned(),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        let (sl, sa, sb) = (lca.to_list(), a.to_list(), b.to_list());

        // Abstraction: reify each version into its characteristic
        // relations. The ordering relation is quadratic in queue length.
        let mem_l = membership_relation(&sl);
        let mem_a = membership_relation(&sa);
        let mem_b = membership_relation(&sb);
        let ob_l = ordering_relation(&sl);
        let ob_a = ordering_relation(&sa);
        let ob_b = ordering_relation(&sb);

        // Relational merge of both relations.
        let mem_m = merge_relation(&mem_l, &mem_a, &mem_b);
        let ob_m = merge_relation(&ob_l, &ob_a, &ob_b);

        // Concretization: rebuild a sequence satisfying the merged
        // ordering, breaking cross-branch ties by enqueue timestamp.
        let merged = linearise(&mem_m, &ob_m, |(t, _): &Entry<T>| *t);
        QuarkQueue::from_list(merged)
    }

    fn observably_equal(&self, other: &Self) -> bool {
        self.to_list() == other.to_list()
    }
}

impl<T: fmt::Debug> fmt::Debug for QuarkQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QuarkQueue(front≤{:?}, rear≥{:?})",
            self.front, self.rear
        )
    }
}

/// Canonical codec of the baseline queue: the two lists in declaration
/// order, each entry as `(timestamp, value)` — the same shape as the
/// Peepul queue's encoding, so the baseline replicates and reopens too.
impl<T: peepul_core::Wire> peepul_core::Wire for QuarkQueue<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.front.encode(out);
        self.rear.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(QuarkQueue {
            front: peepul_core::Wire::decode(input)?,
            rear: peepul_core::Wire::decode(input)?,
        })
    }

    fn max_tick(&self) -> u64 {
        peepul_core::Wire::max_tick(&self.front).max(peepul_core::Wire::max_tick(&self.rear))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;
    use peepul_types::queue::Queue;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    fn enq(q: &QuarkQueue<u32>, v: u32, t: Timestamp) -> QuarkQueue<u32> {
        q.apply(&QueueOp::Enqueue(v), t).0
    }

    fn deq(q: &QuarkQueue<u32>, t: Timestamp) -> QuarkQueue<u32> {
        q.apply(&QueueOp::Dequeue, t).0
    }

    #[test]
    fn local_fifo_behaviour_matches_peepul() {
        let mut q = QuarkQueue::initial();
        for v in 1..=5u32 {
            q = enq(&q, v, ts(v as u64, 0));
        }
        let (q, v) = q.apply(&QueueOp::Dequeue, ts(9, 0));
        assert_eq!(v, QueueValue::Dequeued(Some((ts(1, 0), 1))));
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn figure_11_merge_agrees_with_peepul_queue() {
        // Drive the paper's Fig. 11 scenario through both queues.
        let mut lq: Queue<u32> = Queue::initial();
        let mut kq: QuarkQueue<u32> = QuarkQueue::initial();
        for v in 1..=5u32 {
            lq = lq.apply(&QueueOp::Enqueue(v), ts(v as u64, 0)).0;
            kq = enq(&kq, v, ts(v as u64, 0));
        }
        let pa = lq.apply(&QueueOp::Dequeue, ts(5, 1)).0;
        let pa = pa.apply(&QueueOp::Dequeue, ts(6, 1)).0;
        let pa = pa.apply(&QueueOp::Enqueue(8), ts(8, 1)).0;
        let pa = pa.apply(&QueueOp::Enqueue(9), ts(9, 1)).0;
        let qa = deq(&kq, ts(5, 1));
        let qa = deq(&qa, ts(6, 1));
        let qa = enq(&qa, 8, ts(8, 1));
        let qa = enq(&qa, 9, ts(9, 1));

        let pb = lq.apply(&QueueOp::Dequeue, ts(5, 2)).0;
        let pb = pb.apply(&QueueOp::Enqueue(6), ts(6, 2)).0;
        let pb = pb.apply(&QueueOp::Enqueue(7), ts(7, 2)).0;
        let qb = deq(&kq, ts(5, 2));
        let qb = enq(&qb, 6, ts(6, 2));
        let qb = enq(&qb, 7, ts(7, 2));

        let pm = Queue::merge(&lq, &pa, &pb);
        let qm = QuarkQueue::merge(&kq, &qa, &qb);
        assert_eq!(pm.to_list(), qm.to_list());
        let vals: Vec<u32> = qm.to_list().into_iter().map(|(_, v)| v).collect();
        assert_eq!(vals, [3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn random_divergence_agrees_with_peepul_merge() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let mut tick = 0u64;
            let mut next = |r: u32| {
                tick += 1;
                ts(tick, r)
            };
            let mut pl: Queue<u32> = Queue::initial();
            let mut ql: QuarkQueue<u32> = QuarkQueue::initial();
            for v in 0..rng.gen_range(0..20u32) {
                let t = next(0);
                pl = pl.apply(&QueueOp::Enqueue(v), t).0;
                ql = ql.apply(&QueueOp::Enqueue(v), t).0;
            }
            let mut branches = Vec::new();
            for r in 1..=2u32 {
                let (mut p, mut q) = (pl.clone(), ql.clone());
                for i in 0..rng.gen_range(0..15u32) {
                    let t = next(r);
                    if rng.gen_bool(0.4) {
                        p = p.apply(&QueueOp::Dequeue, t).0;
                        q = q.apply(&QueueOp::Dequeue, t).0;
                    } else {
                        let v = 100 * r + i;
                        p = p.apply(&QueueOp::Enqueue(v), t).0;
                        q = q.apply(&QueueOp::Enqueue(v), t).0;
                    }
                }
                branches.push((p, q));
            }
            let pm = Queue::merge(&pl, &branches[0].0, &branches[1].0);
            let qm = QuarkQueue::merge(&ql, &branches[0].1, &branches[1].1);
            assert_eq!(pm.to_list(), qm.to_list(), "trial {trial}");
        }
    }

    #[test]
    fn merge_cost_grows_superlinearly() {
        // Not a benchmark — a sanity check that the ordering relation
        // really is quadratic in the queue length.
        let mut q = QuarkQueue::initial();
        for v in 0..100u32 {
            q = enq(&q, v, ts(v as u64 + 1, 0));
        }
        let rel = crate::relations::ordering_relation(&q.to_list());
        assert_eq!(rel.len(), 100 * 99 / 2);
    }
}

//! The shared accept-loop machinery: a threaded TCP frame server with a
//! connection cap and accept-time backpressure.
//!
//! [`FrameServer`] owns the socket mechanics every daemon in this
//! workspace needs and nothing else: bind, accept, one serving thread per
//! connection speaking the PPL1 frame protocol of [`crate::tcp`], a hard
//! cap on concurrent connections (the acceptor *stops accepting* when the
//! cap is reached — excess clients queue in the listen backlog instead of
//! exhausting threads), and a shutdown that interrupts idle reads and
//! joins every serving thread.
//!
//! What the frames *mean* is supplied by a [`FrameService`]: a
//! `Send + Sync` request handler plus a per-connection session value it
//! may thread state through (authentication, tenant namespaces, counters —
//! whatever the protocol above needs). [`crate::TcpServer`] is the
//! smallest possible service (stateless replication frames against one
//! [`Replica`](crate::Replica)); `peepul-server` layers a multi-tenant KV
//! session protocol over the same loop.

use crate::error::NetError;
use crate::tcp::{read_frame_polling, write_frame, ServerRead};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a serving thread waits in `read` before re-checking the
/// shutdown flag. Bounds both shutdown latency and the busy-poll rate of
/// idle connections.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A frame protocol served by a [`FrameServer`]: how to start a
/// connection's session and how to answer one request frame.
///
/// One service value is shared by every serving thread (hence
/// `Send + Sync`); per-connection state lives in the `Session` value the
/// server creates at accept time and threads through every call on that
/// connection.
pub trait FrameService: Send + Sync + 'static {
    /// Per-connection state (tenant bindings, counters, …). Use `()` for
    /// stateless protocols.
    type Session: Send + 'static;

    /// Called once when a connection is accepted.
    fn open_session(&self) -> Self::Session;

    /// Answers one request frame. The returned bytes are written back as
    /// the response frame.
    fn handle(&self, frame: &[u8], session: &mut Self::Session) -> Vec<u8>;
}

/// A stateless [`FrameService`] from a plain handler function — enough
/// for protocols without per-connection state, like the replication
/// protocol behind [`crate::TcpServer`].
pub struct FnService<F>(pub F);

impl<F> std::fmt::Debug for FnService<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnService(..)")
    }
}

impl<F> FrameService for FnService<F>
where
    F: Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
{
    type Session = ();

    fn open_session(&self) {}

    fn handle(&self, frame: &[u8], _session: &mut ()) -> Vec<u8> {
        (self.0)(frame)
    }
}

/// Tuning knobs for a [`FrameServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Hard cap on concurrently served connections. When reached, the
    /// acceptor waits for a serving thread to finish before accepting
    /// again — backpressure lands at accept time (clients queue in the
    /// OS listen backlog), not as unbounded threads.
    pub max_connections: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_connections: 64,
        }
    }
}

/// Counters a running server exposes (all monotone except `active`).
#[derive(Default, Debug)]
struct Stats {
    /// Currently served connections (guarded by the backpressure mutex's
    /// companion — kept atomic so readers need no lock).
    active: AtomicUsize,
    /// High-water mark of `active`.
    peak: AtomicUsize,
    /// Connections accepted over the server's lifetime.
    accepted: AtomicU64,
    /// Request frames answered over the server's lifetime.
    frames: AtomicU64,
}

/// A cloneable live view of a [`FrameServer`]'s connection counters.
///
/// Create one up front with [`ConnStats::default`] and hand it to
/// [`FrameServer::bind_with_stats`] so the *service* can read the
/// counters it is being served under (e.g. a status command reporting
/// active connections) — the server updates the same shared cells.
#[derive(Clone, Debug, Default)]
pub struct ConnStats(Arc<Stats>);

impl ConnStats {
    /// Currently served connections.
    pub fn active(&self) -> usize {
        self.0.active.load(Ordering::SeqCst)
    }

    /// The most connections ever served at once.
    pub fn peak(&self) -> usize {
        self.0.peak.load(Ordering::SeqCst)
    }

    /// Connections accepted over the server's lifetime.
    pub fn accepted(&self) -> u64 {
        self.0.accepted.load(Ordering::SeqCst)
    }

    /// Request frames answered over the server's lifetime.
    pub fn frames(&self) -> u64 {
        self.0.frames.load(Ordering::SeqCst)
    }

    /// Publishes these connection counters as live callback gauges on an
    /// observability registry, so they appear in the same exposition as
    /// every other metric instead of being reachable only through the
    /// handle returned at server construction. Each gauge reads the
    /// shared cells at render time — no polling thread, no staleness.
    pub fn register_gauges(&self, registry: &peepul_obs::Registry) {
        let s = self.clone();
        registry.gauge_fn("peepul_server_conns_active", move || s.active() as f64);
        let s = self.clone();
        registry.gauge_fn("peepul_server_conns_peak", move || s.peak() as f64);
        let s = self.clone();
        registry.gauge_fn("peepul_server_conns_accepted_total", move || {
            s.accepted() as f64
        });
        let s = self.clone();
        registry.gauge_fn("peepul_server_frames_total", move || s.frames() as f64);
    }
}

/// Coordination between the acceptor and serving threads: the acceptor
/// waits here while the connection cap is reached.
struct Gate {
    active: Mutex<usize>,
    freed: Condvar,
}

/// A threaded frame server: the accept loop, per-connection serving
/// threads, connection cap and shutdown shared by [`crate::TcpServer`]
/// and `peepul-server`.
///
/// Protocol behavior is supplied by a [`FrameService`]; everything
/// socket-shaped lives here, once.
#[derive(Debug)]
pub struct FrameServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    stats: Arc<Stats>,
}

impl FrameServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections served by `service`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the bind fails.
    pub fn bind<S: FrameService>(
        service: Arc<S>,
        addr: impl ToSocketAddrs,
        options: ServeOptions,
    ) -> Result<Self, NetError> {
        Self::bind_with_stats(service, addr, options, ConnStats::default())
    }

    /// Like [`FrameServer::bind`], but updating caller-supplied
    /// [`ConnStats`] — so the service behind the server can report the
    /// counters of the loop serving it.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the bind fails.
    pub fn bind_with_stats<S: FrameService>(
        service: Arc<S>,
        addr: impl ToSocketAddrs,
        options: ServeOptions,
        stats: ConnStats,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = stats.0;
        let gate = Arc::new(Gate {
            active: Mutex::new(0),
            freed: Condvar::new(),
        });
        let cap = options.max_connections.max(1);

        let flag = Arc::clone(&shutdown);
        let acc_stats = Arc::clone(&stats);
        let accept_thread = std::thread::spawn(move || {
            // Serving threads are reaped opportunistically on every accept
            // and joined exhaustively at shutdown, so a long-running
            // daemon does not accumulate finished handles.
            let mut serving: Vec<JoinHandle<()>> = Vec::new();
            loop {
                // Accept-time backpressure: while the cap is reached, wait
                // for a serving thread to finish. New clients sit in the
                // OS listen backlog — connected but unserved.
                {
                    let mut guard = gate
                        .active
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    while *guard >= cap && !flag.load(Ordering::SeqCst) {
                        let (g, _) = gate
                            .freed
                            .wait_timeout(guard, POLL_INTERVAL)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        guard = g;
                    }
                }
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok((stream, _peer)) = listener.accept() else {
                    continue;
                };
                if flag.load(Ordering::SeqCst) {
                    break; // the shutdown wake-up connection
                }
                serving.retain(|h| !h.is_finished());

                {
                    let mut guard = gate
                        .active
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *guard += 1;
                    let now = *guard;
                    acc_stats.active.store(now, Ordering::SeqCst);
                    acc_stats.peak.fetch_max(now, Ordering::SeqCst);
                }
                acc_stats.accepted.fetch_add(1, Ordering::SeqCst);

                let service = Arc::clone(&service);
                let conn_flag = Arc::clone(&flag);
                let conn_gate = Arc::clone(&gate);
                let conn_stats = Arc::clone(&acc_stats);
                serving.push(std::thread::spawn(move || {
                    serve_connection(stream, &*service, &conn_flag, &conn_stats);
                    let mut guard = conn_gate
                        .active
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *guard -= 1;
                    conn_stats.active.store(*guard, Ordering::SeqCst);
                    drop(guard);
                    conn_gate.freed.notify_all();
                }));
            }
            for h in serving {
                let _ = h.join();
            }
        });

        Ok(FrameServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            stats,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently served connections.
    pub fn active_connections(&self) -> usize {
        self.stats.active.load(Ordering::SeqCst)
    }

    /// The most connections ever served at once.
    pub fn peak_connections(&self) -> usize {
        self.stats.peak.load(Ordering::SeqCst)
    }

    /// Connections accepted over the server's lifetime.
    pub fn connections_accepted(&self) -> u64 {
        self.stats.accepted.load(Ordering::SeqCst)
    }

    /// Request frames answered over the server's lifetime.
    pub fn frames_served(&self) -> u64 {
        self.stats.frames.load(Ordering::SeqCst)
    }

    /// Stops accepting, interrupts idle connections and joins every
    /// serving thread. Called automatically on drop; idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake a blocking accept so the thread observes the flag; serving
        // threads observe it within POLL_INTERVAL via their read timeout.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection until it closes, misframes, or the server shuts
/// down.
fn serve_connection<S: FrameService>(
    mut stream: TcpStream,
    service: &S,
    shutdown: &AtomicBool,
    stats: &Stats,
) {
    let _ = stream.set_nodelay(true);
    // Poll the shutdown flag between frames: without a read timeout a
    // client holding its connection open would pin this thread in `read`
    // and make shutdown block until the client goes away.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut session = service.open_session();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_frame_polling(&mut stream) {
            Ok(ServerRead::Frame(frame)) => {
                let response = service.handle(&frame, &mut session);
                stats.frames.fetch_add(1, Ordering::SeqCst);
                if write_frame(&mut stream, &response).is_err() {
                    return;
                }
            }
            Ok(ServerRead::Idle) => continue,
            Ok(ServerRead::Closed) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpTransport;
    use crate::transport::Transport;
    use std::sync::atomic::AtomicUsize;
    use std::time::Instant;

    fn echo_server(options: ServeOptions) -> FrameServer {
        FrameServer::bind(
            Arc::new(FnService(|frame: &[u8]| frame.to_vec())),
            "127.0.0.1:0",
            options,
        )
        .unwrap()
    }

    #[test]
    fn serves_concurrent_connections() {
        let server = echo_server(ServeOptions::default());
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut t = TcpTransport::connect(addr).unwrap();
                    for j in 0..8 {
                        let msg = format!("conn {i} frame {j}").into_bytes();
                        assert_eq!(t.request(&msg).unwrap(), msg);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.connections_accepted(), 4);
        assert_eq!(server.frames_served(), 32);
    }

    #[test]
    fn sessions_are_per_connection() {
        // A service whose response counts the frames seen *on this
        // connection*: proves each connection gets its own session.
        struct Counting;
        impl FrameService for Counting {
            type Session = u64;
            fn open_session(&self) -> u64 {
                0
            }
            fn handle(&self, _frame: &[u8], session: &mut u64) -> Vec<u8> {
                *session += 1;
                session.to_le_bytes().to_vec()
            }
        }
        let server =
            FrameServer::bind(Arc::new(Counting), "127.0.0.1:0", ServeOptions::default()).unwrap();
        let mut a = TcpTransport::connect(server.addr()).unwrap();
        let mut b = TcpTransport::connect(server.addr()).unwrap();
        assert_eq!(a.request(b"x").unwrap(), 1u64.to_le_bytes());
        assert_eq!(a.request(b"x").unwrap(), 2u64.to_le_bytes());
        // b's session starts at zero regardless of a's traffic.
        assert_eq!(b.request(b"x").unwrap(), 1u64.to_le_bytes());
    }

    #[test]
    fn connection_cap_applies_backpressure_at_accept_time() {
        let server = echo_server(ServeOptions { max_connections: 1 });
        let addr = server.addr();

        // First connection occupies the single slot.
        let mut first = TcpTransport::connect(addr).unwrap();
        assert_eq!(first.request(b"hold").unwrap(), b"hold".to_vec());

        // Second connection sits in the listen backlog: its request is not
        // answered while the first connection is open.
        let answered = Arc::new(AtomicUsize::new(0));
        let answered2 = Arc::clone(&answered);
        let waiter = std::thread::spawn(move || {
            let mut second = TcpTransport::connect(addr).unwrap();
            let reply = second.request(b"queued").unwrap();
            answered2.store(1, Ordering::SeqCst);
            assert_eq!(reply, b"queued".to_vec());
        });
        std::thread::sleep(Duration::from_millis(400));
        assert_eq!(
            answered.load(Ordering::SeqCst),
            0,
            "a connection beyond the cap must wait, not be served"
        );

        // Freeing the slot lets the queued connection through.
        drop(first);
        waiter.join().unwrap();
        assert_eq!(answered.load(Ordering::SeqCst), 1);
        assert_eq!(server.peak_connections(), 1, "cap held");
    }

    #[test]
    fn shutdown_interrupts_open_connections_promptly() {
        let mut server = echo_server(ServeOptions::default());
        let addr = server.addr();
        // Four connections held open mid-conversation.
        let mut conns: Vec<TcpTransport> = (0..4)
            .map(|_| {
                let mut t = TcpTransport::connect(addr).unwrap();
                assert_eq!(t.request(b"hi").unwrap(), b"hi".to_vec());
                t
            })
            .collect();
        let start = Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown must not wait for clients to hang up"
        );
        drop(conns.drain(..));
    }
}

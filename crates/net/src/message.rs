//! The replication protocol's request/response messages and their byte
//! encoding.
//!
//! One fetch is three requests (Git's smart protocol in miniature):
//!
//! 1. [`Request::FetchRefs`] — the remote advertises its branch heads
//!    (ref name → commit content address).
//! 2. [`Request::Want`] — the client names the heads it *wants* plus the
//!    heads it already *has*; the remote answers with the commit records
//!    reachable from the wants but not the haves, parents first. Because
//!    commit records are Merkle nodes (they embed their parents' and
//!    state's content addresses), this one round resolves the entire
//!    missing subgraph.
//! 3. [`Request::GetStates`] — the client requests exactly the state
//!    objects it lacks, as [`Wire`] encodings.
//!
//! A push inverts the walk client-side (it knows the server's heads from
//! `FetchRefs`), probes which state objects the server already has with
//! [`Request::HaveObjects`], and uploads the rest in one
//! [`Request::Push`].
//!
//! All messages are [`Wire`]-encoded: deterministic, little-endian,
//! length-prefixed — the same codec states travel in.

use crate::error::NetError;
use peepul_core::wire::{decode_len, encode_len, take};
use peepul_core::Wire;
use peepul_store::ObjectId;

/// A content-addressed object in transit: its advertised id and its
/// payload bytes (a raw commit record, or a `Wire`-encoded state). The
/// receiver never trusts the pair — it re-derives the id from the bytes on
/// ingest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedObject {
    /// The content address the sender advertises for `bytes`.
    pub id: ObjectId,
    /// The object payload.
    pub bytes: Vec<u8>,
}

impl Wire for PackedObject {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        encode_len(self.bytes.len(), out);
        out.extend_from_slice(&self.bytes);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let id = ObjectId::decode(input)?;
        let len = decode_len(input)?;
        let bytes = take(input, len)?.to_vec();
        Some(PackedObject { id, bytes })
    }
}

/// One state object in a delta-aware `GetStatesDelta` reply: either the
/// full canonical bytes, or an O(delta) edit script against a base state
/// the requester provably holds (it is reachable from the request's
/// `haves`, or appeared earlier in the same reply). Identity is the same
/// either way — `id = sha256(full canonical bytes)` — and the receiver
/// resolves and re-hashes before trusting a delta, exactly as it
/// re-hashes full bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateTransfer {
    /// Full canonical state bytes.
    Full {
        /// The state with its advertised address.
        state: PackedObject,
    },
    /// A delta against a base the requester holds.
    Delta {
        /// Advertised address of the *resolved* state.
        id: ObjectId,
        /// Address of the base state the delta applies to.
        base: ObjectId,
        /// `peepul_core::Delta` wire bytes.
        delta: Vec<u8>,
    },
}

impl StateTransfer {
    /// The advertised content address of the (resolved) state.
    pub fn id(&self) -> ObjectId {
        match self {
            StateTransfer::Full { state } => state.id,
            StateTransfer::Delta { id, .. } => *id,
        }
    }
}

/// A request from a client to a serving replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Advertise all branch heads.
    FetchRefs,
    /// Object negotiation: send the commit records reachable from `wants`
    /// but not from `haves`, parents first.
    Want {
        /// Commit addresses the client wants the history of.
        wants: Vec<ObjectId>,
        /// Commit addresses the client already has (its own ref heads);
        /// everything reachable from these needs no transfer.
        haves: Vec<ObjectId>,
    },
    /// Send the state objects stored under these addresses.
    GetStates {
        /// State content addresses the client lacks.
        ids: Vec<ObjectId>,
    },
    /// Delta-aware [`Request::GetStates`]: the server may answer any
    /// requested state as a [`StateTransfer::Delta`] against a base
    /// state reachable from `haves` (or served earlier in the same
    /// reply), and falls back to [`StateTransfer::Full`] otherwise.
    /// Still one round-trip — a fetch stays at three.
    GetStatesDelta {
        /// State content addresses the client lacks.
        ids: Vec<ObjectId>,
        /// Commit addresses whose full history the client holds; the
        /// states those commits carry are valid delta bases.
        haves: Vec<ObjectId>,
    },
    /// For each id, answer whether the replica already stores that object
    /// (push negotiation: don't upload states the receiver has).
    HaveObjects {
        /// Object content addresses to probe.
        ids: Vec<ObjectId>,
    },
    /// Upload missing objects and point `branch` at `head` — accepted only
    /// as a fast-forward (or branch creation), like `git push`.
    Push {
        /// The branch to update on the receiving replica.
        branch: String,
        /// The commit the branch should point at afterwards.
        head: ObjectId,
        /// Missing commit records, parents first.
        commits: Vec<PackedObject>,
        /// Missing state objects (`Wire`-encoded states).
        states: Vec<PackedObject>,
    },
}

/// A serving replica's answer to a [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Branch heads, sorted by name (`FetchRefs`).
    Refs {
        /// `(branch name, head commit address)` pairs, sorted by name.
        refs: Vec<(String, ObjectId)>,
    },
    /// The missing commit records, parents first (`Want`).
    Commits {
        /// Raw commit records with their advertised addresses.
        commits: Vec<PackedObject>,
    },
    /// The requested state objects (`GetStates`); unknown ids are omitted.
    States {
        /// `Wire`-encoded states with their advertised addresses.
        states: Vec<PackedObject>,
    },
    /// The requested state objects, possibly in delta form
    /// (`GetStatesDelta`); unknown ids are omitted. Ordered so that a
    /// delta's base, when it is part of the reply, precedes it.
    StatesDelta {
        /// Full or delta transfers with their advertised addresses.
        states: Vec<StateTransfer>,
    },
    /// Per-id presence bits, in request order (`HaveObjects`).
    Haves {
        /// `haves[i]` is whether the replica stores the `i`-th probed id.
        haves: Vec<bool>,
    },
    /// The push landed (`Push`).
    Pushed {
        /// Whether the branch was created (as opposed to fast-forwarded or
        /// already up to date).
        created: bool,
    },
    /// The push was refused: the target branch has diverged.
    PushDenied,
    /// The replica failed to serve the request.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

macro_rules! wire_enum {
    ($ty:ident { $($tag:literal => $variant:ident $(($($field:ident : $ftype:ty),*))? ,)* }) => {
        impl Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                match self {
                    $( $ty::$variant $({ $($field),* })? => {
                        out.push($tag);
                        $( $($field.encode(out);)* )?
                    } )*
                }
            }

            fn decode(input: &mut &[u8]) -> Option<Self> {
                match u8::decode(input)? {
                    $( $tag => {
                        $( $(let $field = <$ftype>::decode(input)?;)* )?
                        Some($ty::$variant $({ $($field),* })?)
                    } )*
                    _ => None,
                }
            }
        }
    };
}

wire_enum!(Request {
    0 => FetchRefs,
    1 => Want(wants: Vec<ObjectId>, haves: Vec<ObjectId>),
    2 => GetStates(ids: Vec<ObjectId>),
    3 => HaveObjects(ids: Vec<ObjectId>),
    4 => Push(branch: String, head: ObjectId, commits: Vec<PackedObject>, states: Vec<PackedObject>),
    5 => GetStatesDelta(ids: Vec<ObjectId>, haves: Vec<ObjectId>),
});

wire_enum!(Response {
    0 => Refs(refs: Vec<(String, ObjectId)>),
    1 => Commits(commits: Vec<PackedObject>),
    2 => States(states: Vec<PackedObject>),
    3 => Haves(haves: Vec<bool>),
    4 => Pushed(created: bool),
    5 => PushDenied,
    6 => Error(message: String),
    7 => StatesDelta(states: Vec<StateTransfer>),
});

wire_enum!(StateTransfer {
    0 => Full(state: PackedObject),
    1 => Delta(id: ObjectId, base: ObjectId, delta: Vec<u8>),
});

impl Response {
    /// Decodes a response frame, mapping a peer-reported
    /// [`Response::Error`] to [`NetError::Remote`].
    pub fn from_frame(bytes: &[u8]) -> Result<Response, NetError> {
        match Response::from_wire(bytes) {
            None => Err(NetError::BadFrame("undecodable response".into())),
            Some(Response::Error { message }) => Err(NetError::Remote(message)),
            Some(r) => Ok(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u8) -> ObjectId {
        peepul_store::content_id(&n)
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::FetchRefs,
            Request::Want {
                wants: vec![oid(1)],
                haves: vec![oid(2), oid(3)],
            },
            Request::GetStates {
                ids: vec![oid(4), oid(5)],
            },
            Request::HaveObjects { ids: vec![] },
            Request::GetStatesDelta {
                ids: vec![oid(8)],
                haves: vec![oid(9)],
            },
            Request::Push {
                branch: "main".into(),
                head: oid(6),
                commits: vec![PackedObject {
                    id: oid(7),
                    bytes: vec![1, 2, 3],
                }],
                states: vec![],
            },
        ];
        for r in reqs {
            assert_eq!(Request::from_wire(&r.to_wire()), Some(r));
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Refs {
                refs: vec![("main".into(), oid(1))],
            },
            Response::Commits {
                commits: vec![PackedObject {
                    id: oid(2),
                    bytes: b"commit".to_vec(),
                }],
            },
            Response::States { states: vec![] },
            Response::StatesDelta {
                states: vec![
                    StateTransfer::Full {
                        state: PackedObject {
                            id: oid(8),
                            bytes: vec![9, 9],
                        },
                    },
                    StateTransfer::Delta {
                        id: oid(9),
                        base: oid(8),
                        delta: vec![0, 1, 2],
                    },
                ],
            },
            Response::Haves {
                haves: vec![true, false],
            },
            Response::Pushed { created: true },
            Response::PushDenied,
            Response::Error {
                message: "nope".into(),
            },
        ];
        for r in resps {
            assert_eq!(Response::from_wire(&r.to_wire()), Some(r));
        }
    }

    #[test]
    fn from_frame_maps_peer_errors() {
        let bytes = Response::Error {
            message: "disk on fire".into(),
        }
        .to_wire();
        assert_eq!(
            Response::from_frame(&bytes),
            Err(NetError::Remote("disk on fire".into()))
        );
        assert!(matches!(
            Response::from_frame(b"garbage"),
            Err(NetError::BadFrame(_))
        ));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert_eq!(Request::from_wire(&[99]), None);
        assert_eq!(Response::from_wire(&[99]), None);
    }
}

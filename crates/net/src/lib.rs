//! **peepul-net** — true multi-store replication for the Peepul branch
//! store.
//!
//! Everything below the store layer in this workspace is content-addressed
//! (states and commit records are immutable objects named by their SHA-256,
//! exactly like Git/Irmin). This crate is the consequence: a Git-style
//! **sync protocol** in which independent [`BranchStore`]s — each with its
//! own backend, commit graph and Lamport clock — exchange precisely the
//! objects the other side lacks, verify every one against its address, and
//! converge by ordinary three-way merges. It replaces the old
//! one-store-many-threads `Cluster` simulation with replication that can
//! actually be partitioned, lossy and lagging.
//!
//! The layers, bottom-up:
//!
//! * [`transport`] — the [`Transport`] request/response abstraction,
//!   deterministic in-process [`ChannelTransport`] with [`FaultInjector`]
//!   (drop / partition / seeded loss), and [`tcp`]'s length-prefixed
//!   checksummed [`TcpTransport`] + [`TcpServer`] over std sockets;
//! * [`message`] — the protocol: `FetchRefs`, `Want`/have negotiation
//!   answered from the Merkle commit structure, `GetStates`,
//!   `HaveObjects`, `Push`;
//! * [`replica`] — [`Replica`] (a store that serves the protocol) and
//!   [`Remote`] (a named link), with Git-shaped `fetch` / `pull` / `push`
//!   and hash-verified ingest;
//! * [`serve`] — the shared accept-loop machinery: [`FrameServer`] (one
//!   serving thread per connection, connection cap with accept-time
//!   backpressure, clean shutdown) parameterized by a [`FrameService`]
//!   protocol handler — [`TcpServer`] and the `peepul-server` daemon are
//!   both bindings of it;
//! * [`anti_entropy`] — the [`AntiEntropy`] scheduler: periodic pairwise
//!   pulls until quiescence;
//! * [`cluster`] — the rebuilt [`Cluster`] facade: `n` real replicas over
//!   channel links by default, the legacy shared-store simulation kept as
//!   a mode.
//!
//! States cross the wire in the [`Wire`](peepul_core::Wire) codec and are
//! re-hashed on arrival; commit records travel as their canonical bytes.
//! A corrupted or tampered transfer fails with
//! [`StoreError::CorruptObject`](peepul_store::StoreError::CorruptObject)
//! and leaves the receiving store untouched.
//!
//! [`BranchStore`]: peepul_store::BranchStore
//!
//! # Example: two stores over TCP
//!
//! ```
//! use peepul_net::{Remote, Replica, TcpServer, TcpTransport};
//! use peepul_store::MemoryBackend;
//! use peepul_types::counter::{Counter, CounterOp, CounterQuery};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A server replica with some history. `Replica::open` derives a
//! // disjoint replica-id range from the name, so independent peers can
//! // never mint colliding timestamps.
//! let origin: Replica<Counter, _> = Replica::open("origin", "main", MemoryBackend::new())?;
//! origin.with_store(|s| s.branch_mut("main")?.apply(&CounterOp::Increment))?;
//! let server = TcpServer::spawn(origin)?;
//!
//! // …and an independent client store that pulls it over a socket.
//! let laptop: Replica<Counter, _> = Replica::open("laptop", "main", MemoryBackend::new())?;
//! let mut remote = Remote::new("origin", TcpTransport::connect(server.addr())?);
//! let report = laptop.pull(&mut remote, "main")?;
//! assert_eq!(laptop.read("main", &CounterQuery::Value)?, 1);
//! assert_eq!(report.fetch.round_trips, 3); // refs, want/have, states
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anti_entropy;
pub mod cluster;
pub mod error;
pub mod message;
pub mod metrics;
pub mod observer;
pub mod replica;
pub mod serve;
pub mod tcp;
pub mod transport;

pub use anti_entropy::{AntiEntropy, AntiEntropyReport};
pub use cluster::Cluster;
pub use error::NetError;
pub use message::{PackedObject, Request, Response, StateTransfer};
pub use metrics::NetMetrics;
pub use observer::{HistoryObserver, ReplicationMutation};
pub use replica::{FetchStats, PullOutcome, PullReport, PushReport, Remote, Replica};
pub use serve::{ConnStats, FnService, FrameServer, FrameService, ServeOptions};
pub use tcp::{TcpServer, TcpTransport};
pub use transport::{ChannelTransport, FaultCounters, FaultInjector, Transport};

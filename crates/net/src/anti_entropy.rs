//! The anti-entropy scheduler: periodic pairwise pulls until quiescence.
//!
//! Gossip-style repair for a fleet of replicas. Each round is a star
//! double-pass of real pulls — the hub gathers every spoke's history,
//! then every spoke pulls the hub — so one clean round fully synchronises
//! a connected fleet, and a second confirms quiescence: a full round in
//! which every pull reported `UpToDate`. The report says whether the
//! fleet actually **converged** (every replica on the same head commit,
//! hence byte-identical canonical states), which quiescence alone does
//! not imply while partitions are still in force.
//!
//! Faulty links are tolerated, not fatal: a pull that fails with
//! [`NetError::Dropped`] or [`NetError::Partitioned`] is a lost gossip
//! opportunity, and the next round tries again. Any other error (a corrupt
//! object, a protocol violation) aborts the run — those are bugs, not
//! weather.

use crate::error::NetError;
use crate::replica::{PullOutcome, Remote, Replica};
use crate::transport::{ChannelTransport, FaultInjector};
use peepul_core::Mrdt;
use peepul_store::Backend;

/// Pairwise-pull scheduler. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct AntiEntropy {
    max_rounds: usize,
}

impl Default for AntiEntropy {
    fn default() -> Self {
        AntiEntropy::new()
    }
}

impl AntiEntropy {
    /// A scheduler bounded at 64 rounds — a healthy fleet of any size
    /// converges in one round and quiesces in two; the margin is budget
    /// for lossy links.
    pub fn new() -> Self {
        AntiEntropy { max_rounds: 64 }
    }

    /// Overrides the round bound.
    pub fn with_max_rounds(max_rounds: usize) -> Self {
        AntiEntropy {
            max_rounds: max_rounds.max(1),
        }
    }

    /// Runs rounds over fault-free in-process links until quiescence.
    ///
    /// # Errors
    ///
    /// Store, verification and protocol errors; never the fault-injection
    /// errors (there are no faults on these links).
    pub fn run<M, B>(
        &self,
        replicas: &[Replica<M, B>],
        branch: &str,
    ) -> Result<AntiEntropyReport, NetError>
    where
        M: Mrdt,
        B: Backend,
    {
        self.run_with_faults(replicas, branch, &[])
    }

    /// Runs rounds with `faults[i]` modelling replica `i`'s network
    /// interface (missing entries are fault-free): partitioning either
    /// endpoint severs a pair, and a puller's loss/drop schedule applies
    /// to its pulls. Faulty links cost gossip opportunities; the run still
    /// terminates and the report says whether convergence was reached
    /// despite them.
    ///
    /// # Errors
    ///
    /// Store, verification and protocol errors. Fault-injected drops are
    /// tolerated and counted, not raised.
    pub fn run_with_faults<M, B>(
        &self,
        replicas: &[Replica<M, B>],
        branch: &str,
        faults: &[FaultInjector],
    ) -> Result<AntiEntropyReport, NetError>
    where
        M: Mrdt,
        B: Backend,
    {
        let n = replicas.len();
        let mut report = AntiEntropyReport::default();
        if n <= 1 {
            report.converged = true;
            return Ok(report);
        }
        // One round = a star double-pass: the hub (replica 0) pulls every
        // spoke, then every spoke pulls the hub. The hub linearises the
        // merge order, which is what makes the fleet's *heads* (not just
        // states) settle: free-running ring gossip never quiesces for
        // n ≥ 3, because every replica keeps minting a fresh merge commit
        // one step ahead of the replica pulling it.
        for _ in 0..self.max_rounds {
            report.rounds += 1;
            let mut quiet = true;
            for (puller, servee) in (1..n).map(|i| (0, i)).chain((1..n).map(|i| (i, 0))) {
                // `faults[i]` models replica i's network interface:
                // partitioning either endpoint severs the pair, and the
                // puller's injector applies its loss/drop schedule.
                if faults
                    .get(servee)
                    .is_some_and(FaultInjector::is_partitioned)
                {
                    report.pulls_failed += 1;
                    quiet = false;
                    continue;
                }
                let transport = ChannelTransport::with_faults(
                    replicas[servee].clone(),
                    faults.get(puller).cloned().unwrap_or_default(),
                );
                let mut remote = Remote::new(replicas[servee].name(), transport);
                match replicas[puller].pull(&mut remote, branch) {
                    Ok(pull) => {
                        report.objects_transferred += pull.fetch.objects_received();
                        if pull.outcome != PullOutcome::UpToDate {
                            quiet = false;
                        }
                    }
                    Err(NetError::Dropped | NetError::Partitioned) => {
                        report.pulls_failed += 1;
                        quiet = false;
                    }
                    Err(NetError::UnknownRemoteBranch(_)) => {
                        // The peer has not created the branch yet (e.g. it
                        // is freshly joined); it will after pulling.
                        report.pulls_failed += 1;
                        quiet = false;
                    }
                    Err(e) => return Err(e),
                }
            }
            if quiet {
                break;
            }
        }
        report.converged = converged(replicas, branch);
        Ok(report)
    }
}

/// Whether every replica's `branch` points at the **same head commit**.
///
/// Head-commit equality is deliberately stronger than equal head *states*:
/// replicas that never communicated can reach byte-identical states by
/// coincidence (five isolated counters that each incremented five times),
/// yet still owe each other history — merging them later would change the
/// value. Equal head commits mean equal Merkle histories: everyone has
/// integrated everything (which implies byte-identical canonical states
/// too). Ring anti-entropy over healthy links quiesces exactly there —
/// every pull reporting `UpToDate` around the full ring gives mutual
/// ancestry, and mutually-ancestral commits are equal.
fn converged<M: Mrdt, B: Backend>(replicas: &[Replica<M, B>], branch: &str) -> bool {
    let mut ids = replicas.iter().map(|r| r.head_id(branch));
    let Some(Ok(first)) = ids.next() else {
        return replicas.is_empty();
    };
    ids.all(|id| id == Ok(first))
}

/// What an anti-entropy run did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AntiEntropyReport {
    /// Rounds executed (including the final quiescent round).
    pub rounds: u64,
    /// Objects (commits + states) moved across all pulls.
    pub objects_transferred: u64,
    /// Pulls lost to fault injection or not-yet-created branches.
    pub pulls_failed: u64,
    /// Whether all replicas ended on the **same head commit** of the
    /// synced branch — equal Merkle histories, which implies byte-identical
    /// canonical head states (and is strictly stronger: coincidentally
    /// equal states on replicas that still owe each other history do not
    /// count).
    pub converged: bool,
}

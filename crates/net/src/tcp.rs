//! The TCP transport: length-prefixed, checksummed frames over blocking
//! `std::net` sockets — no external dependencies.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! +-------+-----------+-------------+----------------+
//! | "PPL1"| len: u32  | fnv64: u64  | payload (len B)|
//! +-------+-----------+-------------+----------------+
//! ```
//!
//! The magic catches protocol confusion (something that is not a peer),
//! the length bounds the read (frames over 256 MiB are rejected before
//! allocation), and the FNV-1a checksum catches bytes damaged in transit
//! *before* they reach the message decoder. Content verification of the
//! objects inside the payload happens again, cryptographically, at ingest
//! — the checksum is a cheap early tripwire, not the integrity story.
//!
//! [`TcpServer`] serves one [`Replica`] on a background thread,
//! connection by connection; [`TcpTransport`] is the matching client end.

use crate::error::NetError;
use crate::replica::Replica;
use crate::serve::{FnService, FrameServer, ServeOptions};
use crate::transport::Transport;
use peepul_core::Mrdt;
use peepul_store::Backend;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;

const MAGIC: [u8; 4] = *b"PPL1";
/// Frames above this size are rejected before any allocation.
const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// FNV-1a 64-bit — the frame checksum.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_FRAME)
        .ok_or_else(|| NetError::BadFrame(format!("frame too large: {} bytes", payload.len())))?;
    let mut header = [0u8; 16];
    header[..4].copy_from_slice(&MAGIC);
    header[4..8].copy_from_slice(&len.to_le_bytes());
    header[8..16].copy_from_slice(&checksum(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame; `Ok(None)` on clean EOF before any header byte.
fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, NetError> {
    let mut first = [0u8; 1];
    if r.read(&mut first)? == 0 {
        return Ok(None); // peer closed between frames
    }
    read_frame_rest(first[0], r).map(Some)
}

/// What one poll of a serving connection produced.
pub(crate) enum ServerRead {
    Frame(Vec<u8>),
    Closed,
    /// The read timed out waiting for the next frame's first byte — no
    /// traffic, not an error. Lets the serve loop poll its shutdown flag.
    Idle,
}

/// Like [`read_frame`], but a timed-out wait for the *first* header byte
/// reports [`ServerRead::Idle`] instead of failing (requires a read
/// timeout on the stream).
pub(crate) fn read_frame_polling(stream: &mut TcpStream) -> Result<ServerRead, NetError> {
    let mut first = [0u8; 1];
    match stream.read(&mut first) {
        Ok(0) => return Ok(ServerRead::Closed),
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            return Ok(ServerRead::Idle)
        }
        Err(e) => return Err(e.into()),
    }
    read_frame_rest(first[0], stream).map(ServerRead::Frame)
}

/// Reads the remainder of a frame whose first header byte arrived.
fn read_frame_rest(first: u8, r: &mut impl Read) -> Result<Vec<u8>, NetError> {
    let mut header = [0u8; 16];
    header[0] = first;
    r.read_exact(&mut header[1..])?;
    if header[..4] != MAGIC {
        return Err(NetError::BadFrame("bad magic".into()));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(NetError::BadFrame(format!("frame too large: {len} bytes")));
    }
    let expected = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let actual = checksum(&payload);
    if actual != expected {
        return Err(NetError::BadFrame(format!(
            "checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
        )));
    }
    Ok(payload)
}

/// The client end of a TCP link to a serving replica.
///
/// Blocking and single-connection: one request/response at a time, frames
/// as described in the [module docs](self).
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to a [`TcpServer`] (or anything speaking the frame
    /// protocol).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn request(&mut self, request: &[u8]) -> Result<Vec<u8>, NetError> {
        write_frame(&mut self.stream, request)?;
        read_frame(&mut self.stream)?
            .ok_or_else(|| NetError::Io("peer closed the connection mid-request".into()))
    }
}

/// A background thread serving one replica's store over TCP.
///
/// A thin protocol binding over the shared accept-loop machinery of
/// [`FrameServer`]: every accepted connection
/// gets its own serving thread (bounded by
/// [`ServeOptions::max_connections`](crate::serve::ServeOptions)), each
/// answering replication frames against the same [`Replica`] — whose
/// internal `RwLock` keeps the read-only protocol requests concurrent.
/// Dropping the server shuts it down.
///
/// # Example
///
/// ```no_run
/// use peepul_net::{Remote, Replica, TcpServer, TcpTransport};
/// use peepul_store::MemoryBackend;
/// use peepul_types::counter::Counter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // `Replica::open` derives a disjoint replica-id range per name.
/// let server_replica: Replica<Counter, _> =
///     Replica::open("origin", "main", MemoryBackend::new())?;
/// let server = TcpServer::spawn(server_replica)?;
///
/// let client: Replica<Counter, _> = Replica::open("laptop", "main", MemoryBackend::new())?;
/// let mut origin = Remote::new("origin", TcpTransport::connect(server.addr())?);
/// client.pull(&mut origin, "main")?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TcpServer {
    inner: FrameServer,
}

impl TcpServer {
    /// Binds `127.0.0.1:0` (an ephemeral port) and starts serving
    /// `replica`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the bind fails.
    pub fn spawn<M, B>(replica: Replica<M, B>) -> Result<Self, NetError>
    where
        M: Mrdt + Send + Sync + 'static,
        B: Backend + Send + Sync + 'static,
    {
        Self::bind(replica, "127.0.0.1:0")
    }

    /// Binds an explicit address and starts serving `replica` with the
    /// default [`ServeOptions`].
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the bind fails.
    pub fn bind<M, B>(replica: Replica<M, B>, addr: impl ToSocketAddrs) -> Result<Self, NetError>
    where
        M: Mrdt + Send + Sync + 'static,
        B: Backend + Send + Sync + 'static,
    {
        Self::bind_with(replica, addr, ServeOptions::default())
    }

    /// Binds an explicit address with explicit [`ServeOptions`]
    /// (connection cap).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the bind fails.
    pub fn bind_with<M, B>(
        replica: Replica<M, B>,
        addr: impl ToSocketAddrs,
        options: ServeOptions,
    ) -> Result<Self, NetError>
    where
        M: Mrdt + Send + Sync + 'static,
        B: Backend + Send + Sync + 'static,
    {
        let service = Arc::new(FnService(move |frame: &[u8]| replica.handle_frame(frame)));
        let inner = FrameServer::bind(service, addr, options)?;
        Ok(TcpServer { inner })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stops accepting, interrupts open connections and joins every
    /// serving thread. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(&b"payload"[..])
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after frame");
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Flip a payload byte: checksum trips.
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(NetError::BadFrame(msg)) if msg.contains("checksum")
        ));
        // Damage the magic: protocol confusion trips.
        let mut buf2 = Vec::new();
        write_frame(&mut buf2, b"x").unwrap();
        buf2[0] = b'X';
        assert!(matches!(
            read_frame(&mut &buf2[..]),
            Err(NetError::BadFrame(msg)) if msg.contains("magic")
        ));
        // Truncated payload: I/O error, not a hang.
        let mut buf3 = Vec::new();
        write_frame(&mut buf3, b"hello").unwrap();
        buf3.truncate(buf3.len() - 2);
        assert!(matches!(read_frame(&mut &buf3[..]), Err(NetError::Io(_))));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut header = [0u8; 16];
        header[..4].copy_from_slice(&MAGIC);
        header[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &header[..]),
            Err(NetError::BadFrame(msg)) if msg.contains("large")
        ));
    }

    #[test]
    fn shutdown_returns_while_a_client_connection_is_open() {
        use crate::replica::Replica;
        use peepul_core::Wire;
        use peepul_store::MemoryBackend;
        use peepul_types::counter::Counter;

        let replica: Replica<Counter, _> =
            Replica::open("origin", "main", MemoryBackend::new()).unwrap();
        let server = TcpServer::spawn(replica).unwrap();
        let addr = server.addr();
        // Hold several connections open mid-conversation across the
        // shutdown: each serving thread must notice the flag between
        // frames rather than blocking in read() forever.
        let mut idle: Vec<TcpTransport> = (0..3)
            .map(|_| {
                let mut t = TcpTransport::connect(addr).unwrap();
                let resp = t.request(&crate::message::Request::FetchRefs.to_wire());
                assert!(resp.is_ok());
                t
            })
            .collect();
        // And shut down *mid-request*: a client hammering the server when
        // the flag flips must not pin shutdown either — its in-flight
        // request is answered or its connection is dropped, never hung.
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let hammer = std::thread::spawn(move || {
            let mut t = TcpTransport::connect(addr).unwrap();
            let mut answered = 0u64;
            while !stop2.load(std::sync::atomic::Ordering::SeqCst) {
                match t.request(&crate::message::Request::FetchRefs.to_wire()) {
                    Ok(_) => answered += 1,
                    Err(_) => break, // server went away mid-request
                }
            }
            answered
        });
        // Let the hammer get some requests in flight first.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let start = std::time::Instant::now();
        drop(server); // runs shutdown() + join()
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "shutdown must not wait for clients to hang up"
        );
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let answered = hammer.join().unwrap();
        assert!(answered > 0, "the hammering client was being served");
        drop(idle.drain(..));
    }

    #[test]
    fn checksum_is_fnv1a() {
        // Known FNV-1a vectors.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

//! Errors of the replication layer.

use peepul_store::StoreError;
use std::error::Error;
use std::fmt;

/// Errors returned by transports, remotes and replication operations.
#[derive(Clone, PartialEq, Eq)]
pub enum NetError {
    /// A store-level failure underneath a replication operation — including
    /// [`StoreError::CorruptObject`] when a transferred object fails its
    /// content-hash verification on ingest.
    Store(StoreError),
    /// A socket-level I/O failure (message carries the `std::io::Error`
    /// rendering; the error itself is not `Clone`).
    Io(String),
    /// A frame failed its length, magic or checksum validation — bytes were
    /// damaged in transit or the peer does not speak this protocol.
    BadFrame(String),
    /// The peer sent a well-formed frame that violates the protocol: an
    /// unexpected response kind, a pack referencing objects it did not
    /// include, or an undecodable state encoding.
    Protocol(String),
    /// The fault injector dropped this message ([`FaultInjector`]); the
    /// request may or may not have reached the peer.
    ///
    /// [`FaultInjector`]: crate::transport::FaultInjector
    Dropped,
    /// The link is partitioned ([`FaultInjector::partition`]); nothing was
    /// sent.
    ///
    /// [`FaultInjector::partition`]: crate::transport::FaultInjector::partition
    Partitioned,
    /// The peer refused a push because the target branch has history the
    /// pushed head does not contain (a non-fast-forward, like Git). Pull,
    /// merge and push again.
    PushRejected,
    /// The peer reported an error while serving a request.
    Remote(String),
    /// A fetch or pull named a branch the remote does not advertise.
    UnknownRemoteBranch(String),
}

impl From<StoreError> for NetError {
    fn from(e: StoreError) -> Self {
        NetError::Store(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl fmt::Debug for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Store(e) => write!(f, "store error: {e}"),
            NetError::Io(msg) => write!(f, "transport i/o error: {msg}"),
            NetError::BadFrame(msg) => write!(f, "bad frame: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Dropped => write!(f, "message dropped by fault injection"),
            NetError::Partitioned => write!(f, "link partitioned"),
            NetError::PushRejected => {
                write!(f, "push rejected: non-fast-forward (pull and merge first)")
            }
            NetError::Remote(msg) => write!(f, "remote error: {msg}"),
            NetError::UnknownRemoteBranch(b) => {
                write!(f, "remote does not advertise branch {b:?}")
            }
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Store(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let e: NetError = StoreError::NoCommonAncestor.into();
        assert!(matches!(e, NetError::Store(_)));
        assert!(e.to_string().contains("ancestor"));
        let io: NetError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(NetError::PushRejected.to_string().contains("fast-forward"));
        assert!(NetError::UnknownRemoteBranch("dev".into())
            .to_string()
            .contains("dev"));
    }
}

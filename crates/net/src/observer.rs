//! Witness hooks for replication-aware linearizability checking.
//!
//! A [`HistoryObserver`] is attached to a [`Replica`](crate::Replica) (or
//! to every node of a [`Cluster`](crate::Cluster)) and receives one
//! callback per replication-visible event: a local operation committed, a
//! pack of remote events ingested, a branch head advanced by pull/push
//! integration, a query answered. The callbacks fire **inside the store
//! lock** of the emitting replica, so the per-replica callback order is
//! exactly the order the store mutated in — the recorded trace is a
//! faithful witness of the execution, with no separate synchronization
//! that could perturb timing beyond the lock the operation already held.
//!
//! `peepul-verify`'s `ralin` module provides the standard observer (a
//! history recorder) and the `Φ_ra` checker that consumes it; this module
//! only defines the hook and the deliberate replication faults
//! ([`ReplicationMutation`]) the mutant kill-gate enacts through it.

use peepul_core::{Mrdt, Timestamp};

/// Receives witness events from a replica's replication-visible
/// transitions. See the [module docs](self) for when each fires.
///
/// Implementations must be cheap and non-blocking: callbacks run under
/// the emitting replica's store lock. They must also be `Send + Sync` —
/// one observer instance is shared by every node of a cluster and every
/// clone of a replica handle.
pub trait HistoryObserver<M: Mrdt>: Send + Sync {
    /// A local operation committed on `replica`: the event minted
    /// timestamp `t`, returned `rval`, and observed exactly the events
    /// `visible` (the mints in its branch ancestry, ascending, `t`
    /// excluded).
    fn local_op(
        &self,
        replica: &str,
        t: Timestamp,
        op: &M::Op,
        rval: &M::Value,
        visible: &[Timestamp],
    );

    /// `replica` ingested a pack containing the previously unknown
    /// operation events `events`, in pack (parents-first) order — a fetch
    /// landing remote commits, or a served push.
    fn learned(&self, replica: &str, events: &[Timestamp]);

    /// `replica`'s local branch head moved by integrating remote history
    /// (fast-forward, merge, or branch creation); `visible` is the full
    /// set of operation events in the new head's ancestry, ascending.
    fn head_advanced(&self, replica: &str, visible: &[Timestamp]);

    /// `replica` answered query `q` with `output` at a head whose visible
    /// event set is `visible` — the observation `Φ_ra` must reproduce by
    /// replaying the specification over exactly those events.
    fn observed(&self, replica: &str, q: &M::Query, output: &M::Output, visible: &[Timestamp]);
}

/// A deliberate replication-layer fault, enacted at the observer seams of
/// [`Replica`](crate::Replica) — the mutant set of the `Φ_ra` kill-gate.
///
/// Each mutant leaves ordinary convergence checks green (states still
/// converge, heads still agree) and is caught **only** by the
/// replication-aware linearizability checker, proving the analysis sees
/// what the tests do not. Production code always runs with
/// [`ReplicationMutation::None`]; the other variants exist solely so the
/// verification suite can demonstrate its own teeth.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReplicationMutation {
    /// No fault: faithful replication.
    #[default]
    None,
    /// Breaks the Lamport **receive rule**: after a fetch ingests remote
    /// events, the local clock is rewound to its pre-fetch value, so the
    /// next local operation mints a timestamp that does *not* order after
    /// the events it observed. Killed by `Φ_ra`'s happens-before
    /// timestamp axiom.
    BrokenReceiveRule,
    /// Reorders ingest within a pack: the witnessed learn order of a
    /// fetched pack is reversed (children before parents). Killed by
    /// `Φ_ra`'s causal-delivery axiom.
    ReorderedPackIngest,
    /// Skips the divergence pre-check on pull integration: a diverged
    /// branch is force-tracked to the remote head instead of three-way
    /// merged, silently discarding the local branch's unmerged events
    /// from its visible set. Heads still converge (both sides end up
    /// equal), so only `Φ_ra`'s monotonic-visibility axiom catches it.
    SkipDivergenceCheck,
    /// Drops a visibility edge from a local operation's witnessed past:
    /// the emitted event claims not to have observed the latest foreign
    /// event in its ancestry. Killed by `Φ_ra`'s session-guarantee axiom
    /// (an operation must observe exactly its branch's visible events).
    DropVisibilityEdge,
}

impl std::fmt::Display for ReplicationMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ReplicationMutation::None => "none",
            ReplicationMutation::BrokenReceiveRule => "broken-receive-rule",
            ReplicationMutation::ReorderedPackIngest => "reordered-pack-ingest",
            ReplicationMutation::SkipDivergenceCheck => "skip-divergence-check",
            ReplicationMutation::DropVisibilityEdge => "drop-visibility-edge",
        };
        f.write_str(name)
    }
}

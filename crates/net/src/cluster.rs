//! A fleet of replicas under one handle — now over *real* replication.
//!
//! [`Cluster`] is the workspace's multi-replica execution harness. Since
//! the `peepul-net` rebuild it runs in one of two modes:
//!
//! * **Replicated** (the default, [`Cluster::new`] /
//!   [`Cluster::replicated`]): `n` independent [`Replica`]s, each with its
//!   **own** [`BranchStore`] and backend and a disjoint replica-id range,
//!   wired by [`ChannelTransport`] links with per-replica
//!   [`FaultInjector`]s. Gossip is a real `pull` — refs, want/have
//!   negotiation, verified object transfer — and replicas can be
//!   partitioned, lose messages, and lag independently.
//! * **Simulated** ([`Cluster::simulated`] / [`Cluster::with_backend`]):
//!   the pre-`peepul-net` behaviour, kept for workloads that want maximal
//!   interleaving stress at minimal cost — `n` branches of a **single
//!   shared** store behind one mutex, one OS thread per branch,
//!   gossip-by-local-merge. Nothing is transferred in this mode; it
//!   exercises merge correctness under scheduler nondeterminism, not
//!   replication.
//!
//! `run`/`converge`/`read` behave identically in both modes, so existing
//! convergence suites drive either.

use crate::anti_entropy::AntiEntropy;
use crate::error::NetError;
use crate::observer::{HistoryObserver, ReplicationMutation};
use crate::replica::{Remote, Replica};
use crate::transport::{ChannelTransport, FaultInjector};
use parking_lot::Mutex;
use peepul_core::Mrdt;
use peepul_store::{Backend, BranchStore, MemoryBackend, StoreError};
use std::fmt;
use std::sync::Arc;

/// The branch each replicated node applies its local operations to.
const LOCAL_BRANCH: &str = "main";

/// Replica-id ranges are spaced this far apart so that `n` independent
/// stores can each fork thousands of branches without two stores ever
/// minting the same `(tick, replica)` timestamp pair.
const REPLICA_ID_STRIDE: u32 = 1 << 16;

fn replica_branch(i: usize) -> String {
    format!("replica-{i}")
}

enum Inner<M: Mrdt, B: Backend> {
    /// Legacy simulation: n branches over one shared store.
    Sim(Arc<Mutex<BranchStore<M, B>>>),
    /// Real replication: n independent stores over channel links.
    Net {
        nodes: Vec<Replica<M, B>>,
        /// `faults[i]` governs replica i's *outgoing* link.
        faults: Vec<FaultInjector>,
    },
}

/// A multi-replica cluster; see the [module docs](self) for the two modes.
///
/// # Example
///
/// ```
/// use peepul_net::Cluster;
/// use peepul_types::counter::{Counter, CounterOp};
///
/// # fn main() -> Result<(), peepul_net::NetError> {
/// // Four *independent* stores, replicating over in-process transports.
/// let cluster: Cluster<Counter> = Cluster::new(4)?;
/// cluster.run(100, 10, |_replica, _round| CounterOp::Increment)?;
/// let final_states = cluster.converge()?;
/// assert!(final_states.iter().all(|s| s.count() == 400));
/// # Ok(())
/// # }
/// ```
pub struct Cluster<M: Mrdt, B: Backend = MemoryBackend> {
    inner: Inner<M, B>,
    replicas: usize,
}

impl<M: Mrdt + Send + Sync + 'static> Cluster<M> {
    /// A replicated in-memory cluster: `replicas` independent stores, each
    /// over its own fresh [`MemoryBackend`].
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from store construction.
    pub fn new(replicas: usize) -> Result<Self, NetError> {
        Self::replicated((0..replicas).map(|_| MemoryBackend::new()).collect())
    }

    /// The legacy shared-store simulation over a fresh [`MemoryBackend`].
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from branch creation.
    pub fn simulated(replicas: usize) -> Result<Self, NetError> {
        Self::with_backend(replicas, MemoryBackend::new())
    }
}

impl<M: Mrdt + Send + Sync + 'static, B: Backend + Send + Sync + 'static> Cluster<M, B> {
    /// The legacy shared-store simulation over an explicit backend:
    /// `replicas` branches of **one** store, one thread per branch. This
    /// is the pre-replication `Cluster` behaviour, preserved as a mode.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from publishing or branch creation.
    pub fn with_backend(replicas: usize, backend: B) -> Result<Self, NetError> {
        assert!(replicas >= 1, "a cluster needs at least one replica");
        let mut store = BranchStore::with_backend(replica_branch(0), backend)?;
        for i in 1..replicas {
            store
                .branch_mut(&replica_branch(0))?
                .fork(replica_branch(i))?;
        }
        Ok(Cluster {
            inner: Inner::Sim(Arc::new(Mutex::new(store))),
            replicas,
        })
    }

    /// A replicated cluster with one backend **per replica** — including
    /// mixed fleets when `B` is `Box<dyn Backend + Send + Sync>` (some replicas
    /// in memory, some on disk). Replica `i` is named `replica-i`, holds
    /// its operations on branch `"main"`, and mints replica ids from a
    /// disjoint range (`i · 2^16`).
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from store construction.
    pub fn replicated(backends: Vec<B>) -> Result<Self, NetError> {
        assert!(!backends.is_empty(), "a cluster needs at least one replica");
        let replicas = backends.len();
        let mut nodes = Vec::with_capacity(replicas);
        for (i, backend) in backends.into_iter().enumerate() {
            let store = BranchStore::with_backend_and_base(
                LOCAL_BRANCH,
                backend,
                (i as u32) * REPLICA_ID_STRIDE,
            )?;
            nodes.push(Replica::new(replica_branch(i), store));
        }
        let faults = (0..replicas).map(|_| FaultInjector::new()).collect();
        Ok(Cluster {
            inner: Inner::Net { nodes, faults },
            replicas,
        })
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Whether this cluster runs real replication (as opposed to the
    /// shared-store simulation).
    pub fn is_replicated(&self) -> bool {
        matches!(self.inner, Inner::Net { .. })
    }

    /// Replica `i` (replicated mode only).
    pub fn node(&self, i: usize) -> Option<&Replica<M, B>> {
        match &self.inner {
            Inner::Net { nodes, .. } => nodes.get(i),
            Inner::Sim(_) => None,
        }
    }

    /// The fault plan of replica `i`'s outgoing gossip link (replicated
    /// mode only) — partition it, heal it, make it lossy.
    pub fn faults(&self, i: usize) -> Option<&FaultInjector> {
        match &self.inner {
            Inner::Net { faults, .. } => faults.get(i),
            Inner::Sim(_) => None,
        }
    }

    /// Answers a pure query against one replica's current head — the
    /// commit-free read path. In replicated mode the read goes through
    /// [`Replica::read_observed`], so an attached [`HistoryObserver`]
    /// witnesses every probe.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if `replica >= self.replicas()`.
    pub fn read(&self, replica: usize, q: &M::Query) -> Result<M::Output, NetError> {
        match &self.inner {
            Inner::Sim(store) => Ok(store.lock().read(&replica_branch(replica), q)?),
            Inner::Net { nodes, .. } => match nodes.get(replica) {
                Some(node) => Ok(node.read_observed(LOCAL_BRANCH, q)?),
                None => Err(StoreError::UnknownBranch(replica_branch(replica)).into()),
            },
        }
    }

    /// Attaches one [`HistoryObserver`] to **every** node, so a whole-fleet
    /// execution records a single global witness history — the input of
    /// `peepul-verify`'s replication-aware linearizability checker `Φ_ra`.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] in the legacy simulated mode: all "replicas"
    /// there share one store and gossip by local merge, so there is no
    /// per-replica ingest path to witness and RA-lin checking is
    /// meaningless. Use a replicated cluster ([`Cluster::new`] /
    /// [`Cluster::replicated`]) for certification runs.
    pub fn set_observer(&self, observer: Arc<dyn HistoryObserver<M>>) -> Result<(), NetError> {
        match &self.inner {
            Inner::Sim(_) => Err(NetError::Protocol(
                "RA-lin witness recording requires a replicated cluster: the legacy \
                 simulated mode shares one store and has no per-replica ingest path"
                    .into(),
            )),
            Inner::Net { nodes, .. } => {
                for node in nodes {
                    node.set_observer(Arc::clone(&observer));
                }
                Ok(())
            }
        }
    }

    /// **Mutation-testing surface** — enacts a deliberate replication
    /// fault (see [`ReplicationMutation`]) on every node, for the `Φ_ra`
    /// mutant kill-gate.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] in simulated mode, as for
    /// [`Cluster::set_observer`].
    pub fn set_mutation(&self, mutation: ReplicationMutation) -> Result<(), NetError> {
        match &self.inner {
            Inner::Sim(_) => Err(NetError::Protocol(
                "replication mutations require a replicated cluster: the legacy \
                 simulated mode has no replication paths to mutate"
                    .into(),
            )),
            Inner::Net { nodes, .. } => {
                for node in nodes {
                    node.set_replication_mutation(mutation);
                }
                Ok(())
            }
        }
    }

    /// Runs `ops_per_replica` operations on every replica concurrently,
    /// one OS thread per replica.
    ///
    /// `op_of(replica, round)` generates the operation each replica
    /// applies at each round; every `gossip_every` rounds a replica
    /// gossips with its ring neighbour — a real `pull` over the replica's
    /// (possibly faulty) link in replicated mode, a local merge in
    /// simulation mode. A gossip lost to fault injection is a missed
    /// opportunity, not an error; anti-entropy repairs it later.
    ///
    /// # Errors
    ///
    /// Propagates the first store/verification error any replica thread
    /// hit.
    pub fn run<F>(
        &self,
        ops_per_replica: usize,
        gossip_every: usize,
        op_of: F,
    ) -> Result<(), NetError>
    where
        F: Fn(usize, usize) -> M::Op + Send + Sync,
    {
        let op_of = &op_of;
        match &self.inner {
            Inner::Sim(store) => {
                let results: Vec<Result<(), StoreError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..self.replicas)
                        .map(|i| {
                            let store = Arc::clone(store);
                            scope.spawn(move || {
                                let me = replica_branch(i);
                                let peer = replica_branch((i + 1) % self.replicas);
                                for round in 0..ops_per_replica {
                                    let op = op_of(i, round);
                                    store.lock().branch_mut(&me)?.apply(&op)?;
                                    if gossip_every > 0 && round % gossip_every == gossip_every - 1
                                    {
                                        store.lock().branch_mut(&me)?.merge_from(&peer)?;
                                    }
                                }
                                Ok(())
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("replica thread panicked"))
                        .collect()
                });
                results
                    .into_iter()
                    .collect::<Result<(), StoreError>>()
                    .map_err(NetError::from)
            }
            Inner::Net { nodes, faults } => {
                let results: Vec<Result<(), NetError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..self.replicas)
                        .map(|i| {
                            let me = nodes[i].clone();
                            let peer = nodes[(i + 1) % self.replicas].clone();
                            let link = faults[i].clone();
                            let peer_link = faults[(i + 1) % self.replicas].clone();
                            scope.spawn(move || {
                                let mut remote = Remote::new(
                                    peer.name(),
                                    ChannelTransport::with_faults(peer.clone(), link),
                                );
                                for round in 0..ops_per_replica {
                                    let op = op_of(i, round);
                                    me.apply(LOCAL_BRANCH, &op)?;
                                    if gossip_every > 0
                                        && round % gossip_every == gossip_every - 1
                                        && !peer_link.is_partitioned()
                                    {
                                        match me.pull(&mut remote, LOCAL_BRANCH) {
                                            Ok(_)
                                            | Err(NetError::Dropped)
                                            | Err(NetError::Partitioned) => {}
                                            Err(e) => return Err(e),
                                        }
                                    }
                                }
                                Ok(())
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("replica thread panicked"))
                        .collect()
                });
                results.into_iter().collect()
            }
        }
    }

    /// Runs the same workload as [`Cluster::run`] in **deterministic
    /// lockstep**: a single driver thread applies round `k`'s operation on
    /// every replica in index order, then (on gossip rounds) performs the
    /// ring pulls in index order.
    ///
    /// With seeded fault plans, the entire execution — operations, gossip
    /// outcomes, message loss — is a pure function of the configuration,
    /// which is what makes `PEEPUL_REPLAY`-style failure replay exact.
    /// Use [`Cluster::run`] when genuine thread interleaving is the point.
    ///
    /// # Errors
    ///
    /// Propagates the first store/verification error any replica hit.
    pub fn run_lockstep<F>(
        &self,
        ops_per_replica: usize,
        gossip_every: usize,
        op_of: F,
    ) -> Result<(), NetError>
    where
        F: Fn(usize, usize) -> M::Op,
    {
        match &self.inner {
            Inner::Sim(store) => {
                for round in 0..ops_per_replica {
                    for i in 0..self.replicas {
                        let me = replica_branch(i);
                        store.lock().branch_mut(&me)?.apply(&op_of(i, round))?;
                    }
                    if gossip_every > 0 && round % gossip_every == gossip_every - 1 {
                        for i in 0..self.replicas {
                            let me = replica_branch(i);
                            let peer = replica_branch((i + 1) % self.replicas);
                            store.lock().branch_mut(&me)?.merge_from(&peer)?;
                        }
                    }
                }
                Ok(())
            }
            Inner::Net { nodes, faults } => {
                let mut remotes: Vec<_> = (0..self.replicas)
                    .map(|i| {
                        let peer = nodes[(i + 1) % self.replicas].clone();
                        let name = peer.name().to_string();
                        Remote::new(name, ChannelTransport::with_faults(peer, faults[i].clone()))
                    })
                    .collect();
                for round in 0..ops_per_replica {
                    for (i, node) in nodes.iter().enumerate() {
                        node.apply(LOCAL_BRANCH, &op_of(i, round))?;
                    }
                    if gossip_every > 0 && round % gossip_every == gossip_every - 1 {
                        for (i, node) in nodes.iter().enumerate() {
                            if faults[(i + 1) % self.replicas].is_partitioned() {
                                continue;
                            }
                            match node.pull(&mut remotes[i], LOCAL_BRANCH) {
                                Ok(_) | Err(NetError::Dropped) | Err(NetError::Partitioned) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Brings every replica to the same state and returns the per-replica
    /// final states.
    ///
    /// In replicated mode this runs the [`AntiEntropy`] scheduler over the
    /// cluster's own links — **honouring their fault plans**, so a cluster
    /// whose partitions were never healed fails here rather than
    /// pretending to converge. In simulation mode it performs the classic
    /// two-pass ring merge.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when anti-entropy quiesced without reaching
    /// convergence (links still partitioned); store errors from merging.
    pub fn converge(&self) -> Result<Vec<Arc<M>>, NetError> {
        match &self.inner {
            Inner::Sim(store) => {
                let mut store = store.lock();
                // Two rounds of ring merges in both directions reach a
                // fixpoint: first everyone's updates flow into replica 0,
                // then back out.
                for i in 1..self.replicas {
                    let (a, b) = (replica_branch(0), replica_branch(i));
                    store.branch_mut(&a)?.merge_from(&b)?;
                }
                for i in 1..self.replicas {
                    let (a, b) = (replica_branch(i), replica_branch(0));
                    store.branch_mut(&a)?.merge_from(&b)?;
                }
                Ok((0..self.replicas)
                    .map(|i| store.state(&replica_branch(i)))
                    .collect::<Result<_, _>>()?)
            }
            Inner::Net { nodes, faults } => {
                let report = AntiEntropy::new().run_with_faults(nodes, LOCAL_BRANCH, faults)?;
                if !report.converged {
                    return Err(NetError::Protocol(format!(
                        "anti-entropy quiesced without convergence after {} rounds \
                         ({} pulls lost) — are links still partitioned?",
                        report.rounds, report.pulls_failed
                    )));
                }
                Ok(nodes
                    .iter()
                    .map(|n| n.state(LOCAL_BRANCH))
                    .collect::<Result<_, _>>()?)
            }
        }
    }

    /// Runs `f` with the shared store (simulation mode only).
    ///
    /// # Panics
    ///
    /// Panics in replicated mode — there is no shared store; address a
    /// single replica's store through [`Cluster::node`] and
    /// [`Replica::with_store`] instead.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut BranchStore<M, B>) -> R) -> R {
        match &self.inner {
            Inner::Sim(store) => f(&mut store.lock()),
            Inner::Net { .. } => panic!(
                "Cluster::with_store is simulation-mode only; replicated clusters \
                 have one store per replica (use node(i).with_store(...))"
            ),
        }
    }
}

impl<M: Mrdt, B: Backend> fmt::Debug for Cluster<M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match &self.inner {
            Inner::Sim(_) => "simulated",
            Inner::Net { .. } => "replicated",
        };
        write!(f, "Cluster({} replicas, {mode})", self.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_types::counter::{Counter, CounterOp};
    use peepul_types::or_set_space::{OrSetOp, OrSetSpace};
    use peepul_types::pn_counter::{PnCounter, PnCounterOp};

    #[test]
    fn replicated_counters_converge_to_total_increments() {
        let cluster: Cluster<Counter> = Cluster::new(4).unwrap();
        assert!(cluster.is_replicated());
        cluster.run(50, 7, |_, _| CounterOp::Increment).unwrap();
        let states = cluster.converge().unwrap();
        assert_eq!(states.len(), 4);
        for s in &states {
            assert_eq!(s.count(), 200);
        }
        // Every replica genuinely owns objects: nothing is shared, so each
        // backend holds the full converged history it pulled.
        for i in 0..4 {
            assert!(cluster.node(i).unwrap().object_count() > 1);
        }
    }

    #[test]
    fn simulated_counters_converge_to_total_increments() {
        let cluster: Cluster<Counter> = Cluster::simulated(4).unwrap();
        assert!(!cluster.is_replicated());
        cluster.run(50, 7, |_, _| CounterOp::Increment).unwrap();
        let states = cluster.converge().unwrap();
        for s in &states {
            assert_eq!(s.count(), 200);
        }
    }

    #[test]
    fn replicated_pn_counters_converge_with_mixed_ops() {
        let cluster: Cluster<PnCounter> = Cluster::new(3).unwrap();
        cluster
            .run(60, 5, |replica, round| {
                if (replica + round) % 3 == 0 {
                    PnCounterOp::Decrement
                } else {
                    PnCounterOp::Increment
                }
            })
            .unwrap();
        let states = cluster.converge().unwrap();
        let expected = states[0].value();
        for s in &states {
            assert_eq!(s.value(), expected);
        }
        // 60 ops × 3 replicas, one third decrements.
        assert_eq!(expected, (120 - 60) as i64);
    }

    #[test]
    fn replicated_or_sets_converge_observably() {
        let cluster: Cluster<OrSetSpace<u32>> = Cluster::new(3).unwrap();
        cluster
            .run(40, 8, |replica, round| {
                let x = ((replica * 31 + round * 7) % 16) as u32;
                if round % 4 == 3 {
                    OrSetOp::Remove(x)
                } else {
                    OrSetOp::Add(x)
                }
            })
            .unwrap();
        let states = cluster.converge().unwrap();
        for s in &states[1..] {
            assert!(
                states[0].observably_equal(s),
                "replicas disagree: {:?} vs {:?}",
                states[0],
                s
            );
        }
    }

    #[test]
    fn single_replica_cluster_is_fine() {
        let cluster: Cluster<Counter> = Cluster::new(1).unwrap();
        cluster.run(10, 3, |_, _| CounterOp::Increment).unwrap();
        let states = cluster.converge().unwrap();
        assert_eq!(states[0].count(), 10);
    }

    #[test]
    fn unhealed_partition_fails_converge_honestly() {
        let cluster: Cluster<Counter> = Cluster::new(3).unwrap();
        for i in 0..3 {
            cluster.faults(i).unwrap().partition();
        }
        cluster.run(5, 2, |_, _| CounterOp::Increment).unwrap();
        let err = cluster.converge().unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
        // Heal and converge for real.
        for i in 0..3 {
            cluster.faults(i).unwrap().heal();
        }
        let states = cluster.converge().unwrap();
        for s in &states {
            assert_eq!(s.count(), 15);
        }
    }

    #[test]
    fn reads_address_each_replica() {
        let cluster: Cluster<Counter> = Cluster::new(2).unwrap();
        cluster.run(3, 0, |_, _| CounterOp::Increment).unwrap();
        use peepul_types::counter::CounterQuery;
        assert_eq!(cluster.read(0, &CounterQuery::Value).unwrap(), 3);
        assert!(cluster.read(9, &CounterQuery::Value).is_err());
    }
}

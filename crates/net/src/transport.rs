//! Request/response transports and deterministic fault injection.
//!
//! A [`Transport`] moves one opaque request frame to a peer replica and
//! brings its response frame back — the only primitive the whole sync
//! protocol needs. Two implementations ship:
//!
//! * [`ChannelTransport`] (here) — in-process and **deterministic**: the
//!   request bytes are handed straight to the peer's service loop under
//!   its lock, with an optional [`FaultInjector`] deciding per message
//!   whether to deliver, drop or partition. This is the transport the
//!   convergence and partition suites drive, because every failure is
//!   reproducible.
//! * [`TcpTransport`](crate::tcp::TcpTransport) — length-prefixed
//!   checksummed frames over blocking TCP, for genuinely separate
//!   processes.
//!
//! Even the in-process transport round-trips through real bytes: the
//! request is encoded, the peer decodes it, and the response comes back as
//! bytes. Nothing typed is shared between replicas, so a `ChannelTransport`
//! fleet exercises exactly the code paths a TCP fleet does.

use crate::error::NetError;
use crate::replica::Replica;
use parking_lot::Mutex;
use peepul_core::Mrdt;
use peepul_store::Backend;
use std::fmt;
use std::sync::Arc;

/// A bidirectional request/response link to one peer replica.
///
/// Implementations are synchronous and blocking; a request either returns
/// the peer's response frame or fails. A failed request may or may not
/// have reached the peer (see [`NetError::Dropped`]) — exactly the
/// ambiguity a real network has, which the sync protocol tolerates because
/// every operation is idempotent (content-addressed objects,
/// fast-forward ref updates).
pub trait Transport {
    /// Sends one request frame and returns the peer's response frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Partitioned`] / [`NetError::Dropped`] under fault
    /// injection; [`NetError::Io`] / [`NetError::BadFrame`] from socket
    /// transports.
    fn request(&mut self, request: &[u8]) -> Result<Vec<u8>, NetError>;
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn request(&mut self, request: &[u8]) -> Result<Vec<u8>, NetError> {
        (**self).request(request)
    }
}

/// Counters a [`FaultInjector`] keeps.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Requests that reached the injector (delivered or not).
    pub requests: u64,
    /// Messages the injector swallowed (requests and responses).
    pub dropped: u64,
}

#[derive(Debug, Default)]
struct FaultState {
    partitioned: bool,
    drop_requests: u32,
    drop_responses: u32,
    loss_per_mille: u16,
    rng: u64,
    counters: FaultCounters,
}

impl FaultState {
    /// Deterministic xorshift64* draw in `0..1000`.
    fn draw(&mut self) -> u16 {
        let mut x = self.rng.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % 1000) as u16
    }

    fn lose(&mut self) -> bool {
        self.loss_per_mille > 0 && self.draw() < self.loss_per_mille
    }
}

/// Shared, cheaply clonable fault plan for one link: partition it, drop
/// the next *n* messages, or lose a deterministic fraction of traffic.
///
/// All decisions are reproducible: probabilistic loss runs on a seeded
/// xorshift64* stream, so the same schedule of requests sees the same
/// drops on every run — which is what lets the partition proptests shrink.
///
/// # Example
///
/// ```
/// use peepul_net::transport::FaultInjector;
///
/// let faults = FaultInjector::new();
/// faults.partition();
/// assert!(faults.is_partitioned());
/// faults.heal();
/// assert!(!faults.is_partitioned());
/// ```
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Arc<Mutex<FaultState>>,
}

impl FaultInjector {
    /// A fault-free injector (all messages delivered until told otherwise).
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Severs the link: every request fails with [`NetError::Partitioned`]
    /// until [`FaultInjector::heal`].
    pub fn partition(&self) {
        self.inner.lock().partitioned = true;
    }

    /// Restores a partitioned link.
    pub fn heal(&self) {
        self.inner.lock().partitioned = false;
    }

    /// Whether the link is currently severed.
    pub fn is_partitioned(&self) -> bool {
        self.inner.lock().partitioned
    }

    /// Drops the next `n` **requests** (they never reach the peer).
    pub fn drop_requests(&self, n: u32) {
        self.inner.lock().drop_requests += n;
    }

    /// Drops the next `n` **responses**: the request reaches the peer and
    /// takes effect there, but the caller sees [`NetError::Dropped`] — the
    /// classic did-my-write-land ambiguity.
    pub fn drop_responses(&self, n: u32) {
        self.inner.lock().drop_responses += n;
    }

    /// Loses `per_mille`/1000 of messages, decided by a xorshift64* stream
    /// seeded with `seed` (deterministic per injector).
    pub fn set_loss(&self, per_mille: u16, seed: u64) {
        let mut s = self.inner.lock();
        s.loss_per_mille = per_mille.min(1000);
        // splitmix64: spreads adjacent seeds across the state space (and
        // never yields the all-zero state xorshift would get stuck in).
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        s.rng = (z ^ (z >> 31)).max(1);
    }

    /// Message counters so far.
    pub fn counters(&self) -> FaultCounters {
        self.inner.lock().counters
    }

    /// Decides the fate of an outgoing request.
    fn before_request(&self) -> Result<(), NetError> {
        let mut s = self.inner.lock();
        s.counters.requests += 1;
        if s.partitioned {
            s.counters.dropped += 1;
            return Err(NetError::Partitioned);
        }
        if s.drop_requests > 0 {
            s.drop_requests -= 1;
            s.counters.dropped += 1;
            return Err(NetError::Dropped);
        }
        if s.lose() {
            s.counters.dropped += 1;
            return Err(NetError::Dropped);
        }
        Ok(())
    }

    /// Decides the fate of an incoming response (the request has already
    /// been served by then).
    fn before_response(&self) -> Result<(), NetError> {
        let mut s = self.inner.lock();
        if s.drop_responses > 0 {
            s.drop_responses -= 1;
            s.counters.dropped += 1;
            return Err(NetError::Dropped);
        }
        if s.lose() {
            s.counters.dropped += 1;
            return Err(NetError::Dropped);
        }
        Ok(())
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.inner.lock();
        write!(
            f,
            "FaultInjector(partitioned: {}, loss: {}‰, {:?})",
            s.partitioned, s.loss_per_mille, s.counters
        )
    }
}

/// The in-process transport: requests are served synchronously by the peer
/// replica under its own lock, optionally filtered by a [`FaultInjector`].
///
/// Deterministic by construction — no threads, no timing, no buffering —
/// while still forcing every message through the real byte codec.
pub struct ChannelTransport<M: Mrdt, B: Backend> {
    peer: Replica<M, B>,
    faults: FaultInjector,
}

impl<M: Mrdt, B: Backend> ChannelTransport<M, B> {
    /// A fault-free link to `peer`.
    pub fn connect(peer: Replica<M, B>) -> Self {
        ChannelTransport {
            peer,
            faults: FaultInjector::new(),
        }
    }

    /// A link to `peer` filtered by `faults` (sharable with other links to
    /// model a replica whose whole uplink fails at once).
    pub fn with_faults(peer: Replica<M, B>, faults: FaultInjector) -> Self {
        ChannelTransport { peer, faults }
    }

    /// The link's fault plan.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }
}

impl<M: Mrdt, B: Backend> Transport for ChannelTransport<M, B> {
    fn request(&mut self, request: &[u8]) -> Result<Vec<u8>, NetError> {
        self.faults.before_request()?;
        let response = self.peer.handle_frame(request);
        self.faults.before_response()?;
        Ok(response)
    }
}

impl<M: Mrdt, B: Backend> fmt::Debug for ChannelTransport<M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ChannelTransport(peer: {}, {:?})",
            self.peer.name(),
            self.faults
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_stream_is_deterministic() {
        let draws = |seed: u64| {
            let f = FaultInjector::new();
            f.set_loss(500, seed);
            (0..64)
                .map(|_| f.before_request().is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(43), "different seeds, different drops");
        assert!(draws(42).iter().any(|d| *d), "50% loss drops something");
        assert!(!draws(42).iter().all(|d| *d), "50% loss delivers something");
    }

    #[test]
    fn drop_counts_are_consumed() {
        let f = FaultInjector::new();
        f.drop_requests(2);
        assert_eq!(f.before_request(), Err(NetError::Dropped));
        assert_eq!(f.before_request(), Err(NetError::Dropped));
        assert_eq!(f.before_request(), Ok(()));
        f.drop_responses(1);
        assert_eq!(f.before_response(), Err(NetError::Dropped));
        assert_eq!(f.before_response(), Ok(()));
        assert_eq!(f.counters().dropped, 3);
    }

    #[test]
    fn partition_blocks_until_healed() {
        let f = FaultInjector::new();
        f.partition();
        assert_eq!(f.before_request(), Err(NetError::Partitioned));
        f.heal();
        assert_eq!(f.before_request(), Ok(()));
    }
}

//! Replicas and remotes: the client and server halves of the sync
//! protocol.
//!
//! A [`Replica`] owns its own [`BranchStore`] — its own commit graph, its
//! own backend, its own Lamport clock. Nothing is shared with any peer:
//! the only way state moves between replicas is as verified
//! content-addressed objects over a [`Transport`]. That is the difference
//! between this module and the old single-store thread simulation, and it
//! is what makes partitions, lag and independent crashes expressible.
//!
//! A [`Remote`] is a named link to a peer (name + transport), like a Git
//! remote. The three client operations mirror Git's:
//!
//! * [`Replica::fetch`] — negotiate and transfer the objects this store
//!   lacks, verify every one against its content address, and land the
//!   remote head as a `remote/<name>/<branch>` tracking branch;
//! * [`Replica::pull`] — fetch, then integrate: fast-forward when the
//!   local branch is strictly behind, otherwise a real three-way merge
//!   through the store's typed-handle path (LCA search, merge memo and
//!   all);
//! * [`Replica::push`] — upload the peer's missing objects and ask it to
//!   fast-forward its branch; refused if the peer has diverged.
//!
//! Replication operations **never hold the local store lock across a
//! transport request** — locks are taken per phase. Two replicas pulling
//! from each other concurrently therefore cannot deadlock: each thread
//! holds at most one replica lock at any instant.
//!
//! The store sits behind an `RwLock`, not a mutex: pure observations
//! ([`Replica::read`], [`Replica::state`], the read-only protocol
//! requests `FetchRefs`/`Want`/`GetStates`/`HaveObjects`) take the shared
//! read lock and run concurrently with each other — the store's
//! commit-free query path needs only `&self` — while mutations (applies,
//! merges, ingest, `Push`) take the exclusive write lock. A server
//! answering many sessions over one replica therefore serializes writes
//! but never serializes reads behind them.

use crate::error::NetError;
use crate::message::{PackedObject, Request, Response, StateTransfer};
use crate::metrics::NetMetrics;
use crate::observer::{HistoryObserver, ReplicationMutation};
use crate::transport::Transport;
use parking_lot::RwLock;
use peepul_core::{Mrdt, ReplicaId, Timestamp, Wire};
use peepul_store::sha256::Sha256;
use peepul_store::{
    parse_commit_record, Backend, BranchStore, ObjectId, PackState, StoreError, TrackOutcome,
};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// The observer/mutation/metrics slot shared by every clone of a replica
/// handle.
struct Hooks<M: Mrdt> {
    observer: Option<Arc<dyn HistoryObserver<M>>>,
    mutation: ReplicationMutation,
    metrics: Option<Arc<NetMetrics>>,
}

impl<M: Mrdt> Default for Hooks<M> {
    fn default() -> Self {
        Hooks {
            observer: None,
            mutation: ReplicationMutation::None,
            metrics: None,
        }
    }
}

/// One independent replica: a name plus exclusive ownership of a
/// [`BranchStore`] (and through it, a backend).
///
/// `Replica` is a cheaply clonable *handle* (an `Arc` around the store):
/// clones address the same replica. That is how a replica is shared with
/// the transports serving it to peers ([`ChannelTransport`] holds one,
/// [`TcpServer`] holds one) while application threads keep using it
/// locally.
///
/// [`ChannelTransport`]: crate::transport::ChannelTransport
/// [`TcpServer`]: crate::tcp::TcpServer
pub struct Replica<M: Mrdt, B: Backend> {
    store: Arc<RwLock<BranchStore<M, B>>>,
    name: Arc<str>,
    hooks: Arc<RwLock<Hooks<M>>>,
}

impl<M: Mrdt, B: Backend> Clone for Replica<M, B> {
    fn clone(&self) -> Self {
        Replica {
            store: Arc::clone(&self.store),
            name: Arc::clone(&self.name),
            hooks: Arc::clone(&self.hooks),
        }
    }
}

impl<M: Mrdt, B: Backend> Replica<M, B> {
    /// Wraps a store as a named replica.
    ///
    /// **The caller owns replica-id disjointness**: independent stores
    /// that will replicate into each other must mint timestamps from
    /// disjoint replica-id ranges
    /// ([`BranchStore::with_backend_and_base`]), or two of them can mint
    /// the same `(tick, replica)` pair — and two concurrent operations
    /// with coincidentally equal states would then collapse into one
    /// commit identity and be deduplicated away by sync. Prefer
    /// [`Replica::open`], which derives a disjoint base from the
    /// replica's name; use `new` when you constructed the store with an
    /// explicit base yourself (as [`Cluster`](crate::Cluster) does).
    pub fn new(name: impl Into<String>, store: BranchStore<M, B>) -> Self {
        Replica {
            store: Arc::new(RwLock::new(store)),
            name: Arc::from(name.into()),
            hooks: Arc::new(RwLock::new(Hooks::default())),
        }
    }

    /// Builds a replica **and its store** — creating a fresh store over
    /// an empty backend, or performing the **typed reopen**
    /// ([`BranchStore::open`]) when the backend already holds published
    /// refs, so a durable replica survives a process restart with its
    /// full history, Lamport clock and `root_branch` intact. Either way
    /// the store's replica-id base is derived from the replica's name
    /// (first four bytes of `sha256(name)`): replicas with distinct
    /// names get pseudo-randomly spread, almost-surely disjoint id
    /// ranges without any coordination — the safe default for
    /// independent peers. (Fleets wanting guaranteed disjointness assign
    /// explicit bases; see [`Cluster`](crate::Cluster).)
    ///
    /// # Errors
    ///
    /// As [`BranchStore::with_backend_and_base`] /
    /// [`BranchStore::open_with_base`]; additionally
    /// [`StoreError::UnknownBranch`] when a reopened backend does not
    /// contain `root_branch` (the backend belongs to a different
    /// replica).
    pub fn open(
        name: impl Into<String>,
        root_branch: impl Into<String>,
        backend: B,
    ) -> Result<Self, StoreError> {
        let name = name.into();
        let root_branch = root_branch.into();
        let digest = Sha256::digest(name.as_bytes());
        let base = u32::from_be_bytes(digest[..4].try_into().expect("4 bytes"));
        let store = if backend.refs()?.is_empty() {
            BranchStore::with_backend_and_base(root_branch, backend, base)?
        } else {
            let store = BranchStore::open_with_base(backend, base)?;
            if !store.has_branch(&root_branch) {
                return Err(StoreError::UnknownBranch(root_branch));
            }
            store
        };
        Ok(Replica::new(name, store))
    }

    /// The replica's name (used in peers' tracking-branch names and
    /// diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs `f` with the store under the **exclusive write lock**. The
    /// closure must not block on another replica's lock (transports do
    /// not — see the module docs).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut BranchStore<M, B>) -> R) -> R {
        f(&mut self.store.write())
    }

    /// Runs `f` with the store under the **shared read lock**: any number
    /// of readers run concurrently, and none of the store's mutating or
    /// commit-minting paths are reachable through `&BranchStore`.
    pub fn with_store_read<R>(&self, f: impl FnOnce(&BranchStore<M, B>) -> R) -> R {
        f(&self.store.read())
    }

    /// Answers a pure query against a local branch head (commit-free,
    /// under the shared read lock — concurrent with other readers).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn read(&self, branch: &str, q: &M::Query) -> Result<M::Output, StoreError> {
        self.store.read().read(branch, q)
    }

    /// A local branch's current state (cheap `Arc` clone).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn state(&self, branch: &str) -> Result<Arc<M>, StoreError> {
        self.store.read().state(branch)
    }

    /// The content address of a local branch's head *state* — what the
    /// convergence suites compare across replicas (byte-identical
    /// canonical states ⇒ equal ids, on any backend).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn state_id(&self, branch: &str) -> Result<ObjectId, StoreError> {
        self.store.read().state_id(branch)
    }

    /// The content address of a local branch's head *commit*.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn head_id(&self, branch: &str) -> Result<ObjectId, StoreError> {
        self.store.read().head_id(branch)
    }

    /// Number of distinct objects in this replica's backend.
    pub fn object_count(&self) -> usize {
        self.store.read().backend().object_count()
    }

    /// Attaches a [`HistoryObserver`] that will receive one witness event
    /// per replication-visible transition: local operations through
    /// [`Replica::apply`], pack ingests (fetches and served pushes), head
    /// integrations, and observations through [`Replica::read_observed`].
    /// Shared by every clone of this handle; replaces any previous
    /// observer.
    pub fn set_observer(&self, observer: Arc<dyn HistoryObserver<M>>) {
        self.hooks.write().observer = Some(observer);
    }

    /// Detaches the observer, if any.
    pub fn clear_observer(&self) {
        self.hooks.write().observer = None;
    }

    /// **Mutation-testing surface — never call in production code.**
    /// Enacts a deliberate replication fault (see
    /// [`ReplicationMutation`]) on this replica's fetch/pull/apply paths,
    /// so the `Φ_ra` kill-gate can prove each fault is caught. Shared by
    /// every clone of this handle.
    pub fn set_replication_mutation(&self, mutation: ReplicationMutation) {
        self.hooks.write().mutation = mutation;
    }

    fn hooks_snapshot(&self) -> (Option<Arc<dyn HistoryObserver<M>>>, ReplicationMutation) {
        let h = self.hooks.read();
        (h.observer.clone(), h.mutation)
    }

    /// Attaches (or detaches, with `None`) replication metrics — same
    /// shared-by-every-clone semantics as [`Replica::set_observer`].
    /// Fetches, pushes and served pushes through any clone of this
    /// handle update the attached counters.
    pub fn set_net_metrics(&self, metrics: Option<Arc<NetMetrics>>) {
        self.hooks.write().metrics = metrics;
    }

    fn net_metrics(&self) -> Option<Arc<NetMetrics>> {
        self.hooks.read().metrics.clone()
    }

    /// Applies one local operation to `branch` — the witness-observed
    /// counterpart of `with_store(|s| s.branch_mut(branch)?.apply(op))`.
    /// When an observer is attached, the minted event (timestamp, return
    /// value, visible set) is emitted **under the same write lock** as
    /// the commit, so the per-replica witness order matches the store's
    /// mutation order exactly.
    ///
    /// # Errors
    ///
    /// As [`BranchStore::branch_mut`] + apply.
    pub fn apply(&self, branch: &str, op: &M::Op) -> Result<M::Value, StoreError> {
        let (observer, mutation) = self.hooks_snapshot();
        let mut store = self.store.write();
        let value = store.branch_mut(branch)?.apply(op)?;
        if let Some(obs) = &observer {
            let head = store.head(branch)?;
            let t = store.commit_mint(head);
            let mut past = store.visible_mints(head);
            past.retain(|&e| e != t);
            if mutation == ReplicationMutation::DropVisibilityEdge {
                // Claim the latest foreign event in the ancestry was never
                // observed (no-op while the ancestry is all-local).
                if let Some(i) = past.iter().rposition(|e| e.replica() != t.replica()) {
                    past.remove(i);
                }
            }
            obs.local_op(&self.name, t, op, &value, &past);
        }
        Ok(value)
    }

    /// Answers a pure query like [`Replica::read`], additionally emitting
    /// the observation (query, output, visible event set) to the attached
    /// observer — the probe side of the `Φ_ra` witness. Runs under the
    /// shared read lock.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn read_observed(&self, branch: &str, q: &M::Query) -> Result<M::Output, StoreError> {
        let (observer, _) = self.hooks_snapshot();
        let store = self.store.read();
        let out = store.read(branch, q)?;
        if let Some(obs) = &observer {
            let visible = store.visible_mints(store.head(branch)?);
            obs.observed(&self.name, q, &out, &visible);
        }
        Ok(out)
    }
}

impl<M: Mrdt, B: Backend> Replica<M, B> {
    /// Serves one protocol request against this replica's store — the
    /// server half of fetch and push. Errors are folded into
    /// [`Response::Error`] so a misbehaving client cannot poison the
    /// serving replica.
    ///
    /// Read-only requests (`FetchRefs`, `Want`, `GetStates`,
    /// `HaveObjects`) are served under the shared read lock and run
    /// concurrently; only `Push` takes the write lock.
    pub fn handle(&self, req: Request) -> Response {
        let served = match req {
            Request::Push { .. } => self.serve_push(req),
            _ => serve_read(&self.store.read(), req, self.net_metrics().as_ref()),
        };
        match served {
            Ok(r) => r,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    }

    /// Byte-level [`Replica::handle`]: decodes a request frame, serves it,
    /// encodes the response. What transports call.
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        let resp = match Request::from_wire(frame) {
            Some(req) => self.handle(req),
            None => Response::Error {
                message: "undecodable request frame".into(),
            },
        };
        resp.to_wire()
    }

    /// Downloads everything `branch` has that this replica lacks and lands
    /// the remote head as the tracking branch `remote/<remote>/<branch>`.
    ///
    /// The negotiation is Git's in miniature (see [`crate::message`]):
    /// refs, then one want/have exchange answered from the Merkle
    /// structure, then exactly the state objects this replica is missing.
    /// **Every received object is verified against its content address
    /// before it enters the store**; a corrupt transfer fails with
    /// [`StoreError::CorruptObject`] and changes nothing.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownRemoteBranch`] when the remote does not advertise
    /// `branch`; transport errors; [`NetError::Store`] on verification or
    /// ingest failure.
    pub fn fetch<T: Transport>(
        &self,
        remote: &mut Remote<T>,
        branch: &str,
    ) -> Result<FetchStats, NetError> {
        let metrics = self.net_metrics();
        let start = metrics.as_ref().map(|_| std::time::Instant::now());
        let rt0 = remote.round_trips;
        let tracking_branch = format!("remote/{}/{branch}", remote.name());
        let refs = remote.refs()?;
        let head = refs
            .iter()
            .find(|(name, _)| name == branch)
            .map(|(_, oid)| *oid)
            .ok_or_else(|| NetError::UnknownRemoteBranch(branch.to_owned()))?;

        // Phase 1 (local read lock only): what do we already have?
        let (haves, up_to_date) = self.with_store_read(|s| -> Result<_, StoreError> {
            let haves: Vec<ObjectId> = s.backend().refs()?.into_iter().map(|(_, o)| o).collect();
            Ok((haves, s.has_commit(head)))
        })?;
        if up_to_date {
            self.with_store(|s| s.force_track(&tracking_branch, head))?;
            let stats = FetchStats {
                round_trips: remote.round_trips - rt0,
                commits_received: 0,
                states_received: 0,
                delta_states_received: 0,
                state_bytes_received: 0,
                tracking_branch,
                up_to_date: true,
            };
            if let (Some(m), Some(start)) = (&metrics, start) {
                m.fetches_total.inc();
                m.round_trips_total.add(stats.round_trips);
                m.fetch_micros.observe_since(start);
            }
            return Ok(stats);
        }

        // Phase 2 (no local lock): one want/have round resolves the whole
        // missing commit subgraph, parents first.
        let commits = remote.want(&[head], &haves)?;

        // Phase 3 (local read lock only): which state objects do we lack?
        let mut need: Vec<ObjectId> = Vec::new();
        self.with_store_read(|s| {
            let mut seen = HashSet::new();
            for pc in &commits {
                if let Some(meta) = parse_commit_record(&pc.bytes) {
                    if seen.insert(meta.state) && s.state_payload(meta.state).is_none() {
                        need.push(meta.state);
                    }
                }
            }
        });

        // Phase 4 (no local lock): transfer them — delta-aware. The
        // `haves` from phase 1 double as the proof of which bases this
        // replica holds, so the peer can answer with O(delta) transfers;
        // every delta is resolved and re-hashed during ingest.
        let states = if need.is_empty() {
            Vec::new()
        } else {
            remote.get_states_delta(&need, &haves)?
        };

        // Phase 5 (local lock only): verify + ingest + land the tracking
        // branch.
        let (observer, mutation) = self.hooks_snapshot();
        let counts = self.with_store(|s| -> Result<IngestCounts, NetError> {
            let pre_tick = s.tick();
            let mut learned = if observer.is_some() {
                fresh_pack_events(s, &commits)
            } else {
                Vec::new()
            };
            let counts = ingest_transfers(s, &commits, &states)?;
            if !s.has_commit(head) {
                return Err(NetError::Protocol(format!(
                    "peer advertised head {} but did not send it",
                    head.short()
                )));
            }
            s.force_track(&tracking_branch, head)?;
            if mutation == ReplicationMutation::BrokenReceiveRule {
                // Pretend the ingested events never advanced our clock.
                s.force_clock(pre_tick);
            }
            if let Some(obs) = &observer {
                if mutation == ReplicationMutation::ReorderedPackIngest {
                    learned.reverse();
                }
                if !learned.is_empty() {
                    obs.learned(&self.name, &learned);
                }
            }
            Ok(counts)
        })?;
        let state_bytes: u64 = states
            .iter()
            .map(|t| match t {
                StateTransfer::Full { state } => state.bytes.len() as u64,
                StateTransfer::Delta { delta, .. } => delta.len() as u64,
            })
            .sum();
        let stats = FetchStats {
            round_trips: remote.round_trips - rt0,
            commits_received: counts.commits,
            states_received: counts.states,
            delta_states_received: counts.delta_states,
            state_bytes_received: state_bytes,
            tracking_branch,
            up_to_date: false,
        };
        if let (Some(m), Some(start)) = (&metrics, start) {
            let micros = start.elapsed().as_micros() as u64;
            let bytes: u64 =
                commits.iter().map(|o| o.bytes.len() as u64).sum::<u64>() + state_bytes;
            m.fetches_total.inc();
            m.round_trips_total.add(stats.round_trips);
            m.pack_objects_in_total
                .add(commits.len() as u64 + states.len() as u64);
            m.pack_bytes_in_total.add(bytes);
            m.delta_states_in_total.add(counts.delta_states);
            m.delta_bytes_saved_total.add(counts.delta_saved_bytes);
            m.fetch_micros.observe(micros);
            m.trace("fetch", remote.name(), micros);
        }
        Ok(stats)
    }

    /// Fetches `branch` from the remote and integrates it into the local
    /// branch of the same name: fast-forward when the local branch is
    /// strictly behind (no redundant merge commit), a real three-way merge
    /// through the typed-handle path when both sides have new work, and
    /// branch creation when this replica never had the branch.
    ///
    /// # Errors
    ///
    /// As [`Replica::fetch`], plus merge-time store errors.
    pub fn pull<T: Transport>(
        &self,
        remote: &mut Remote<T>,
        branch: &str,
    ) -> Result<PullReport, NetError> {
        let fetch = self.fetch(remote, branch)?;
        let (observer, mutation) = self.hooks_snapshot();
        let outcome = self.with_store(|s| -> Result<PullOutcome, StoreError> {
            let target = s.head_id(&fetch.tracking_branch)?;
            let outcome = match s.track(branch, target)? {
                TrackOutcome::Created => PullOutcome::Created,
                TrackOutcome::Unchanged => PullOutcome::UpToDate,
                TrackOutcome::FastForwarded => PullOutcome::FastForwarded,
                TrackOutcome::Diverged if mutation == ReplicationMutation::SkipDivergenceCheck => {
                    // Skip the three-way merge: jump straight to the remote
                    // head, silently discarding local unmerged events.
                    s.force_track(branch, target)?;
                    PullOutcome::FastForwarded
                }
                TrackOutcome::Diverged => {
                    let before = s.head_id(branch)?;
                    let tracking = fetch.tracking_branch.clone();
                    s.branch_mut(branch)?.merge_from(tracking)?;
                    if s.head_id(branch)? == before {
                        PullOutcome::UpToDate // remote history already contained
                    } else {
                        PullOutcome::Merged
                    }
                }
            };
            if let Some(obs) = &observer {
                if !matches!(outcome, PullOutcome::UpToDate) {
                    let visible = s.visible_mints(s.head(branch)?);
                    obs.head_advanced(&self.name, &visible);
                }
            }
            Ok(outcome)
        })?;
        Ok(PullReport { fetch, outcome })
    }

    /// Uploads everything the peer lacks to fast-forward its `branch` to
    /// this replica's head of the same name. Like `git push`: refused with
    /// [`NetError::PushRejected`] when the peer's branch has local history
    /// the pushed head does not contain — pull, merge, push again.
    ///
    /// # Errors
    ///
    /// [`NetError::PushRejected`] on divergence; transport and store
    /// errors as for fetch.
    pub fn push<T: Transport>(
        &self,
        remote: &mut Remote<T>,
        branch: &str,
    ) -> Result<PushReport, NetError> {
        let metrics = self.net_metrics();
        let start = metrics.as_ref().map(|_| std::time::Instant::now());
        let rt0 = remote.round_trips;
        let refs = remote.refs()?;
        let server_heads: Vec<ObjectId> = refs.iter().map(|(_, o)| *o).collect();

        let (head, commits, state_ids) = self.with_store_read(|s| -> Result<_, NetError> {
            let head = s.head_id(branch).map_err(NetError::Store)?;
            let missing = s.commits_between(&[head], &server_heads);
            let mut commits = Vec::with_capacity(missing.len());
            let mut state_ids = Vec::new();
            let mut seen = HashSet::new();
            for c in missing {
                let oid = s.commit_oid(c);
                let bytes = s
                    .commit_record_bytes(oid)?
                    .ok_or_else(|| NetError::Protocol("own commit missing".into()))?;
                commits.push(PackedObject { id: oid, bytes });
                let sid = s.state_oid(c);
                if seen.insert(sid) {
                    state_ids.push(sid);
                }
            }
            Ok((head, commits, state_ids))
        })?;

        // Don't upload states the peer already stores (converged histories
        // share state objects even when commits differ).
        let peer_has = if state_ids.is_empty() {
            Vec::new()
        } else {
            remote.have_objects(&state_ids)?
        };
        let need: Vec<ObjectId> = state_ids
            .iter()
            .zip(peer_has.iter().chain(std::iter::repeat(&false)))
            .filter(|(_, has)| !**has)
            .map(|(id, _)| *id)
            .collect();
        let states = self.with_store_read(|s| -> Result<Vec<PackedObject>, NetError> {
            need.iter()
                .map(|id| {
                    // Canonical bytes straight from the backend — the
                    // storage format is the wire format.
                    let bytes = s
                        .state_bytes(*id)?
                        .ok_or_else(|| NetError::Protocol("own state missing".into()))?;
                    Ok(PackedObject { id: *id, bytes })
                })
                .collect()
        })?;

        let (commits_sent, states_sent) = (commits.len() as u64, states.len() as u64);
        let bytes_out: u64 = commits.iter().map(|o| o.bytes.len() as u64).sum::<u64>()
            + states.iter().map(|o| o.bytes.len() as u64).sum::<u64>();
        let created = remote.push_pack(branch, head, commits, states)?;
        let report = PushReport {
            round_trips: remote.round_trips - rt0,
            commits_sent,
            states_sent,
            created,
        };
        if let (Some(m), Some(start)) = (&metrics, start) {
            let micros = start.elapsed().as_micros() as u64;
            m.pushes_total.inc();
            m.round_trips_total.add(report.round_trips);
            m.pack_objects_out_total.add(commits_sent + states_sent);
            m.pack_bytes_out_total.add(bytes_out);
            m.push_micros.observe(micros);
            m.trace("push", remote.name(), micros);
        }
        Ok(report)
    }
}

impl<M: Mrdt, B: Backend> fmt::Debug for Replica<M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Replica({:?}, {:?})", &*self.name, &*self.store.read())
    }
}

/// What a fetch transferred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchStats {
    /// Transport round trips this fetch used (3 for a cold fetch: refs,
    /// want/have, states; 1 when already up to date).
    pub round_trips: u64,
    /// Commit records ingested (previously unknown commits only).
    pub commits_received: u64,
    /// State objects ingested.
    pub states_received: u64,
    /// Of those, how many crossed the wire in delta form.
    pub delta_states_received: u64,
    /// State payload bytes that actually crossed the wire (full canonical
    /// bytes for full transfers, delta bytes for delta transfers) — the
    /// numerator of a bytes-per-op measurement.
    pub state_bytes_received: u64,
    /// The tracking branch the remote head landed on.
    pub tracking_branch: String,
    /// Whether this replica already had the remote head.
    pub up_to_date: bool,
}

impl FetchStats {
    /// Total objects this fetch added to the local store.
    pub fn objects_received(&self) -> u64 {
        self.commits_received + self.states_received
    }
}

/// How a pull integrated the fetched head into the local branch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PullOutcome {
    /// The local branch did not exist and now tracks the remote head.
    Created,
    /// The local branch was strictly behind and fast-forwarded (no merge
    /// commit minted).
    FastForwarded,
    /// Both sides had new work; a three-way merge commit was created.
    Merged,
    /// The remote had nothing new.
    UpToDate,
}

/// The result of a [`Replica::pull`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PullReport {
    /// The transfer half.
    pub fetch: FetchStats,
    /// The integration half.
    pub outcome: PullOutcome,
}

/// The result of a [`Replica::push`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PushReport {
    /// Transport round trips this push used.
    pub round_trips: u64,
    /// Commit records uploaded.
    pub commits_sent: u64,
    /// State objects uploaded (after the have-negotiation filtered out
    /// what the peer already stored).
    pub states_sent: u64,
    /// Whether the peer created the branch (as opposed to fast-forwarding
    /// it).
    pub created: bool,
}

/// A named link to a peer replica — Git's "remote": a name this replica
/// files the peer's branches under, plus the transport that reaches it.
#[derive(Debug)]
pub struct Remote<T> {
    name: String,
    transport: T,
    round_trips: u64,
}

impl<T: Transport> Remote<T> {
    /// Names a transport. The name becomes the `remote/<name>/…` prefix of
    /// tracking branches created by fetches through this remote.
    pub fn new(name: impl Into<String>, transport: T) -> Self {
        Remote {
            name: name.into(),
            transport,
            round_trips: 0,
        }
    }

    /// The remote's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total request/response round trips performed through this remote.
    pub fn round_trips(&self) -> u64 {
        self.round_trips
    }

    fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        self.round_trips += 1;
        let frame = self.transport.request(&req.to_wire())?;
        Response::from_frame(&frame)
    }

    /// `FetchRefs`: the peer's branch heads.
    ///
    /// # Errors
    ///
    /// Transport errors; [`NetError::Protocol`] on a mismatched response.
    pub fn refs(&mut self) -> Result<Vec<(String, ObjectId)>, NetError> {
        match self.call(&Request::FetchRefs)? {
            Response::Refs { refs } => Ok(refs),
            r => Err(unexpected("Refs", &r)),
        }
    }

    /// `Want`: the commit records reachable from `wants` but not `haves`.
    ///
    /// # Errors
    ///
    /// As [`Remote::refs`].
    pub fn want(
        &mut self,
        wants: &[ObjectId],
        haves: &[ObjectId],
    ) -> Result<Vec<PackedObject>, NetError> {
        let req = Request::Want {
            wants: wants.to_vec(),
            haves: haves.to_vec(),
        };
        match self.call(&req)? {
            Response::Commits { commits } => Ok(commits),
            r => Err(unexpected("Commits", &r)),
        }
    }

    /// `GetStates`: the peer's state objects under `ids`.
    ///
    /// # Errors
    ///
    /// As [`Remote::refs`].
    pub fn get_states(&mut self, ids: &[ObjectId]) -> Result<Vec<PackedObject>, NetError> {
        let req = Request::GetStates { ids: ids.to_vec() };
        match self.call(&req)? {
            Response::States { states } => Ok(states),
            r => Err(unexpected("States", &r)),
        }
    }

    /// `GetStatesDelta`: the peer's state objects under `ids`, each
    /// possibly as a delta against a base reachable from `haves` (or
    /// served earlier in the same reply). The caller resolves and
    /// hash-verifies every delta on ingest.
    ///
    /// # Errors
    ///
    /// As [`Remote::refs`].
    pub fn get_states_delta(
        &mut self,
        ids: &[ObjectId],
        haves: &[ObjectId],
    ) -> Result<Vec<StateTransfer>, NetError> {
        let req = Request::GetStatesDelta {
            ids: ids.to_vec(),
            haves: haves.to_vec(),
        };
        match self.call(&req)? {
            Response::StatesDelta { states } => Ok(states),
            r => Err(unexpected("StatesDelta", &r)),
        }
    }

    /// `HaveObjects`: per-id presence on the peer.
    ///
    /// # Errors
    ///
    /// As [`Remote::refs`].
    pub fn have_objects(&mut self, ids: &[ObjectId]) -> Result<Vec<bool>, NetError> {
        let req = Request::HaveObjects { ids: ids.to_vec() };
        match self.call(&req)? {
            Response::Haves { haves } => Ok(haves),
            r => Err(unexpected("Haves", &r)),
        }
    }

    /// `Push`: upload a pack and fast-forward the peer's branch. Returns
    /// whether the branch was created.
    ///
    /// # Errors
    ///
    /// [`NetError::PushRejected`] when the peer denies the update; other
    /// errors as [`Remote::refs`].
    pub fn push_pack(
        &mut self,
        branch: &str,
        head: ObjectId,
        commits: Vec<PackedObject>,
        states: Vec<PackedObject>,
    ) -> Result<bool, NetError> {
        let req = Request::Push {
            branch: branch.to_owned(),
            head,
            commits,
            states,
        };
        match self.call(&req)? {
            Response::Pushed { created } => Ok(created),
            Response::PushDenied => Err(NetError::PushRejected),
            r => Err(unexpected("Pushed", &r)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> NetError {
    let kind = match got {
        Response::Refs { .. } => "Refs",
        Response::Commits { .. } => "Commits",
        Response::States { .. } => "States",
        Response::StatesDelta { .. } => "StatesDelta",
        Response::Haves { .. } => "Haves",
        Response::Pushed { .. } => "Pushed",
        Response::PushDenied => "PushDenied",
        Response::Error { .. } => "Error",
    };
    NetError::Protocol(format!("expected {wanted} response, got {kind}"))
}

struct IngestCounts {
    commits: u64,
    states: u64,
    delta_states: u64,
    delta_saved_bytes: u64,
}

/// Verifies and lands a pack of commit records + state objects by
/// delegating to the store's single ingest path
/// ([`BranchStore::ingest_pack`]).
///
/// Since the codec unification there is nothing format-specific left to
/// do here: the bytes on the wire *are* the canonical storage bytes, so
/// the store verifies each object with one hash (and each state with one
/// decode), publishes the verified bytes without re-hashing, and applies
/// the Lamport receive rule itself. A corrupt object fails the whole pack
/// before anything is written.
fn ingest_pack<M: Mrdt, B: Backend>(
    store: &mut BranchStore<M, B>,
    commits: &[PackedObject],
    states: &[PackedObject],
) -> Result<IngestCounts, NetError> {
    let commit_refs: Vec<(ObjectId, &[u8])> =
        commits.iter().map(|p| (p.id, p.bytes.as_slice())).collect();
    let state_refs: Vec<(ObjectId, &[u8])> =
        states.iter().map(|p| (p.id, p.bytes.as_slice())).collect();
    let report = store.ingest_pack(&commit_refs, &state_refs)?;
    Ok(IngestCounts {
        commits: report.commits,
        states: report.states,
        delta_states: report.delta_states,
        delta_saved_bytes: report.delta_saved_bytes,
    })
}

/// [`ingest_pack`] for delta-aware transfers: maps each
/// [`StateTransfer`] onto the store's [`PackState`] input and delegates
/// to [`BranchStore::ingest_pack_states`], which resolves every delta
/// against its base and re-hashes the result before anything lands.
fn ingest_transfers<M: Mrdt, B: Backend>(
    store: &mut BranchStore<M, B>,
    commits: &[PackedObject],
    states: &[StateTransfer],
) -> Result<IngestCounts, NetError> {
    let commit_refs: Vec<(ObjectId, &[u8])> =
        commits.iter().map(|p| (p.id, p.bytes.as_slice())).collect();
    let state_refs: Vec<PackState<'_>> = states
        .iter()
        .map(|t| match t {
            StateTransfer::Full { state } => PackState::Full {
                id: state.id,
                bytes: &state.bytes,
            },
            StateTransfer::Delta { id, base, delta } => PackState::Delta {
                id: *id,
                base: *base,
                delta,
            },
        })
        .collect();
    let report = store.ingest_pack_states(&commit_refs, &state_refs)?;
    Ok(IngestCounts {
        commits: report.commits,
        states: report.states,
        delta_states: report.delta_states,
        delta_saved_bytes: report.delta_saved_bytes,
    })
}

/// The read-only server side of [`Replica::handle`] — everything a peer
/// can ask without changing this store, served from `&BranchStore` so any
/// number of these run concurrently under the shared read lock.
fn serve_read<M: Mrdt, B: Backend>(
    store: &BranchStore<M, B>,
    req: Request,
    metrics: Option<&Arc<NetMetrics>>,
) -> Result<Response, NetError> {
    match req {
        Request::FetchRefs => Ok(Response::Refs {
            refs: store.backend().refs()?,
        }),
        Request::Want { wants, haves } => {
            let missing = store.commits_between(&wants, &haves);
            let mut commits = Vec::with_capacity(missing.len());
            for c in missing {
                let id = store.commit_oid(c);
                let bytes = store
                    .commit_record_bytes(id)?
                    .ok_or_else(|| NetError::Protocol("indexed commit missing".into()))?;
                commits.push(PackedObject { id, bytes });
            }
            Ok(Response::Commits { commits })
        }
        Request::GetStates { ids } => {
            // Storage format == wire format: states are served straight
            // from the backend, zero re-encodes (delta-stored states are
            // resolved — this legacy arm always ships full bytes).
            let mut states = Vec::with_capacity(ids.len());
            for id in ids {
                if let Some(bytes) = store.state_bytes(id)? {
                    states.push(PackedObject { id, bytes });
                }
            }
            Ok(Response::States { states })
        }
        Request::GetStatesDelta { ids, haves } => {
            // A state may go out as its stored delta record — O(delta)
            // bytes, zero re-encodes — when the requester provably holds
            // the base: it is carried by a commit reachable from the
            // request's `haves`, or it was served earlier in this very
            // reply (request order is parents-first, like pack order).
            let mut available: HashSet<ObjectId> = store
                .commits_between(&haves, &[])
                .into_iter()
                .map(|c| store.state_oid(c))
                .collect();
            let mut states = Vec::with_capacity(ids.len());
            for id in ids {
                match store.state_stored_delta(id)? {
                    Some((base, delta)) if available.contains(&base) => {
                        if let Some(m) = metrics {
                            m.delta_states_out_total.inc();
                        }
                        states.push(StateTransfer::Delta { id, base, delta });
                        available.insert(id);
                    }
                    _ => {
                        if let Some(bytes) = store.state_bytes(id)? {
                            states.push(StateTransfer::Full {
                                state: PackedObject { id, bytes },
                            });
                            available.insert(id);
                        }
                    }
                }
            }
            Ok(Response::StatesDelta { states })
        }
        Request::HaveObjects { ids } => {
            let haves = ids
                .into_iter()
                .map(|id| store.backend().contains(id))
                .collect::<Result<Vec<bool>, StoreError>>()?;
            Ok(Response::Haves { haves })
        }
        Request::Push { .. } => Err(NetError::Protocol(
            "push dispatched to the read-only path".into(),
        )),
    }
}

/// Whether accepting `head` on `branch` would be refused as diverged —
/// answered **before** anything is ingested, by walking `head`'s
/// ancestry through the pack's commit records and, where the walk
/// reaches commits the store already knows, through the local graph.
///
/// Without this pre-check a denied push still landed its transferred
/// objects: every retry of a diverged hammering client grew the backend
/// with commits no ref would ever reach (reclaimable only by GC). The
/// walk is read-only and costs at most one record parse per pack commit.
fn push_would_diverge<M: Mrdt, B: Backend>(
    store: &BranchStore<M, B>,
    branch: &str,
    head: ObjectId,
    commits: &[PackedObject],
) -> Result<bool, NetError> {
    let Ok(local) = store.head_id(branch) else {
        return Ok(false); // no such branch: the push would create it
    };
    let local_cid = store.find_commit(local);
    let pack: std::collections::HashMap<ObjectId, &[u8]> =
        commits.iter().map(|p| (p.id, p.bytes.as_slice())).collect();
    let mut stack = vec![head];
    let mut seen: HashSet<ObjectId> = HashSet::new();
    while let Some(oid) = stack.pop() {
        if !seen.insert(oid) {
            continue;
        }
        if oid == local {
            return Ok(false); // fast-forward (or no-op): contains our head
        }
        if let Some(cid) = store.find_commit(oid) {
            // Store-known subtree: answer from the local graph instead of
            // walking record by record.
            if local_cid.is_some_and(|l| store.graph().is_ancestor(l, cid)) {
                return Ok(false);
            }
            continue;
        }
        if let Some(bytes) = pack.get(&oid) {
            // Unverified bytes — fine for a conservative pre-check: the
            // real ingest re-verifies everything before landing. A record
            // that does not even parse cannot make the push acceptable.
            if let Some(meta) = parse_commit_record(bytes) {
                stack.extend(meta.parents);
            }
        }
        // Neither local nor in the pack: this line of ancestry cannot
        // contain our head (ingest would reject such a pack anyway).
    }
    Ok(true)
}

impl<M: Mrdt, B: Backend> Replica<M, B> {
    /// The mutating server side of [`Replica::handle`]: `Push` is the one
    /// request that changes the serving store, so it alone takes the write
    /// lock. When an observer is attached, an accepted push emits the
    /// ingested events (`learned`) and — if the branch head actually moved
    /// — the new visible set (`head_advanced`), under the same write lock
    /// as the ingest itself.
    fn serve_push(&self, req: Request) -> Result<Response, NetError> {
        let Request::Push {
            branch,
            head,
            commits,
            states,
        } = req
        else {
            return serve_read(&self.store.read(), req, self.net_metrics().as_ref());
        };
        let (observer, mutation) = self.hooks_snapshot();
        let metrics = self.net_metrics();
        let store = &mut *self.store.write();
        // Refuse a diverged push *before* ingesting its objects, or
        // every denied push leaks its pack into the backend.
        if push_would_diverge(store, &branch, head, &commits)? {
            if let Some(m) = &metrics {
                m.push_denied_total.inc();
            }
            return Ok(Response::PushDenied);
        }
        let mut learned = if observer.is_some() {
            fresh_pack_events(store, &commits)
        } else {
            Vec::new()
        };
        ingest_pack(store, &commits, &states)?;
        if !store.has_commit(head) {
            return Err(NetError::Protocol(format!(
                "pushed head {} not contained in pack or store",
                head.short()
            )));
        }
        let outcome = store.track(&branch, head)?;
        if let Some(obs) = &observer {
            if mutation == ReplicationMutation::ReorderedPackIngest {
                learned.reverse();
            }
            if !learned.is_empty() {
                obs.learned(&self.name, &learned);
            }
            if matches!(outcome, TrackOutcome::Created | TrackOutcome::FastForwarded) {
                let visible = store.visible_mints(store.head(&branch)?);
                obs.head_advanced(&self.name, &visible);
            }
        }
        if let Some(m) = &metrics {
            let bytes: u64 = commits.iter().map(|o| o.bytes.len() as u64).sum::<u64>()
                + states.iter().map(|o| o.bytes.len() as u64).sum::<u64>();
            match outcome {
                TrackOutcome::Diverged => m.push_denied_total.inc(),
                _ => {
                    m.serve_pushes_total.inc();
                    m.pack_objects_in_total
                        .add(commits.len() as u64 + states.len() as u64);
                    m.pack_bytes_in_total.add(bytes);
                    m.trace("serve_push", &branch, commits.len() as u64);
                }
            }
        }
        match outcome {
            TrackOutcome::Created => Ok(Response::Pushed { created: true }),
            TrackOutcome::FastForwarded | TrackOutcome::Unchanged => {
                Ok(Response::Pushed { created: false })
            }
            TrackOutcome::Diverged => Ok(Response::PushDenied),
        }
    }
}

/// The operation events a pack would newly introduce to `store`, in pack
/// (parents-first) order: commits the store does not yet have, parsed for
/// their minted `(tick, replica)`, roots and merges (tick 0) excluded.
/// Read-only — called *before* the ingest whose learn set it predicts.
fn fresh_pack_events<M: Mrdt, B: Backend>(
    store: &BranchStore<M, B>,
    commits: &[PackedObject],
) -> Vec<Timestamp> {
    let mut seen: HashSet<ObjectId> = HashSet::new();
    let mut out = Vec::new();
    for pc in commits {
        if !seen.insert(pc.id) || store.has_commit(pc.id) {
            continue;
        }
        if let Some(meta) = parse_commit_record(&pc.bytes) {
            if meta.tick > 0 {
                out.push(Timestamp::new(meta.tick, ReplicaId::new(meta.replica)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use peepul_store::MemoryBackend;
    use peepul_types::counter::{Counter, CounterOp, CounterQuery};

    /// The regression the minted-timestamp commit identity exists for:
    /// two independent replicas built the *recommended* way apply one
    /// concurrent increment each — both must survive replication even
    /// though the states (and parents) coincide.
    #[test]
    fn open_derives_disjoint_bases_so_concurrent_ops_never_collapse() {
        let a: Replica<Counter, _> = Replica::open("a", "main", MemoryBackend::new()).unwrap();
        let b: Replica<Counter, _> = Replica::open("b", "main", MemoryBackend::new()).unwrap();
        let base = |r: &Replica<Counter, MemoryBackend>| {
            r.with_store(|s| s.replica_of("main").unwrap().as_u32())
        };
        assert_ne!(base(&a), base(&b), "name-derived bases must differ");

        a.with_store(|s| s.branch_mut("main").unwrap().apply(&CounterOp::Increment))
            .unwrap();
        b.with_store(|s| s.branch_mut("main").unwrap().apply(&CounterOp::Increment))
            .unwrap();
        assert_ne!(
            a.head_id("main").unwrap(),
            b.head_id("main").unwrap(),
            "distinct concurrent events must have distinct commit ids"
        );

        let mut remote = Remote::new("b", ChannelTransport::connect(b.clone()));
        a.pull(&mut remote, "main").unwrap();
        assert_eq!(a.read("main", &CounterQuery::Value).unwrap(), 2);
    }

    /// The service-layer contract: the read path takes the *shared* lock,
    /// so a reader holding it does not block another reader. If reads
    /// were exclusive, the second `read` below would wait out the full
    /// hold and trip the elapsed assertion.
    #[test]
    fn reads_run_concurrently_with_reads() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};

        let r: Replica<Counter, _> = Replica::open("a", "main", MemoryBackend::new()).unwrap();
        r.with_store(|s| s.branch_mut("main").unwrap().apply(&CounterOp::Increment))
            .unwrap();

        let holding = std::sync::Arc::new(AtomicBool::new(false));
        let held = std::sync::Arc::clone(&holding);
        let holder = {
            let r = r.clone();
            std::thread::spawn(move || {
                r.with_store_read(|s| {
                    held.store(true, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(600));
                    s.commit_count()
                })
            })
        };
        while !holding.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let start = Instant::now();
        assert_eq!(r.read("main", &CounterQuery::Value).unwrap(), 1);
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "a concurrent reader must not wait for the read-lock holder"
        );
        holder.join().unwrap();
    }
}

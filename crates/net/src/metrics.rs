//! Replication-layer observability: the [`NetMetrics`] bundle a
//! [`Replica`](crate::Replica) updates when one is attached (via
//! [`Replica::set_net_metrics`](crate::Replica::set_net_metrics)).
//!
//! Handles are resolved from the shared `peepul-obs` registry once at
//! attach time, exactly like the store's `StoreMetrics`: the replication
//! paths then pay one `Option` check plus relaxed atomic updates per
//! fetch/push. Anti-entropy round duration and per-peer replication lag
//! are *fleet* facts, measured where the fleet loop runs (the server's
//! sync thread), not here.

use peepul_obs::{Counter, EventRing, Histogram, Obs, Registry, Subsystem, TraceLevel};
use std::sync::Arc;

/// Metric handles for one replica's replication traffic.
///
/// All durations are microseconds. Field docs name the exposition
/// metric each handle feeds. "in" counts objects/bytes this replica
/// ingested from peers (fetches and served pushes); "out" counts what it
/// uploaded.
#[derive(Debug)]
pub struct NetMetrics {
    /// `peepul_net_fetches_total` — fetches completed.
    pub fetches_total: Counter,
    /// `peepul_net_fetch_micros` — whole-fetch latency (all phases).
    pub fetch_micros: Histogram,
    /// `peepul_net_pushes_total` — pushes completed (accepted by peer).
    pub pushes_total: Counter,
    /// `peepul_net_push_micros` — whole-push latency.
    pub push_micros: Histogram,
    /// `peepul_net_serve_pushes_total` — peer pushes this replica accepted.
    pub serve_pushes_total: Counter,
    /// `peepul_net_push_denied_total` — peer pushes refused (divergence).
    pub push_denied_total: Counter,
    /// `peepul_net_round_trips_total` — transport request/response pairs.
    pub round_trips_total: Counter,
    /// `peepul_net_pack_objects_in_total` — pack objects received.
    pub pack_objects_in_total: Counter,
    /// `peepul_net_pack_bytes_in_total` — pack payload bytes received.
    pub pack_bytes_in_total: Counter,
    /// `peepul_net_pack_objects_out_total` — pack objects uploaded.
    pub pack_objects_out_total: Counter,
    /// `peepul_net_pack_bytes_out_total` — pack payload bytes uploaded.
    pub pack_bytes_out_total: Counter,
    /// `peepul_net_delta_states_in_total` — state objects received in
    /// delta form (the delta-sync hit count; fulls received through the
    /// delta path are the misses).
    pub delta_states_in_total: Counter,
    /// `peepul_net_delta_states_out_total` — state objects served in
    /// delta form.
    pub delta_states_out_total: Counter,
    /// `peepul_net_delta_bytes_saved_total` — wire bytes *not*
    /// transferred because a delta replaced the full encoding (resolved
    /// size minus delta size, counted at the receiver where the
    /// resolution happens).
    pub delta_bytes_saved_total: Counter,
    /// The trace ring fetch/push events are recorded into.
    pub ring: Arc<EventRing>,
}

impl NetMetrics {
    /// Resolves every handle from `registry`, recording trace events
    /// into `ring`.
    pub fn register(registry: &Registry, ring: Arc<EventRing>) -> Arc<NetMetrics> {
        Arc::new(NetMetrics {
            fetches_total: registry.counter("peepul_net_fetches_total"),
            fetch_micros: registry.histogram("peepul_net_fetch_micros"),
            pushes_total: registry.counter("peepul_net_pushes_total"),
            push_micros: registry.histogram("peepul_net_push_micros"),
            serve_pushes_total: registry.counter("peepul_net_serve_pushes_total"),
            push_denied_total: registry.counter("peepul_net_push_denied_total"),
            round_trips_total: registry.counter("peepul_net_round_trips_total"),
            pack_objects_in_total: registry.counter("peepul_net_pack_objects_in_total"),
            pack_bytes_in_total: registry.counter("peepul_net_pack_bytes_in_total"),
            pack_objects_out_total: registry.counter("peepul_net_pack_objects_out_total"),
            pack_bytes_out_total: registry.counter("peepul_net_pack_bytes_out_total"),
            delta_states_in_total: registry.counter("peepul_net_delta_states_in_total"),
            delta_states_out_total: registry.counter("peepul_net_delta_states_out_total"),
            delta_bytes_saved_total: registry.counter("peepul_net_delta_bytes_saved_total"),
            ring,
        })
    }

    /// Attaches to an [`Obs`] spine: `Some` handles when the spine is
    /// enabled, `None` when it is disabled.
    pub fn attach(obs: &Obs) -> Option<Arc<NetMetrics>> {
        obs.enabled()
            .then(|| NetMetrics::register(obs.registry(), Arc::clone(obs.ring())))
    }

    /// Records a net trace event at [`TraceLevel::Info`].
    #[inline]
    pub(crate) fn trace(&self, kind: &'static str, label: &str, value: u64) {
        self.ring
            .record(Subsystem::Net, TraceLevel::Info, kind, label, value);
    }
}

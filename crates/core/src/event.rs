//! Events of an abstract execution.

use crate::Timestamp;
use std::fmt;

/// Unique identifier of an event in an abstract execution.
///
/// Because the store guarantees every operation a globally unique timestamp
/// (Ψ_ts), the timestamp itself serves as the event identity — exactly the
/// trick the paper's OR-set plays when it tags elements with the timestamp
/// of the `add` that produced them.
pub type EventId = Timestamp;

/// One event `e` of an abstract execution, carrying the attributes
/// `oper(e)`, `rval(e)` and `time(e)` of Definition 2.2.
///
/// The visibility relation `vis` lives in
/// [`AbstractState`](crate::AbstractState), not on the event, because it
/// relates *pairs* of events.
#[derive(Clone, PartialEq, Eq)]
pub struct Event<O, V> {
    op: O,
    rval: V,
    time: Timestamp,
}

impl<O, V> Event<O, V> {
    /// Creates an event record.
    pub fn new(op: O, rval: V, time: Timestamp) -> Self {
        Event { op, rval, time }
    }

    /// The data-type operation `oper(e)` this event performed.
    pub fn op(&self) -> &O {
        &self.op
    }

    /// The return value `rval(e)` observed by the client.
    pub fn rval(&self) -> &V {
        &self.rval
    }

    /// The unique timestamp `time(e)` at which the event was performed.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// The event's identity (its timestamp; see [`EventId`]).
    pub fn id(&self) -> EventId {
        self.time
    }
}

impl<O: fmt::Debug, V: fmt::Debug> fmt::Debug for Event<O, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{:?} ↦ {:?} @ {}⟩", self.op, self.rval, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplicaId;

    #[test]
    fn accessors_return_constructor_arguments() {
        let t = Timestamp::new(4, ReplicaId::new(1));
        let e = Event::new("add(3)", "ok", t);
        assert_eq!(*e.op(), "add(3)");
        assert_eq!(*e.rval(), "ok");
        assert_eq!(e.time(), t);
        assert_eq!(e.id(), t);
    }

    #[test]
    fn debug_rendering_includes_all_attributes() {
        let t = Timestamp::new(4, ReplicaId::new(1));
        let e = Event::new(1u8, 2u8, t);
        let s = format!("{e:?}");
        assert!(s.contains('1') && s.contains('2') && s.contains("4@r1"));
    }
}

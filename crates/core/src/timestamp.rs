//! Operation timestamps and replica identifiers.
//!
//! The replicated store promises two properties about the timestamps it
//! hands to [`Mrdt::apply`](crate::Mrdt::apply) (paper §2.1):
//!
//! 1. timestamps are **unique** across all branches, and
//! 2. if operation `a` happens-before operation `b` then `t_a < t_b`.
//!
//! Together these are the store property `Ψ_ts` of Table 1 (checked
//! executably by [`psi_ts`](crate::store_props::psi_ts)). The paper models
//! timestamps as naturals and suggests Lamport clocks paired with a unique
//! branch id; [`Timestamp`] is exactly that pair, ordered lexicographically
//! by `(tick, replica)`.

use std::fmt;

/// Identifier of a replica (a branch in the Git-like store).
///
/// Used as the tiebreak component of [`Timestamp`] so that two replicas can
/// never mint the same timestamp even when their Lamport ticks collide.
///
/// # Example
///
/// ```
/// use peepul_core::ReplicaId;
/// let r = ReplicaId::new(3);
/// assert_eq!(r.as_u32(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReplicaId(u32);

impl ReplicaId {
    /// Creates a replica identifier from a raw index.
    pub const fn new(id: u32) -> Self {
        ReplicaId(id)
    }

    /// Returns the raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for ReplicaId {
    fn from(id: u32) -> Self {
        ReplicaId(id)
    }
}

/// A unique, totally ordered operation timestamp.
///
/// Ordering is lexicographic on `(tick, replica)`: the Lamport tick
/// dominates, and the replica id breaks ties between concurrent operations
/// on different branches. Because every replica strictly increases its own
/// tick, and merges advance the receiving replica's tick past everything it
/// has seen, `Timestamp` satisfies Ψ_ts by construction.
///
/// # Example
///
/// ```
/// use peepul_core::{ReplicaId, Timestamp};
/// let a = Timestamp::new(1, ReplicaId::new(0));
/// let b = Timestamp::new(1, ReplicaId::new(1));
/// let c = Timestamp::new(2, ReplicaId::new(0));
/// assert!(a < b && b < c);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    tick: u64,
    replica: ReplicaId,
}

impl Timestamp {
    /// Creates a timestamp from a Lamport tick and the minting replica.
    pub const fn new(tick: u64, replica: ReplicaId) -> Self {
        Timestamp { tick, replica }
    }

    /// The Lamport tick component.
    pub const fn tick(self) -> u64 {
        self.tick
    }

    /// The replica that minted this timestamp.
    pub const fn replica(self) -> ReplicaId {
        self.replica
    }

    /// The smallest possible timestamp; strictly below anything a store
    /// will ever mint (stores start ticking at 1).
    pub const MIN: Timestamp = Timestamp::new(0, ReplicaId::new(0));
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.tick, self.replica)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.tick, self.replica)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic_tick_then_replica() {
        let t10 = Timestamp::new(1, ReplicaId::new(0));
        let t11 = Timestamp::new(1, ReplicaId::new(1));
        let t20 = Timestamp::new(2, ReplicaId::new(0));
        assert!(t10 < t11);
        assert!(t11 < t20);
        assert!(t10 < t20);
    }

    #[test]
    fn min_is_below_any_minted_timestamp() {
        let t = Timestamp::new(1, ReplicaId::new(0));
        assert!(Timestamp::MIN < t);
    }

    #[test]
    fn equality_requires_both_components() {
        let a = Timestamp::new(5, ReplicaId::new(1));
        let b = Timestamp::new(5, ReplicaId::new(2));
        assert_ne!(a, b);
        assert_eq!(a, Timestamp::new(5, ReplicaId::new(1)));
    }

    #[test]
    fn display_shows_tick_and_replica() {
        let t = Timestamp::new(7, ReplicaId::new(2));
        assert_eq!(t.to_string(), "7@r2");
        assert_eq!(format!("{t:?}"), "7@r2");
    }

    #[test]
    fn timestamps_are_usable_as_map_keys() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Timestamp::new(2, ReplicaId::new(0)));
        s.insert(Timestamp::new(1, ReplicaId::new(1)));
        let v: Vec<_> = s.into_iter().collect();
        assert_eq!(v[0].tick(), 1);
        assert_eq!(v[1].tick(), 2);
    }
}

//! Executable store properties `Ψ_ts` and `Ψ_lca` (paper, Table 1).
//!
//! These properties hold of every execution of the replicated store by
//! construction of its semantics; the verification harness asserts them at
//! every transition both as a sanity check on the store *and* because the
//! proof obligations `Φ_do`/`Φ_merge` are entitled to assume them.

use crate::abstract_state::AbstractState;
use std::error::Error;
use std::fmt;

/// A violation of one of the store properties of Table 1.
///
/// Any occurrence is a bug in the store/harness, not in a data type.
#[derive(Clone, PartialEq, Eq)]
pub enum StorePropertyError {
    /// Ψ_ts: two distinct events share a timestamp.
    DuplicateTimestamp(String),
    /// Ψ_ts: an event is visible to another with a smaller-or-equal
    /// timestamp.
    NonMonotoneTimestamps(String),
    /// Ψ_lca: visibility between shared events differs across the LCA and a
    /// branch.
    VisibilityMismatch(String),
    /// Ψ_lca: an LCA event is not visible to a new event on a branch.
    LcaNotVisible(String),
    /// Ψ_lca: the provided LCA is not the intersection of the branches.
    NotIntersection(String),
}

impl fmt::Debug for StorePropertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for StorePropertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorePropertyError::DuplicateTimestamp(d) => {
                write!(f, "Ψ_ts violated: duplicate timestamp ({d})")
            }
            StorePropertyError::NonMonotoneTimestamps(d) => {
                write!(f, "Ψ_ts violated: visibility not timestamp-monotone ({d})")
            }
            StorePropertyError::VisibilityMismatch(d) => {
                write!(
                    f,
                    "Ψ_lca violated: visibility mismatch on shared events ({d})"
                )
            }
            StorePropertyError::LcaNotVisible(d) => {
                write!(
                    f,
                    "Ψ_lca violated: lca event not visible to branch event ({d})"
                )
            }
            StorePropertyError::NotIntersection(d) => {
                write!(
                    f,
                    "Ψ_lca violated: lca is not the branch intersection ({d})"
                )
            }
        }
    }
}

impl Error for StorePropertyError {}

/// Checks `Ψ_ts(I)`: causally related events have strictly increasing
/// timestamps, and no two events share a timestamp.
///
/// Timestamp uniqueness is structural in this model (events are keyed by
/// timestamp), so the first conjunct of Table 1 cannot be violated here; it
/// is still part of the property's meaning and is enforced at event-creation
/// time by [`AbstractState::perform`].
///
/// # Errors
///
/// Returns the first violation found, if any.
pub fn psi_ts<O, V>(i: &AbstractState<O, V>) -> Result<(), StorePropertyError> {
    for f_id in i.ids() {
        for e_id in i.past(f_id) {
            if e_id >= f_id {
                return Err(StorePropertyError::NonMonotoneTimestamps(format!(
                    "{e_id:?} --vis--> {f_id:?} but {e_id:?} >= {f_id:?}"
                )));
            }
        }
    }
    Ok(())
}

/// Checks `Ψ_lca(I_l, I_a, I_b)` with `I_l = lca#(I_a, I_b)`, in the form
/// the store actually guarantees on **all** executions:
///
/// 1. `I_l` is the intersection of the branches' events,
/// 2. the visibility relation restricted to the shared events agrees
///    across `I_l`, `I_a` and `I_b`, and
/// 3. `I_l` is causally closed within each branch: no event outside the
///    LCA is visible to an event inside it.
///
/// # Relation to the paper
///
/// Table 1 of the paper states a stronger second conjunct — *every* LCA
/// event is visible to *every* event new in either branch. That holds for
/// once-diverged branch pairs but is falsified by legal executions with
/// repeated merges: an operation performed on a branch *before* it pulled
/// a merge is "new" relative to a later LCA containing the pulled events,
/// yet does not see them. (Example: `b0: add@t1; fork b1; b0: add@t2;
/// b1: remove@t3; merge b0←b1; merge b1←b0` — the final LCA contains `t3`,
/// which is not visible to the earlier `t2`.) All Table 2 obligations
/// still hold on such executions; only the stated store property was too
/// strong. [`psi_lca_paper`] provides the literal conjunct for topologies
/// where it applies. See `DESIGN.md` §8 for the full discussion.
///
/// # Errors
///
/// Returns the first violation found, if any.
pub fn psi_lca<O: Clone, V: Clone>(
    l: &AbstractState<O, V>,
    a: &AbstractState<O, V>,
    b: &AbstractState<O, V>,
) -> Result<(), StorePropertyError> {
    // `l` must be the intersection.
    for id in l.ids() {
        if !a.contains(id) || !b.contains(id) {
            return Err(StorePropertyError::NotIntersection(format!(
                "lca event {id:?} missing from a branch"
            )));
        }
    }
    for id in a.ids() {
        if b.contains(id) && !l.contains(id) {
            return Err(StorePropertyError::NotIntersection(format!(
                "shared event {id:?} missing from lca"
            )));
        }
    }

    // Visibility agreement on shared events.
    let shared: Vec<_> = l.ids().collect();
    for &e in &shared {
        for &f in &shared {
            let in_l = l.vis(e, f);
            if in_l != a.vis(e, f) || in_l != b.vis(e, f) {
                return Err(StorePropertyError::VisibilityMismatch(format!(
                    "vis({e:?}, {f:?}) differs between lca and branches"
                )));
            }
        }
    }

    // Causal closure: nothing outside the LCA is visible to an LCA event.
    for side in [a, b] {
        for &e in &shared {
            for p in side.past(e) {
                if !l.contains(p) {
                    return Err(StorePropertyError::LcaNotVisible(format!(
                        "event {p:?} outside the lca is visible to lca event {e:?}"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// The paper's literal Ψ_lca second conjunct (Table 1): every LCA event is
/// visible to every event that is new in either branch.
///
/// This holds for branch pairs that diverged once from their LCA (the
/// topology the paper's figures depict) but **not** for all executions
/// with repeated merges — see [`psi_lca`] for the counterexample and the
/// property that does hold generally. Exposed for tests over
/// single-divergence topologies and for documentation of the deviation.
///
/// # Errors
///
/// Returns the first violation found, if any.
pub fn psi_lca_paper<O: Clone, V: Clone>(
    l: &AbstractState<O, V>,
    a: &AbstractState<O, V>,
    b: &AbstractState<O, V>,
) -> Result<(), StorePropertyError> {
    psi_lca(l, a, b)?;
    for side in [a, b] {
        for f in side.ids() {
            if l.contains(f) {
                continue;
            }
            for e in l.ids() {
                if !side.vis(e, f) {
                    return Err(StorePropertyError::LcaNotVisible(format!(
                        "lca event {e:?} not visible to new event {f:?}"
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReplicaId, Timestamp};

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    #[test]
    fn psi_ts_holds_on_well_formed_executions() {
        let i: AbstractState<&str, ()> =
            AbstractState::new()
                .perform("a", (), ts(1, 0))
                .perform("b", (), ts(2, 0));
        assert!(psi_ts(&i).is_ok());
    }

    #[test]
    fn psi_lca_holds_for_true_lca() {
        let base: AbstractState<&str, ()> = AbstractState::new().perform("root", (), ts(1, 0));
        let a = base.perform("a", (), ts(2, 1));
        let b = base.perform("b", (), ts(3, 2));
        let l = a.lca(&b);
        assert!(psi_lca(&l, &a, &b).is_ok());
    }

    #[test]
    fn psi_lca_rejects_wrong_lca() {
        let base: AbstractState<&str, ()> = AbstractState::new().perform("root", (), ts(1, 0));
        let a = base.perform("a", (), ts(2, 1));
        let b = base.perform("b", (), ts(3, 2));
        // Passing `a` itself as the lca of (a, b) is wrong: `a`'s extra event
        // is not shared with b.
        let err = psi_lca(&a, &a, &b).unwrap_err();
        assert!(matches!(err, StorePropertyError::NotIntersection(_)));
    }

    #[test]
    fn psi_lca_rejects_empty_lca_when_history_is_shared() {
        let base: AbstractState<&str, ()> = AbstractState::new().perform("root", (), ts(1, 0));
        let a = base.perform("a", (), ts(2, 1));
        let b = base.perform("b", (), ts(3, 2));
        let empty = AbstractState::new();
        let err = psi_lca(&empty, &a, &b).unwrap_err();
        assert!(matches!(err, StorePropertyError::NotIntersection(_)));
    }

    #[test]
    fn errors_render_their_property_name() {
        let e = StorePropertyError::DuplicateTimestamp("x".into());
        assert!(e.to_string().contains("Ψ_ts"));
        let e = StorePropertyError::LcaNotVisible("x".into());
        assert!(e.to_string().contains("Ψ_lca"));
    }
}

#[cfg(test)]
mod paper_variant_tests {
    use super::*;
    use crate::{ReplicaId, Timestamp};

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    #[test]
    fn paper_conjunct_holds_after_single_divergence() {
        let base: AbstractState<&str, ()> = AbstractState::new().perform("root", (), ts(1, 0));
        let a = base.perform("a", (), ts(2, 1));
        let b = base.perform("b", (), ts(3, 2));
        let l = a.lca(&b);
        assert!(psi_lca_paper(&l, &a, &b).is_ok());
    }

    #[test]
    fn paper_conjunct_fails_after_repeated_merges_but_weak_form_holds() {
        // b0: t1; fork; b0: t2; b1: t3; merge b0←b1; then compare b1 vs b0.
        let i1: AbstractState<&str, ()> = AbstractState::new().perform("add1", (), ts(1, 0));
        let b0 = i1.perform("add2", (), ts(2, 0));
        let b1 = i1.perform("rm", (), ts(3, 1));
        // b0 pulls b1. Merging b1 ← b0 afterwards: the LCA is b1's state
        // {t1, t3}; t2 ∈ b0 \ lca does not see t3.
        let b0 = b0.merged(&b1);
        let l = b1.lca(&b0);
        assert!(l.contains(ts(3, 1)));
        assert!(psi_lca(&l, &b1, &b0).is_ok(), "general form must hold");
        assert!(
            psi_lca_paper(&l, &b1, &b0).is_err(),
            "the paper's literal conjunct is too strong here"
        );
    }
}

//! The **canonical codec**: one decodable binary encoding that is
//! simultaneously the storage format, the wire format, and the content
//! address preimage.
//!
//! Historically the workspace carried two parallel serializations — a
//! one-way `Hash`-stream that minted content addresses, and this codec
//! bolted alongside for replication. They are now unified: [`Wire`] is
//! the *single* canonical encoding. A state's content address is
//! `sha256(encode(σ))`; the branch store persists exactly those bytes in
//! its backend (and decodes them back on `BranchStore::open`, the typed
//! cold-start path); replication transfers the same bytes and verifies
//! them with the same hash. Every [`crate::Mrdt`] carries the codec as a
//! supertrait bound.
//!
//! The encoding is small, explicit and platform-independent:
//! little-endian fixed-width integers, `u64` length prefixes, explicit
//! enum tags. On ingest a receiver hashes the received bytes against the
//! advertised address and decodes them **once** — no re-encoding across
//! formats — so a codec bug is indistinguishable from corruption (both
//! are rejected before anything lands).
//!
//! # Implementing `Wire`
//!
//! Encode fields in declaration order with the building-block impls below;
//! decode them back in the same order. The encoding must be **canonical**:
//! one value, one byte string (iterate ordered containers, reject
//! non-canonical input on decode). The certification harness checks
//! `decode(encode(σ)) ≈ σ` and byte-identical re-encoding at every state
//! it explores (the `Φ_codec` standing obligation).
//!
//! [`Wire::max_tick`] is the Lamport *receive rule* hook: a state
//! carrying timestamps reports the largest tick it contains, and an
//! ingesting store advances its own clock past it so that operations
//! applied after a merge order after everything merged in (the
//! happens-before half of Ψ_ts across stores).
//!
//! # Example
//!
//! ```
//! use peepul_core::wire::Wire;
//!
//! let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into())];
//! let bytes = v.to_wire();
//! assert_eq!(Vec::<(u64, String)>::from_wire(&bytes), Some(v));
//! ```

use crate::{ReplicaId, Timestamp};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A value with a deterministic, self-describing binary encoding — the
/// workspace's **one canonical codec**: storage bytes, wire bytes, and
/// the SHA-256 preimage of the content address are all this encoding.
///
/// Laws every implementation must uphold:
///
/// * **round-trip**: `decode(encode(v))` succeeds consuming exactly the
///   encoded bytes, and yields a value observably equal to `v`
///   (structurally equal for every type whose representation is
///   canonical; a type with representation freedom — the tree-backed
///   OR-set — decodes to its canonical shape);
/// * **canonical form**: one value, one byte string — equal (or
///   observably equal) values encode to identical bytes, and re-encoding
///   a decoded value reproduces its input exactly. No iteration over
///   unordered containers, no platform-dependent widths; decoders reject
///   non-canonical input (e.g. duplicate set elements) rather than
///   normalising it;
/// * **address fidelity**: since the content address is the hash of this
///   encoding, the two laws above make `sha256(bytes)` a faithful
///   identity for the typed value. Stores and replicas verify it on
///   every object they ingest.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes. `None` on malformed or truncated input.
    fn decode(input: &mut &[u8]) -> Option<Self>;

    /// The largest Lamport tick stored anywhere in this value, or 0 when
    /// it carries no timestamps.
    ///
    /// Ingesting stores use this as the Lamport receive rule: after
    /// landing a remote state they advance their own clock past it, so
    /// later local operations timestamp-order after everything merged in.
    fn max_tick(&self) -> u64 {
        0
    }

    /// This value's complete encoding as a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value from `bytes`, requiring that **all** bytes are
    /// consumed (trailing garbage is malformed input, not padding).
    fn from_wire(mut bytes: &[u8]) -> Option<Self> {
        let v = Self::decode(&mut bytes)?;
        bytes.is_empty().then_some(v)
    }
}

/// Splits `n` bytes off the front of `input`, or `None` if it is shorter.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Some(head)
}

/// Encodes a container length as `u64`.
pub fn encode_len(len: usize, out: &mut Vec<u8>) {
    (len as u64).encode(out);
}

/// Decodes a container length, rejecting lengths that cannot possibly fit
/// in the remaining input (each element takes ≥ 1 byte), so a malicious
/// length prefix cannot force a huge allocation.
pub fn decode_len(input: &mut &[u8]) -> Option<usize> {
    let len = u64::decode(input)?;
    let len = usize::try_from(len).ok()?;
    (len <= input.len()).then_some(len)
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(bytes.try_into().expect("exact size")))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode(input)?).ok()
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for () {
    // One byte, not zero: every encodable value occupies at least one
    // wire byte, which is what lets `decode_len` reject length prefixes
    // larger than the remaining input before any allocation (a zero-size
    // encoding would make `vec![(); huge]` both unrepresentable under
    // that guard and a spin-loop without it).
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(0);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        (u8::decode(input)? == 0).then_some(())
    }
}

impl Wire for char {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u32).encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        char::from_u32(u32::decode(input)?)
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = decode_len(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }

    fn max_tick(&self) -> u64 {
        self.as_ref().map_or(0, Wire::max_tick)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for v in self {
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = decode_len(input)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Some(out)
    }

    fn max_tick(&self) -> u64 {
        self.iter().map(Wire::max_tick).max().unwrap_or(0)
    }
}

impl<T: Wire> Wire for VecDeque<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for v in self {
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Vec::<T>::decode(input)?.into())
    }

    fn max_tick(&self) -> u64 {
        self.iter().map(Wire::max_tick).max().unwrap_or(0)
    }
}

impl<T: Wire + Ord> Wire for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for v in self {
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = decode_len(input)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            let v = T::decode(input)?;
            // Canonical form is strictly ascending: duplicate or unordered
            // elements would silently re-encode differently than they
            // arrived — reject rather than normalise.
            if out.last().is_some_and(|p| *p >= v) {
                return None;
            }
            out.insert(v);
        }
        Some(out)
    }

    fn max_tick(&self) -> u64 {
        self.iter().map(Wire::max_tick).max().unwrap_or(0)
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = decode_len(input)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            // Strictly ascending keys, as for sets: one map, one byte
            // string.
            if out.last_key_value().is_some_and(|(last, _)| *last >= k) {
                return None;
            }
            out.insert(k, v);
        }
        Some(out)
    }

    fn max_tick(&self) -> u64 {
        self.iter()
            .map(|(k, v)| k.max_tick().max(v.max_tick()))
            .max()
            .unwrap_or(0)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }

    fn max_tick(&self) -> u64 {
        self.0.max_tick().max(self.1.max_tick())
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }

    fn max_tick(&self) -> u64 {
        self.0
            .max_tick()
            .max(self.1.max_tick())
            .max(self.2.max_tick())
    }
}

/// One instruction of a [`Delta`] edit script: reuse a range of the base
/// encoding, or splice in literal bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy `len` bytes starting at byte `offset` of the base encoding.
    Copy {
        /// Byte offset into the base encoding.
        offset: u64,
        /// Number of bytes to copy.
        len: u64,
    },
    /// Insert these literal bytes.
    Insert(Vec<u8>),
}

/// A byte-level edit script from one canonical encoding to another — the
/// **delta form** of the canonical codec.
///
/// A delta is a *storage and transfer encoding only*: applying it to the
/// base's canonical bytes must reproduce the target's canonical bytes
/// exactly, so the target's content address stays `sha256` of the **full**
/// canonical encoding — deltas never mint addresses. Producers are
/// [`Delta::splice`] (the generic prefix/suffix trim every type gets for
/// free) and [`diff_item_lists`] (the structural differ for
/// length-prefix + concatenated-items encodings, which survives
/// mid-stream insertions and removals that defeat a plain splice).
/// Storage chains deltas with periodic full snapshots; replication ships
/// one when the negotiation proves the receiver holds the base. Both
/// re-hash the resolved bytes against the advertised address, so a wrong
/// delta is indistinguishable from corruption — rejected before anything
/// lands. `Φ_codec` certifies the resolution law
/// (`apply_delta(base, diff(base, σ))` re-encodes to `encode(σ)`) at
/// every state the harness explores.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delta {
    /// The edit script, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl Delta {
    /// Resolves this delta against the base encoding, producing the target
    /// encoding. `None` when a copy range falls outside the base — a
    /// malformed or mismatched delta, never a panic.
    pub fn apply(&self, base: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        for op in &self.ops {
            match op {
                DeltaOp::Copy { offset, len } => {
                    let start = usize::try_from(*offset).ok()?;
                    let end = start.checked_add(usize::try_from(*len).ok()?)?;
                    out.extend_from_slice(base.get(start..end)?);
                }
                DeltaOp::Insert(bytes) => out.extend_from_slice(bytes),
            }
        }
        Some(out)
    }

    /// The generic byte-level differ: trims the longest common prefix and
    /// suffix and inserts whatever changed in between. Optimal for
    /// append/prepend-shaped edits (logs, counters); structural types
    /// with mid-stream edits use [`diff_item_lists`] instead.
    pub fn splice(old: &[u8], new: &[u8]) -> Delta {
        let prefix = old
            .iter()
            .zip(new.iter())
            .take_while(|(a, b)| a == b)
            .count();
        let max_suffix = old.len().min(new.len()) - prefix;
        let mut suffix = 0;
        while suffix < max_suffix && old[old.len() - 1 - suffix] == new[new.len() - 1 - suffix] {
            suffix += 1;
        }
        let mut delta = Delta::default();
        delta.push_copy(0, prefix as u64);
        delta.push_insert(new[prefix..new.len() - suffix].to_vec());
        delta.push_copy((old.len() - suffix) as u64, suffix as u64);
        delta
    }

    /// Appends a copy instruction, coalescing with a directly preceding
    /// contiguous copy; empty copies are dropped.
    pub fn push_copy(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some(DeltaOp::Copy {
            offset: prev_offset,
            len: prev_len,
        }) = self.ops.last_mut()
        {
            if *prev_offset + *prev_len == offset {
                *prev_len += len;
                return;
            }
        }
        self.ops.push(DeltaOp::Copy { offset, len });
    }

    /// Appends an insert instruction, coalescing with a directly preceding
    /// insert; empty inserts are dropped.
    pub fn push_insert(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        if let Some(DeltaOp::Insert(prev)) = self.ops.last_mut() {
            prev.extend_from_slice(&bytes);
            return;
        }
        self.ops.push(DeltaOp::Insert(bytes));
    }
}

impl Wire for DeltaOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DeltaOp::Copy { offset, len } => {
                out.push(0);
                offset.encode(out);
                len.encode(out);
            }
            DeltaOp::Insert(bytes) => {
                out.push(1);
                bytes.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(DeltaOp::Copy {
                offset: u64::decode(input)?,
                len: u64::decode(input)?,
            }),
            1 => Some(DeltaOp::Insert(Vec::decode(input)?)),
            _ => None,
        }
    }
}

impl Wire for Delta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ops.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Delta {
            ops: Vec::decode(input)?,
        })
    }
}

/// The structural differ for the workspace's dominant encoding shape: a
/// `u64` length prefix followed by the items' encodings back to back
/// (every `Vec`/`VecDeque`/`BTreeSet`/`BTreeMap` impl above). Each
/// argument is the per-item encodings of one state; the result resolves
/// against the *old* state's full encoding to the *new* state's full
/// encoding, copying every item the old encoding already contains (found
/// by exact bytes, wherever it moved) and inserting only genuinely new
/// items — so an insertion or removal in the middle of a set or map costs
/// O(changed items) delta bytes, where a plain [`Delta::splice`] would
/// re-insert everything downstream of the edit.
pub fn diff_item_lists(old_items: &[Vec<u8>], new_items: &[Vec<u8>]) -> Delta {
    let mut index: std::collections::HashMap<&[u8], u64> =
        std::collections::HashMap::with_capacity(old_items.len());
    let mut offset = 8u64; // the u64 length prefix of the old encoding
    for item in old_items {
        index.entry(item.as_slice()).or_insert(offset);
        offset += item.len() as u64;
    }
    let mut delta = Delta::default();
    let mut prefix = Vec::new();
    encode_len(new_items.len(), &mut prefix);
    if old_items.len() == new_items.len() {
        delta.push_copy(0, 8);
    } else {
        delta.push_insert(prefix);
    }
    for item in new_items {
        match index.get(item.as_slice()) {
            Some(&item_offset) => delta.push_copy(item_offset, item.len() as u64),
            None => delta.push_insert(item.clone()),
        }
    }
    delta
}

impl Wire for ReplicaId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_u32().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ReplicaId::new(u32::decode(input)?))
    }
}

impl Wire for Timestamp {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tick().encode(out);
        self.replica().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let tick = u64::decode(input)?;
        let replica = ReplicaId::decode(input)?;
        Some(Timestamp::new(tick, replica))
    }

    fn max_tick(&self) -> u64 {
        self.tick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        assert_eq!(T::from_wire(&bytes), Some(v), "bytes: {bytes:?}");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(u16::MAX);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(usize::MAX & (u32::MAX as usize));
        roundtrip(true);
        roundtrip(false);
        roundtrip('é');
        roundtrip(());
        // Zero-size Rust values still occupy wire bytes, so containers of
        // them round-trip under the length-prefix guard.
        roundtrip(vec![(), (), ()]);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("hello, wire"));
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(VecDeque::from([1u32, 2]));
        roundtrip(BTreeSet::from([1u8, 2, 3]));
        roundtrip(BTreeMap::from([(1u8, String::from("a")), (2, "b".into())]));
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u8, String::from("x")));
        roundtrip((1u8, 2u16, 3u32));
    }

    #[test]
    fn timestamps_roundtrip_and_report_ticks() {
        let t = Timestamp::new(17, ReplicaId::new(3));
        roundtrip(t);
        roundtrip(ReplicaId::new(9));
        assert_eq!(t.max_tick(), 17);
        assert_eq!(
            vec![(1u8, Timestamp::new(4, ReplicaId::new(0))), (2, t)].max_tick(),
            17
        );
        assert_eq!(Vec::<u64>::new().max_tick(), 0);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = 0xffff_ffff_ffffu64.to_wire();
        assert_eq!(u64::from_wire(&bytes[..7]), None);
        let s = String::from("abc").to_wire();
        assert_eq!(String::from_wire(&s[..s.len() - 1]), None);
        // A length prefix larger than the remaining input must not allocate.
        let mut huge = Vec::new();
        encode_len(usize::MAX / 2, &mut huge);
        assert_eq!(Vec::<u8>::from_wire(&huge), None);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 1u8.to_wire();
        bytes.push(0);
        assert_eq!(u8::from_wire(&bytes), None);
    }

    #[test]
    fn malformed_tags_are_rejected() {
        assert_eq!(bool::from_wire(&[2]), None);
        assert_eq!(Option::<u8>::from_wire(&[9]), None);
        assert_eq!(String::from_wire(&[1, 0, 0, 0, 0, 0, 0, 0, 0xff]), None);
    }

    #[test]
    fn delta_splice_resolves_and_roundtrips() {
        let old = b"hello shared world".to_vec();
        let new = b"hello brave new world".to_vec();
        let delta = Delta::splice(&old, &new);
        assert_eq!(delta.apply(&old), Some(new.clone()));
        roundtrip(delta.clone());
        // Identity edit: one copy of the whole base.
        let same = Delta::splice(&old, &old);
        assert_eq!(same.ops.len(), 1);
        assert_eq!(same.apply(&old), Some(old.clone()));
        // Empty-to-something and something-to-empty.
        assert_eq!(Delta::splice(&[], &new).apply(&[]), Some(new.clone()));
        assert_eq!(Delta::splice(&old, &[]).apply(&old), Some(Vec::new()));
    }

    #[test]
    fn delta_apply_rejects_out_of_range_copies() {
        let delta = Delta {
            ops: vec![DeltaOp::Copy { offset: 4, len: 10 }],
        };
        assert_eq!(delta.apply(b"short"), None);
        let overflow = Delta {
            ops: vec![DeltaOp::Copy {
                offset: u64::MAX,
                len: 2,
            }],
        };
        assert_eq!(overflow.apply(b"xy"), None);
    }

    #[test]
    fn delta_ops_coalesce() {
        let mut d = Delta::default();
        d.push_copy(0, 4);
        d.push_copy(4, 4); // contiguous → merged
        d.push_copy(16, 2); // gap → new op
        d.push_insert(b"ab".to_vec());
        d.push_insert(b"cd".to_vec()); // merged
        d.push_copy(0, 0); // empty → dropped
        d.push_insert(Vec::new()); // empty → dropped
        assert_eq!(
            d.ops,
            vec![
                DeltaOp::Copy { offset: 0, len: 8 },
                DeltaOp::Copy { offset: 16, len: 2 },
                DeltaOp::Insert(b"abcd".to_vec()),
            ]
        );
    }

    #[test]
    fn diff_item_lists_reuses_moved_items() {
        // A set-shaped edit that defeats a plain splice: remove the first
        // item, keep the rest, add one — everything surviving is copied.
        let old: Vec<u64> = vec![10, 20, 30, 40];
        let new: Vec<u64> = vec![20, 30, 40, 99];
        let old_items: Vec<Vec<u8>> = old.iter().map(|v| v.to_wire()).collect();
        let new_items: Vec<Vec<u8>> = new.iter().map(|v| v.to_wire()).collect();
        let delta = diff_item_lists(&old_items, &new_items);
        assert_eq!(delta.apply(&old.to_wire()), Some(new.to_wire()));
        // The three surviving items are contiguous in the old encoding, so
        // they coalesce into a single copy; only the new item is inserted.
        let inserted: usize = delta
            .ops
            .iter()
            .filter_map(|op| match op {
                DeltaOp::Insert(b) => Some(b.len()),
                DeltaOp::Copy { .. } => None,
            })
            .sum();
        assert_eq!(inserted, 99u64.to_wire().len());
    }

    #[test]
    fn diff_item_lists_handles_length_changes_and_empties() {
        let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
            (vec![], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![]),
            (vec![1, 2, 3], vec![3, 2, 1]),
            (vec![5; 4], vec![5; 7]),
        ];
        for (old, new) in cases {
            let old_items: Vec<Vec<u8>> = old.iter().map(|v| v.to_wire()).collect();
            let new_items: Vec<Vec<u8>> = new.iter().map(|v| v.to_wire()).collect();
            let delta = diff_item_lists(&old_items, &new_items);
            assert_eq!(
                delta.apply(&old.to_wire()),
                Some(new.to_wire()),
                "old={old:?} new={new:?}"
            );
        }
    }

    #[test]
    fn delta_malformed_tags_are_rejected() {
        assert_eq!(DeltaOp::from_wire(&[2]), None);
        assert_eq!(DeltaOp::from_wire(&[0, 1]), None); // truncated Copy
    }

    #[test]
    fn duplicate_set_elements_are_rejected() {
        let mut bytes = Vec::new();
        encode_len(2, &mut bytes);
        1u8.encode(&mut bytes);
        1u8.encode(&mut bytes);
        assert_eq!(BTreeSet::<u8>::from_wire(&bytes), None);
    }

    #[test]
    fn non_canonical_container_order_is_rejected() {
        // Descending set elements: would re-encode sorted — malformed.
        let mut bytes = Vec::new();
        encode_len(2, &mut bytes);
        2u8.encode(&mut bytes);
        1u8.encode(&mut bytes);
        assert_eq!(BTreeSet::<u8>::from_wire(&bytes), None);
        // Same for map keys (including duplicates).
        let mut map = Vec::new();
        encode_len(2, &mut map);
        2u8.encode(&mut map);
        0u8.encode(&mut map);
        1u8.encode(&mut map);
        0u8.encode(&mut map);
        assert_eq!(BTreeMap::<u8, u8>::from_wire(&map), None);
        let mut dup = Vec::new();
        encode_len(2, &mut dup);
        1u8.encode(&mut dup);
        0u8.encode(&mut dup);
        1u8.encode(&mut dup);
        0u8.encode(&mut dup);
        assert_eq!(BTreeMap::<u8, u8>::from_wire(&dup), None);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = BTreeMap::from([(2u8, 20u64), (1, 10)]);
        let b = BTreeMap::from([(1u8, 10u64), (2, 20)]);
        assert_eq!(a.to_wire(), b.to_wire());
    }
}

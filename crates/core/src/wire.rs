//! The **canonical codec**: one decodable binary encoding that is
//! simultaneously the storage format, the wire format, and the content
//! address preimage.
//!
//! Historically the workspace carried two parallel serializations — a
//! one-way `Hash`-stream that minted content addresses, and this codec
//! bolted alongside for replication. They are now unified: [`Wire`] is
//! the *single* canonical encoding. A state's content address is
//! `sha256(encode(σ))`; the branch store persists exactly those bytes in
//! its backend (and decodes them back on `BranchStore::open`, the typed
//! cold-start path); replication transfers the same bytes and verifies
//! them with the same hash. Every [`crate::Mrdt`] carries the codec as a
//! supertrait bound.
//!
//! The encoding is small, explicit and platform-independent:
//! little-endian fixed-width integers, `u64` length prefixes, explicit
//! enum tags. On ingest a receiver hashes the received bytes against the
//! advertised address and decodes them **once** — no re-encoding across
//! formats — so a codec bug is indistinguishable from corruption (both
//! are rejected before anything lands).
//!
//! # Implementing `Wire`
//!
//! Encode fields in declaration order with the building-block impls below;
//! decode them back in the same order. The encoding must be **canonical**:
//! one value, one byte string (iterate ordered containers, reject
//! non-canonical input on decode). The certification harness checks
//! `decode(encode(σ)) ≈ σ` and byte-identical re-encoding at every state
//! it explores (the `Φ_codec` standing obligation).
//!
//! [`Wire::max_tick`] is the Lamport *receive rule* hook: a state
//! carrying timestamps reports the largest tick it contains, and an
//! ingesting store advances its own clock past it so that operations
//! applied after a merge order after everything merged in (the
//! happens-before half of Ψ_ts across stores).
//!
//! # Example
//!
//! ```
//! use peepul_core::wire::Wire;
//!
//! let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into())];
//! let bytes = v.to_wire();
//! assert_eq!(Vec::<(u64, String)>::from_wire(&bytes), Some(v));
//! ```

use crate::{ReplicaId, Timestamp};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A value with a deterministic, self-describing binary encoding — the
/// workspace's **one canonical codec**: storage bytes, wire bytes, and
/// the SHA-256 preimage of the content address are all this encoding.
///
/// Laws every implementation must uphold:
///
/// * **round-trip**: `decode(encode(v))` succeeds consuming exactly the
///   encoded bytes, and yields a value observably equal to `v`
///   (structurally equal for every type whose representation is
///   canonical; a type with representation freedom — the tree-backed
///   OR-set — decodes to its canonical shape);
/// * **canonical form**: one value, one byte string — equal (or
///   observably equal) values encode to identical bytes, and re-encoding
///   a decoded value reproduces its input exactly. No iteration over
///   unordered containers, no platform-dependent widths; decoders reject
///   non-canonical input (e.g. duplicate set elements) rather than
///   normalising it;
/// * **address fidelity**: since the content address is the hash of this
///   encoding, the two laws above make `sha256(bytes)` a faithful
///   identity for the typed value. Stores and replicas verify it on
///   every object they ingest.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes. `None` on malformed or truncated input.
    fn decode(input: &mut &[u8]) -> Option<Self>;

    /// The largest Lamport tick stored anywhere in this value, or 0 when
    /// it carries no timestamps.
    ///
    /// Ingesting stores use this as the Lamport receive rule: after
    /// landing a remote state they advance their own clock past it, so
    /// later local operations timestamp-order after everything merged in.
    fn max_tick(&self) -> u64 {
        0
    }

    /// This value's complete encoding as a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value from `bytes`, requiring that **all** bytes are
    /// consumed (trailing garbage is malformed input, not padding).
    fn from_wire(mut bytes: &[u8]) -> Option<Self> {
        let v = Self::decode(&mut bytes)?;
        bytes.is_empty().then_some(v)
    }
}

/// Splits `n` bytes off the front of `input`, or `None` if it is shorter.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Some(head)
}

/// Encodes a container length as `u64`.
pub fn encode_len(len: usize, out: &mut Vec<u8>) {
    (len as u64).encode(out);
}

/// Decodes a container length, rejecting lengths that cannot possibly fit
/// in the remaining input (each element takes ≥ 1 byte), so a malicious
/// length prefix cannot force a huge allocation.
pub fn decode_len(input: &mut &[u8]) -> Option<usize> {
    let len = u64::decode(input)?;
    let len = usize::try_from(len).ok()?;
    (len <= input.len()).then_some(len)
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(bytes.try_into().expect("exact size")))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode(input)?).ok()
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for () {
    // One byte, not zero: every encodable value occupies at least one
    // wire byte, which is what lets `decode_len` reject length prefixes
    // larger than the remaining input before any allocation (a zero-size
    // encoding would make `vec![(); huge]` both unrepresentable under
    // that guard and a spin-loop without it).
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(0);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        (u8::decode(input)? == 0).then_some(())
    }
}

impl Wire for char {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u32).encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        char::from_u32(u32::decode(input)?)
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = decode_len(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }

    fn max_tick(&self) -> u64 {
        self.as_ref().map_or(0, Wire::max_tick)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for v in self {
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = decode_len(input)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Some(out)
    }

    fn max_tick(&self) -> u64 {
        self.iter().map(Wire::max_tick).max().unwrap_or(0)
    }
}

impl<T: Wire> Wire for VecDeque<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for v in self {
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Vec::<T>::decode(input)?.into())
    }

    fn max_tick(&self) -> u64 {
        self.iter().map(Wire::max_tick).max().unwrap_or(0)
    }
}

impl<T: Wire + Ord> Wire for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for v in self {
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = decode_len(input)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            let v = T::decode(input)?;
            // Canonical form is strictly ascending: duplicate or unordered
            // elements would silently re-encode differently than they
            // arrived — reject rather than normalise.
            if out.last().is_some_and(|p| *p >= v) {
                return None;
            }
            out.insert(v);
        }
        Some(out)
    }

    fn max_tick(&self) -> u64 {
        self.iter().map(Wire::max_tick).max().unwrap_or(0)
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = decode_len(input)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            // Strictly ascending keys, as for sets: one map, one byte
            // string.
            if out.last_key_value().is_some_and(|(last, _)| *last >= k) {
                return None;
            }
            out.insert(k, v);
        }
        Some(out)
    }

    fn max_tick(&self) -> u64 {
        self.iter()
            .map(|(k, v)| k.max_tick().max(v.max_tick()))
            .max()
            .unwrap_or(0)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }

    fn max_tick(&self) -> u64 {
        self.0.max_tick().max(self.1.max_tick())
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }

    fn max_tick(&self) -> u64 {
        self.0
            .max_tick()
            .max(self.1.max_tick())
            .max(self.2.max_tick())
    }
}

impl Wire for ReplicaId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_u32().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ReplicaId::new(u32::decode(input)?))
    }
}

impl Wire for Timestamp {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tick().encode(out);
        self.replica().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let tick = u64::decode(input)?;
        let replica = ReplicaId::decode(input)?;
        Some(Timestamp::new(tick, replica))
    }

    fn max_tick(&self) -> u64 {
        self.tick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        assert_eq!(T::from_wire(&bytes), Some(v), "bytes: {bytes:?}");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(u16::MAX);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(usize::MAX & (u32::MAX as usize));
        roundtrip(true);
        roundtrip(false);
        roundtrip('é');
        roundtrip(());
        // Zero-size Rust values still occupy wire bytes, so containers of
        // them round-trip under the length-prefix guard.
        roundtrip(vec![(), (), ()]);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("hello, wire"));
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(VecDeque::from([1u32, 2]));
        roundtrip(BTreeSet::from([1u8, 2, 3]));
        roundtrip(BTreeMap::from([(1u8, String::from("a")), (2, "b".into())]));
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u8, String::from("x")));
        roundtrip((1u8, 2u16, 3u32));
    }

    #[test]
    fn timestamps_roundtrip_and_report_ticks() {
        let t = Timestamp::new(17, ReplicaId::new(3));
        roundtrip(t);
        roundtrip(ReplicaId::new(9));
        assert_eq!(t.max_tick(), 17);
        assert_eq!(
            vec![(1u8, Timestamp::new(4, ReplicaId::new(0))), (2, t)].max_tick(),
            17
        );
        assert_eq!(Vec::<u64>::new().max_tick(), 0);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = 0xffff_ffff_ffffu64.to_wire();
        assert_eq!(u64::from_wire(&bytes[..7]), None);
        let s = String::from("abc").to_wire();
        assert_eq!(String::from_wire(&s[..s.len() - 1]), None);
        // A length prefix larger than the remaining input must not allocate.
        let mut huge = Vec::new();
        encode_len(usize::MAX / 2, &mut huge);
        assert_eq!(Vec::<u8>::from_wire(&huge), None);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 1u8.to_wire();
        bytes.push(0);
        assert_eq!(u8::from_wire(&bytes), None);
    }

    #[test]
    fn malformed_tags_are_rejected() {
        assert_eq!(bool::from_wire(&[2]), None);
        assert_eq!(Option::<u8>::from_wire(&[9]), None);
        assert_eq!(String::from_wire(&[1, 0, 0, 0, 0, 0, 0, 0, 0xff]), None);
    }

    #[test]
    fn duplicate_set_elements_are_rejected() {
        let mut bytes = Vec::new();
        encode_len(2, &mut bytes);
        1u8.encode(&mut bytes);
        1u8.encode(&mut bytes);
        assert_eq!(BTreeSet::<u8>::from_wire(&bytes), None);
    }

    #[test]
    fn non_canonical_container_order_is_rejected() {
        // Descending set elements: would re-encode sorted — malformed.
        let mut bytes = Vec::new();
        encode_len(2, &mut bytes);
        2u8.encode(&mut bytes);
        1u8.encode(&mut bytes);
        assert_eq!(BTreeSet::<u8>::from_wire(&bytes), None);
        // Same for map keys (including duplicates).
        let mut map = Vec::new();
        encode_len(2, &mut map);
        2u8.encode(&mut map);
        0u8.encode(&mut map);
        1u8.encode(&mut map);
        0u8.encode(&mut map);
        assert_eq!(BTreeMap::<u8, u8>::from_wire(&map), None);
        let mut dup = Vec::new();
        encode_len(2, &mut dup);
        1u8.encode(&mut dup);
        0u8.encode(&mut dup);
        1u8.encode(&mut dup);
        0u8.encode(&mut dup);
        assert_eq!(BTreeMap::<u8, u8>::from_wire(&dup), None);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = BTreeMap::from([(2u8, 20u64), (1, 10)]);
        let b = BTreeMap::from([(1u8, 10u64), (2, 20)]);
        assert_eq!(a.to_wire(), b.to_wire());
    }
}

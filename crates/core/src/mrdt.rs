//! The MRDT implementation interface (paper, Definition 2.1), with the
//! query/update split of replication-aware linearizability.

use crate::wire::Delta;
use crate::{Timestamp, Wire};
use std::fmt;

/// A mergeable replicated data type implementation `D_τ = (Σ, σ0, do, merge)`.
///
/// The type implementing this trait *is* the state space `Σ`; the trait
/// methods supply the remaining three components:
///
/// * [`Mrdt::initial`] — the initial state `σ0`,
/// * [`Mrdt::apply`] — `do : Op × Σ × Timestamp → Σ × Val`,
/// * [`Mrdt::merge`] — the three-way merge `merge : Σ × Σ × Σ → Σ`, invoked
///   by the store as `merge(σ_lca, σ_a, σ_b)` where `σ_lca` is the state of
///   the lowest common ancestor of the two branches.
///
/// # Queries versus updates
///
/// The paper's operation alphabet `Op_τ` mixes state-transforming
/// operations with pure observations. This interface splits them, in the
/// style of RDT specifications via query/update separation:
///
/// * [`Mrdt::Op`] contains only **updates** — operations that may change
///   the state and are recorded as events of the abstract execution;
/// * [`Mrdt::Query`] contains the **observations**, answered by the pure
///   [`Mrdt::query`] from a state alone, with no timestamp, no successor
///   state, and no event.
///
/// The split is what lets the branch store serve reads commit-free from a
/// shared reference while updates batch into transactions.
///
/// Implementations are **purely functional**: `apply` and `merge` return new
/// states rather than mutating in place, mirroring the OCaml data structures
/// the paper extracts from F*. The store guarantees that the timestamps
/// passed to `apply` are unique and happens-before consistent (Ψ_ts); an
/// implementation is free to ignore them.
///
/// # Observational equivalence
///
/// [`Mrdt::observably_equal`] realises Definition 3.4: two states are
/// observationally equivalent when every **query** returns the same value on
/// both. The default is structural equality, which is sound for every data
/// type (structurally equal states behave identically); data types whose
/// internal representation may diverge without affecting behaviour — the
/// height-balanced BST OR-set is the paper's example — override it. This is
/// what lets executions satisfy *convergence modulo observable behaviour*
/// (Definition 3.5) instead of strict state convergence.
///
/// # One canonical codec
///
/// The [`Wire`] bound is the data type's **canonical codec** — the single
/// serialization the whole workspace runs on. A state's `Wire` encoding
/// is simultaneously
///
/// * its **storage format**: the branch store publishes exactly these
///   bytes to a pluggable backend (`peepul-store`'s `Backend`), and a
///   reopened store decodes them back into typed state
///   (`BranchStore::open`),
/// * its **content address** preimage: `sha256(encode(σ))` is the
///   state's `ObjectId`, and
/// * its **wire format**: replication transfers the same bytes and
///   verifies them with the same hash — one decode and one hash per
///   received object, nothing is re-encoded across formats.
///
/// Implementations must therefore encode *canonically*: equal (or
/// observably equal, see below) states produce identical bytes — iterate
/// ordered containers (`BTreeMap`, `Vec`), never a `HashMap`/`HashSet` —
/// and `decode(encode(σ))` yields a state observably equal to `σ` that
/// re-encodes to the identical bytes. The certification harness checks
/// this round-trip as a standing obligation (`Φ_codec`) at every state
/// it explores.
///
/// # Example
///
/// See the [crate-level documentation](crate) for a complete counter
/// implementation.
pub trait Mrdt: Clone + PartialEq + Wire + fmt::Debug {
    /// The **update** operations `Op_τ` of the data type. Every element may
    /// transform the state and is recorded as an event of the abstract
    /// execution. Pure observations do not belong here — they go in
    /// [`Mrdt::Query`].
    type Op: Clone + fmt::Debug;

    /// The return values `Val_τ` of updates. Updates that return nothing
    /// use `()` (the paper's `⊥`); updates with a payload (e.g. the queue's
    /// `dequeue`) embed it in an enum.
    type Value: Clone + PartialEq + fmt::Debug;

    /// The pure observations of the data type (lookups, reads, peeks).
    type Query: Clone + fmt::Debug;

    /// The answers queries produce.
    type Output: Clone + PartialEq + fmt::Debug;

    /// The initial state `σ0` of a freshly created object.
    fn initial() -> Self;

    /// Applies one update operation at this state.
    ///
    /// `t` is the unique store-supplied timestamp of the operation. Returns
    /// the successor state and the operation's return value.
    #[must_use]
    fn apply(&self, op: &Self::Op, t: Timestamp) -> (Self, Self::Value);

    /// Answers a pure observation of this state.
    ///
    /// Queries take no timestamp, create no event and produce no successor
    /// state — they are what the branch store serves commit-free through
    /// `BranchStore::read` and `BranchRef::read`.
    #[must_use]
    fn query(&self, q: &Self::Query) -> Self::Output;

    /// Three-way merge of two divergent states `a` and `b` whose lowest
    /// common ancestor state is `lca`.
    ///
    /// The store only ever calls this with an `lca` that is a common causal
    /// ancestor of `a` and `b` (property Ψ_lca); implementations may rely on
    /// that — e.g. the queue merge assumes every element of `lca` that
    /// survives in `a` appears in the same relative order.
    #[must_use]
    fn merge(lca: &Self, a: &Self, b: &Self) -> Self;

    /// Observational equivalence `σ1 ∼ σ2` (Definition 3.4).
    ///
    /// The default — structural equality — is always sound. Override only
    /// when distinct representations can have identical observable
    /// behaviour.
    fn observably_equal(&self, other: &Self) -> bool {
        self == other
    }

    /// The **delta form** of the canonical codec: an edit script from
    /// `parent`'s canonical encoding to this state's canonical encoding.
    ///
    /// Deltas are a storage and transfer encoding only — a state's content
    /// address stays the sha256 of its *full* canonical bytes, and every
    /// consumer re-hashes the resolved bytes against the advertised
    /// address before trusting them. The resolution law every
    /// implementation must satisfy, for **every** pair of states:
    ///
    /// ```text
    /// apply_delta(p, σ.diff(p)) = Some(σ')   with encode(σ') = encode(σ)
    /// ```
    ///
    /// The default is the byte-level prefix/suffix trim
    /// ([`Delta::splice`]), which satisfies the law for any canonical
    /// codec and is already O(delta) for append-shaped types. Relational
    /// set/map/log-shaped types override it with a structural item differ
    /// ([`crate::wire::diff_item_lists`]) so mid-stream edits also cost
    /// O(changed items). The certification harness checks the resolution
    /// law as part of `Φ_codec` at every state it explores.
    #[must_use]
    fn diff(&self, parent: &Self) -> Delta {
        Delta::splice(&parent.to_wire(), &self.to_wire())
    }

    /// Resolves a delta produced by [`Mrdt::diff`] against `parent`,
    /// reconstructing the target state. `None` when the delta does not
    /// apply to this parent (mismatched base or malformed script) or the
    /// resolved bytes fail to decode.
    ///
    /// Implementations should leave the default in place: resolution
    /// always goes through the canonical byte encoding, so the store and
    /// the wire can resolve chains without knowing the type's structure.
    #[must_use]
    fn apply_delta(parent: &Self, delta: &Delta) -> Option<Self> {
        Self::from_wire(&delta.apply(&parent.to_wire())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplicaId;

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Reg(u64, Timestamp);

    impl Wire for Reg {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
            self.1.encode(out);
        }

        fn decode(input: &mut &[u8]) -> Option<Self> {
            Some(Reg(Wire::decode(input)?, Wire::decode(input)?))
        }
    }

    #[derive(Clone, Copy, Debug)]
    enum RegOp {
        Write(u64),
    }

    #[derive(Clone, Copy, Debug)]
    enum RegQuery {
        Read,
    }

    impl Mrdt for Reg {
        type Op = RegOp;
        type Value = ();
        type Query = RegQuery;
        type Output = u64;

        fn initial() -> Self {
            Reg(0, Timestamp::MIN)
        }

        fn apply(&self, op: &RegOp, t: Timestamp) -> (Self, ()) {
            match *op {
                RegOp::Write(v) => (Reg(v, t), ()),
            }
        }

        fn query(&self, q: &RegQuery) -> u64 {
            match q {
                RegQuery::Read => self.0,
            }
        }

        fn merge(_lca: &Self, a: &Self, b: &Self) -> Self {
            if a.1 >= b.1 {
                *a
            } else {
                *b
            }
        }
    }

    fn ts(tick: u64) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(0))
    }

    #[test]
    fn apply_returns_successor_and_query_observes_it() {
        let r = Reg::initial();
        let (r2, ()) = r.apply(&RegOp::Write(9), ts(1));
        assert_eq!(r2.query(&RegQuery::Read), 9);
        // Queries are pure: the observed state is unchanged.
        assert_eq!(r2.query(&RegQuery::Read), 9);
    }

    #[test]
    fn merge_picks_later_write() {
        let l = Reg::initial();
        let (a, _) = l.apply(&RegOp::Write(1), ts(1));
        let (b, _) = l.apply(&RegOp::Write(2), ts(2));
        let m = Reg::merge(&l, &a, &b);
        assert_eq!(m.query(&RegQuery::Read), 2);
    }

    #[test]
    fn default_observational_equivalence_is_structural() {
        let a = Reg(1, ts(1));
        let b = Reg(1, ts(1));
        let c = Reg(2, ts(2));
        assert!(a.observably_equal(&b));
        assert!(!a.observably_equal(&c));
    }
}

//! Executable proof obligations `Φ_do`, `Φ_merge`, `Φ_spec`, `Φ_con`
//! (paper, Table 2).
//!
//! The F* Peepul discharges these obligations once-and-for-all to an SMT
//! solver. Here they are *checked* — at every transition of every execution
//! the harness explores. A [`Certified`] data type bundles an
//! implementation with its specification and simulation relation so the
//! checks can be stated generically.

use crate::sim::SimulationRelation;
use crate::spec::Specification;
use crate::store_props::{psi_lca, psi_ts};
use crate::{AbstractOf, Mrdt, Timestamp};
use std::error::Error;
use std::fmt;

/// An MRDT implementation packaged with its declarative specification and
/// replication-aware simulation relation — everything Theorem 4.2 needs.
///
/// This mirrors the F* library's `MRDT` type class (§7.1): each data type in
/// `peepul-types` is an instance, and the `peepul-verify` harness certifies
/// any instance without knowing which data type it is.
pub trait Certified: Mrdt {
    /// The specification function `F_τ` for this data type.
    type Spec: Specification<Self>;
    /// The simulation relation `R_sim` for this data type.
    type Sim: SimulationRelation<Self>;
}

/// Which obligation (or assumed store property) a check exercised.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Obligation {
    /// `Φ_do`: the simulation relation is preserved by `do`/`do#` (Fig. 4).
    PhiDo,
    /// `Φ_merge`: the simulation relation is preserved by `merge`/`merge#`
    /// (Fig. 5).
    PhiMerge,
    /// `Φ_spec`: implementation return values match `F_τ`.
    PhiSpec,
    /// `Φ_con`: equal abstract states imply observationally equivalent
    /// concrete states (convergence modulo observable behaviour).
    PhiCon,
    /// `Ψ_ts`: store-guaranteed timestamp discipline (Table 1).
    PsiTs,
    /// `Ψ_lca`: store-guaranteed LCA discipline (Table 1).
    PsiLca,
    /// `Φ_codec`: the canonical codec round-trips — `decode(encode(σ))`
    /// is observably equal to `σ` and re-encodes to the identical bytes.
    /// Not one of the paper's Table 2 obligations; it certifies the
    /// workspace's single-codec invariant (storage = wire = address
    /// preimage), without which a store could not reopen to typed state
    /// nor replicate faithfully.
    Codec,
    /// `Φ_ra`: replication-aware linearizability (Enea et al. 2019; the
    /// authors' follow-up on automatically verifying it, 2025). A whole
    /// *fleet* execution — local operations, pack ingests and merges on
    /// `n` independent replicas — must admit a linearization respecting
    /// every replica's local order and the Lamport happens-before edges
    /// that replays through `F_τ` to reproduce every return value and
    /// every query output observed at every replica. This extends the
    /// Table 2 obligations from single-store merges to the replication
    /// layer itself.
    RaLin,
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Obligation::PhiDo => "Φ_do",
            Obligation::PhiMerge => "Φ_merge",
            Obligation::PhiSpec => "Φ_spec",
            Obligation::PhiCon => "Φ_con",
            Obligation::PsiTs => "Ψ_ts",
            Obligation::PsiLca => "Ψ_lca",
            Obligation::Codec => "Φ_codec",
            Obligation::RaLin => "Φ_ra",
        };
        f.write_str(name)
    }
}

/// A failed obligation check, with a counterexample description.
#[derive(Clone, PartialEq, Eq)]
pub struct ObligationError {
    obligation: Obligation,
    message: String,
}

impl ObligationError {
    /// Creates an error for `obligation` with a counterexample description.
    pub fn new(obligation: Obligation, message: impl Into<String>) -> Self {
        ObligationError {
            obligation,
            message: message.into(),
        }
    }

    /// The violated obligation.
    pub fn obligation(&self) -> Obligation {
        self.obligation
    }

    /// The counterexample description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Debug for ObligationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ObligationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.obligation, self.message)
    }
}

impl Error for ObligationError {}

/// Tally of obligation checks performed, kept by the verification harness.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct ObligationReport {
    /// Number of `Φ_do` instances checked.
    pub phi_do: u64,
    /// Number of `Φ_merge` instances checked.
    pub phi_merge: u64,
    /// Number of `Φ_spec` instances checked.
    pub phi_spec: u64,
    /// Number of `Φ_con` instances checked.
    pub phi_con: u64,
    /// Number of `Ψ_ts` assertions checked.
    pub psi_ts: u64,
    /// Number of `Ψ_lca` assertions checked.
    pub psi_lca: u64,
    /// Number of `Φ_codec` round-trips checked.
    pub codec: u64,
    /// Number of `Φ_ra` (replication-aware linearizability) witness
    /// obligations checked: one per witness event, per trace record and
    /// per replayed observation of a fleet execution.
    pub ra_lin: u64,
}

impl ObligationReport {
    /// Total number of obligation instances checked.
    pub fn total(&self) -> u64 {
        self.phi_do
            + self.phi_merge
            + self.phi_spec
            + self.phi_con
            + self.psi_ts
            + self.psi_lca
            + self.codec
            + self.ra_lin
    }

    /// Accumulates another report into this one.
    pub fn absorb(&mut self, other: &ObligationReport) {
        self.phi_do += other.phi_do;
        self.phi_merge += other.phi_merge;
        self.phi_spec += other.phi_spec;
        self.phi_con += other.phi_con;
        self.psi_ts += other.psi_ts;
        self.psi_lca += other.psi_lca;
        self.codec += other.codec;
        self.ra_lin += other.ra_lin;
    }
}

/// Checks `Φ_do` and `Φ_spec` for one operation instance, returning the
/// successor pair of states.
///
/// Given `R_sim(I, σ)` (established inductively by the caller), performs
/// `do#(I, e, op, a, t) = I'` and `D_τ.do(op, σ, t) = (σ', a)` and verifies:
///
/// * `Φ_spec`: `a = F_τ(op, I)` — the implementation's return value matches
///   the specification on the *pre*-state, and
/// * `Φ_do`: `R_sim(I', σ')`.
///
/// `Ψ_ts(I)` is asserted as the obligations' hypothesis.
///
/// # Errors
///
/// Returns the first violated obligation with a counterexample description.
pub fn check_do<M: Certified>(
    abs: &AbstractOf<M>,
    conc: &M,
    op: &M::Op,
    t: Timestamp,
    report: &mut ObligationReport,
) -> Result<(AbstractOf<M>, M), ObligationError> {
    psi_ts(abs).map_err(|e| ObligationError::new(Obligation::PsiTs, e.to_string()))?;
    report.psi_ts += 1;

    let (conc_next, rval) = conc.apply(op, t);

    let specified = M::Spec::spec(op, abs);
    report.phi_spec += 1;
    if rval != specified {
        return Err(ObligationError::new(
            Obligation::PhiSpec,
            format!(
                "op {op:?} at {t:?} returned {rval:?} but F_τ specifies {specified:?} \
                 (abstract state: {} events)",
                abs.len()
            ),
        ));
    }

    let abs_next = abs.perform(op.clone(), rval, t);
    report.phi_do += 1;
    if !M::Sim::holds(&abs_next, &conc_next) {
        let why = M::Sim::explain_failure(&abs_next, &conc_next)
            .unwrap_or_else(|| "no explanation".to_owned());
        return Err(ObligationError::new(
            Obligation::PhiDo,
            format!("after op {op:?} at {t:?}: {why}; concrete = {conc_next:?}"),
        ));
    }
    Ok((abs_next, conc_next))
}

/// Checks `Φ_spec` for a batch of query probes against one state pair.
///
/// Queries are pure observations, so the specification must agree with the
/// implementation at **every** reachable state, not only at states where a
/// schedule happens to perform a read. The harness calls this after each
/// `DO` and `MERGE` with a per-data-type probe set: for each probe `q` it
/// verifies `σ.query(q) = F_τ(q, I)`.
///
/// # Errors
///
/// Returns the first probe whose implementation answer differs from the
/// specified one.
pub fn check_queries<M: Certified>(
    abs: &AbstractOf<M>,
    conc: &M,
    probes: &[M::Query],
    report: &mut ObligationReport,
) -> Result<(), ObligationError> {
    for q in probes {
        report.phi_spec += 1;
        let got = conc.query(q);
        let specified = M::Spec::query(q, abs);
        if got != specified {
            return Err(ObligationError::new(
                Obligation::PhiSpec,
                format!(
                    "query {q:?} answered {got:?} but F_τ specifies {specified:?} \
                     (abstract state: {} events; concrete = {conc:?})",
                    abs.len()
                ),
            ));
        }
    }
    Ok(())
}

/// Checks one instance of `Φ_codec`: the canonical codec round-trips on
/// this state.
///
/// Verifies that `decode(encode(σ))` succeeds, that the decoded state is
/// **observably equal** to `σ` (Definition 3.4 — exact for every data
/// type whose representation is canonical; the tree-backed OR-set may
/// decode to a differently shaped, observably identical tree), and that
/// re-encoding the decoded state reproduces the identical bytes (the
/// canonical-form half: one value, one byte string, one content
/// address). The harness runs this at every explored state, so a codec
/// that drifts from its data type corrupts no store before certification
/// catches it.
///
/// # Errors
///
/// A `Φ_codec` violation naming the failing stage.
pub fn check_codec<M: Mrdt>(
    conc: &M,
    report: &mut ObligationReport,
) -> Result<(), ObligationError> {
    report.codec += 1;
    let bytes = conc.to_wire();
    let Some(decoded) = M::from_wire(&bytes) else {
        return Err(ObligationError::new(
            Obligation::Codec,
            format!(
                "state {conc:?} encoded to {} bytes that do not decode back",
                bytes.len()
            ),
        ));
    };
    if !decoded.observably_equal(conc) {
        return Err(ObligationError::new(
            Obligation::Codec,
            format!("decode(encode(σ)) = {decoded:?} is observably distinct from σ = {conc:?}"),
        ));
    }
    let reencoded = decoded.to_wire();
    if reencoded != bytes {
        return Err(ObligationError::new(
            Obligation::Codec,
            format!(
                "non-canonical encoding of {conc:?}: re-encode differs \
                 ({} vs {} bytes) — one value must map to one byte string",
                reencoded.len(),
                bytes.len()
            ),
        ));
    }
    // The delta form of the codec: `apply_delta(base, σ.diff(base))` must
    // reconstruct σ exactly — observably equal AND re-encoding to the
    // identical canonical bytes, since storage chains and delta fetches
    // re-hash the resolved bytes against σ's content address. Checked
    // against σ0 (the longest edit a chain can start from) and against σ
    // itself (the identity edit); the two compose into every chain shape
    // the store resolves, because each link is verified by this same law.
    for (base, base_name) in [(&M::initial(), "σ0"), (conc, "σ")] {
        let delta = conc.diff(base);
        let Some(resolved) = M::apply_delta(base, &delta) else {
            return Err(ObligationError::new(
                Obligation::Codec,
                format!(
                    "delta of σ = {conc:?} vs {base_name} = {base:?} does not \
                     resolve: apply_delta(diff) returned None"
                ),
            ));
        };
        if !resolved.observably_equal(conc) {
            return Err(ObligationError::new(
                Obligation::Codec,
                format!(
                    "drifted delta: apply_delta({base_name}, diff({base_name}, σ)) = \
                     {resolved:?} is observably distinct from σ = {conc:?}"
                ),
            ));
        }
        let resolved_bytes = resolved.to_wire();
        if resolved_bytes != bytes {
            return Err(ObligationError::new(
                Obligation::Codec,
                format!(
                    "delta resolution of {conc:?} vs {base_name} is not \
                     canonical: resolved bytes differ from encode(σ) \
                     ({} vs {} bytes) — chain resolution would fail the \
                     content-address re-hash",
                    resolved_bytes.len(),
                    bytes.len()
                ),
            ));
        }
    }
    Ok(())
}

/// Checks `Φ_merge` for one merge instance, returning the merged pair of
/// states.
///
/// Given `R_sim(I_a, σ_a)`, `R_sim(I_b, σ_b)` and
/// `R_sim(lca#(I_a, I_b), σ_lca)` (all established inductively), computes
/// `merge#(I_a, I_b)` and `D_τ.merge(σ_lca, σ_a, σ_b)` and verifies the
/// simulation relation on the results. The hypotheses
/// `Ψ_ts(merge#(I_a, I_b))` and `Ψ_lca(lca#(I_a, I_b), I_a, I_b)` are
/// asserted first, and the precondition `R_sim` on the LCA pair is also
/// re-checked so a harness mistake cannot masquerade as a data type bug.
///
/// # Errors
///
/// Returns the first violated obligation with a counterexample description.
pub fn check_merge<M: Certified>(
    abs_a: &AbstractOf<M>,
    conc_a: &M,
    abs_b: &AbstractOf<M>,
    conc_b: &M,
    conc_lca: &M,
    report: &mut ObligationReport,
) -> Result<(AbstractOf<M>, M), ObligationError> {
    let abs_lca = abs_a.lca(abs_b);
    let abs_merged = abs_a.merged(abs_b);

    psi_ts(&abs_merged).map_err(|e| ObligationError::new(Obligation::PsiTs, e.to_string()))?;
    report.psi_ts += 1;
    psi_lca(&abs_lca, abs_a, abs_b)
        .map_err(|e| ObligationError::new(Obligation::PsiLca, e.to_string()))?;
    report.psi_lca += 1;

    if !M::Sim::holds(&abs_lca, conc_lca) {
        return Err(ObligationError::new(
            Obligation::PhiMerge,
            format!(
                "precondition R_sim(lca#, σ_lca) fails before merge: {}",
                M::Sim::explain_failure(&abs_lca, conc_lca)
                    .unwrap_or_else(|| "no explanation".to_owned())
            ),
        ));
    }

    let conc_merged = M::merge(conc_lca, conc_a, conc_b);
    report.phi_merge += 1;
    if !M::Sim::holds(&abs_merged, &conc_merged) {
        let why = M::Sim::explain_failure(&abs_merged, &conc_merged)
            .unwrap_or_else(|| "no explanation".to_owned());
        return Err(ObligationError::new(
            Obligation::PhiMerge,
            format!("after merge: {why}; merged concrete = {conc_merged:?}"),
        ));
    }
    Ok((abs_merged, conc_merged))
}

/// Checks one instance of `Φ_con`: if two branches have the same abstract
/// state, their concrete states must be observationally equivalent
/// (Definition 3.5, convergence modulo observable behaviour).
///
/// When the abstract states differ the check is vacuously true.
///
/// # Errors
///
/// Returns a `Φ_con` violation if the abstract states are equal but the
/// concrete states are observationally distinguishable.
pub fn check_con<M: Certified>(
    abs_a: &AbstractOf<M>,
    conc_a: &M,
    abs_b: &AbstractOf<M>,
    conc_b: &M,
    report: &mut ObligationReport,
) -> Result<(), ObligationError>
where
    M::Op: PartialEq,
{
    if abs_a != abs_b {
        return Ok(());
    }
    report.phi_con += 1;
    if !conc_a.observably_equal(conc_b) {
        return Err(ObligationError::new(
            Obligation::PhiCon,
            format!(
                "equal abstract states ({} events) but observationally distinct \
                 concrete states: {conc_a:?} vs {conc_b:?}",
                abs_a.len()
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReplicaId, Timestamp, Wire};

    /// Increment-only counter with its spec and simulation relation, used to
    /// exercise the obligation checkers; `peepul-types` has the real one.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Ctr(u64);

    impl Wire for Ctr {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }

        fn decode(input: &mut &[u8]) -> Option<Self> {
            Some(Ctr(Wire::decode(input)?))
        }
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum CtrOp {
        Inc,
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum CtrQuery {
        Read,
    }

    impl Mrdt for Ctr {
        type Op = CtrOp;
        type Value = ();
        type Query = CtrQuery;
        type Output = u64;
        fn initial() -> Self {
            Ctr(0)
        }
        fn apply(&self, op: &CtrOp, _t: Timestamp) -> (Self, ()) {
            match op {
                CtrOp::Inc => (Ctr(self.0 + 1), ()),
            }
        }
        fn query(&self, q: &CtrQuery) -> u64 {
            match q {
                CtrQuery::Read => self.0,
            }
        }
        fn merge(l: &Self, a: &Self, b: &Self) -> Self {
            Ctr(a.0 + b.0 - l.0)
        }
    }

    struct CtrSpec;
    impl Specification<Ctr> for CtrSpec {
        fn spec(_op: &CtrOp, _state: &AbstractOf<Ctr>) {}
        fn query(q: &CtrQuery, state: &AbstractOf<Ctr>) -> u64 {
            match q {
                CtrQuery::Read => state
                    .events()
                    .filter(|e| matches!(e.op(), CtrOp::Inc))
                    .count() as u64,
            }
        }
    }

    struct CtrSim;
    impl SimulationRelation<Ctr> for CtrSim {
        fn holds(abs: &AbstractOf<Ctr>, conc: &Ctr) -> bool {
            let incs = abs
                .events()
                .filter(|e| matches!(e.op(), CtrOp::Inc))
                .count() as u64;
            conc.0 == incs
        }
    }

    impl Certified for Ctr {
        type Spec = CtrSpec;
        type Sim = CtrSim;
    }

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    #[test]
    fn check_do_accepts_correct_counter() {
        let mut rep = ObligationReport::default();
        let (i, c) = (AbstractOf::<Ctr>::new(), Ctr::initial());
        let (i, c) = check_do(&i, &c, &CtrOp::Inc, ts(1, 0), &mut rep).unwrap();
        let (i, c) = check_do(&i, &c, &CtrOp::Inc, ts(2, 0), &mut rep).unwrap();
        assert_eq!(c.0, 2);
        check_queries(&i, &c, &[CtrQuery::Read], &mut rep).unwrap();
        assert_eq!(rep.phi_do, 2);
        assert_eq!(rep.phi_spec, 3);
    }

    #[test]
    fn check_queries_catches_wrong_answer() {
        // A read against an abstract state that already has an Inc the
        // concrete state does not reflect → Φ_spec fires.
        let mut rep = ObligationReport::default();
        let i = AbstractOf::<Ctr>::new().perform(CtrOp::Inc, (), ts(1, 0));
        let stale = Ctr(0);
        let err = check_queries(&i, &stale, &[CtrQuery::Read], &mut rep).unwrap_err();
        assert_eq!(err.obligation(), Obligation::PhiSpec);
        assert!(err.to_string().contains("Read"));
    }

    #[test]
    fn check_queries_with_no_probes_is_vacuous() {
        let mut rep = ObligationReport::default();
        check_queries(&AbstractOf::<Ctr>::new(), &Ctr(7), &[], &mut rep).unwrap();
        assert_eq!(rep.phi_spec, 0);
    }

    #[test]
    fn check_merge_accepts_correct_counter() {
        let mut rep = ObligationReport::default();
        let (i0, c0) = (AbstractOf::<Ctr>::new(), Ctr::initial());
        let (il, cl) = check_do(&i0, &c0, &CtrOp::Inc, ts(1, 0), &mut rep).unwrap();
        let (ia, ca) = check_do(&il, &cl, &CtrOp::Inc, ts(2, 1), &mut rep).unwrap();
        let (ib, cb) = check_do(&il, &cl, &CtrOp::Inc, ts(3, 2), &mut rep).unwrap();
        let (im, cm) = check_merge(&ia, &ca, &ib, &cb, &cl, &mut rep).unwrap();
        assert_eq!(cm.0, 3);
        assert_eq!(im.len(), 3);
        assert_eq!(rep.phi_merge, 1);
    }

    #[test]
    fn check_merge_catches_broken_merge() {
        /// Counter whose merge loses one branch's updates.
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        struct BadCtr(u64);
        impl Wire for BadCtr {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some(BadCtr(Wire::decode(input)?))
            }
        }
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        struct Inc;
        impl Mrdt for BadCtr {
            type Op = Inc;
            type Value = u64;
            type Query = ();
            type Output = ();
            fn initial() -> Self {
                BadCtr(0)
            }
            fn apply(&self, _op: &Inc, _t: Timestamp) -> (Self, u64) {
                (BadCtr(self.0 + 1), 0)
            }
            fn query(&self, _q: &()) {}
            fn merge(_l: &Self, a: &Self, _b: &Self) -> Self {
                *a // drops b's increments
            }
        }
        struct BadSpec;
        impl Specification<BadCtr> for BadSpec {
            fn spec(_op: &Inc, _state: &AbstractOf<BadCtr>) -> u64 {
                0
            }
            fn query(_q: &(), _state: &AbstractOf<BadCtr>) {}
        }
        struct BadSim;
        impl SimulationRelation<BadCtr> for BadSim {
            fn holds(abs: &AbstractOf<BadCtr>, conc: &BadCtr) -> bool {
                conc.0 == abs.len() as u64
            }
        }
        impl Certified for BadCtr {
            type Spec = BadSpec;
            type Sim = BadSim;
        }

        let mut rep = ObligationReport::default();
        let (i0, c0) = (AbstractOf::<BadCtr>::new(), BadCtr::initial());
        let (ia, ca) = check_do(&i0, &c0, &Inc, ts(1, 1), &mut rep).unwrap();
        let (ib, cb) = check_do(&i0, &c0, &Inc, ts(2, 2), &mut rep).unwrap();
        let err = check_merge(&ia, &ca, &ib, &cb, &c0, &mut rep).unwrap_err();
        assert_eq!(err.obligation(), Obligation::PhiMerge);
        assert!(err.to_string().contains("Φ_merge"));
    }

    #[test]
    fn check_con_holds_for_equal_abstract_states() {
        let mut rep = ObligationReport::default();
        let i = AbstractOf::<Ctr>::new().perform(CtrOp::Inc, (), ts(1, 0));
        check_con(&i, &Ctr(1), &i, &Ctr(1), &mut rep).unwrap();
        assert_eq!(rep.phi_con, 1);
    }

    #[test]
    fn check_con_catches_divergent_states() {
        let mut rep = ObligationReport::default();
        let i = AbstractOf::<Ctr>::new().perform(CtrOp::Inc, (), ts(1, 0));
        let err = check_con(&i, &Ctr(1), &i, &Ctr(2), &mut rep).unwrap_err();
        assert_eq!(err.obligation(), Obligation::PhiCon);
    }

    #[test]
    fn check_con_is_vacuous_for_different_abstract_states() {
        let mut rep = ObligationReport::default();
        let i1 = AbstractOf::<Ctr>::new().perform(CtrOp::Inc, (), ts(1, 0));
        let i2 = AbstractOf::<Ctr>::new().perform(CtrOp::Inc, (), ts(2, 0));
        check_con(&i1, &Ctr(1), &i2, &Ctr(7), &mut rep).unwrap();
        assert_eq!(rep.phi_con, 0);
    }

    #[test]
    fn report_totals_and_absorb() {
        let mut a = ObligationReport {
            phi_do: 1,
            phi_merge: 2,
            phi_spec: 3,
            phi_con: 4,
            psi_ts: 5,
            psi_lca: 6,
            codec: 7,
            ra_lin: 8,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.total(), 72);
    }

    #[test]
    fn check_codec_accepts_roundtripping_state() {
        let mut rep = ObligationReport::default();
        check_codec(&Ctr(17), &mut rep).unwrap();
        assert_eq!(rep.codec, 1);
    }

    #[test]
    fn check_codec_catches_asymmetric_codec() {
        /// Encoder writes 4 bytes, decoder reads 8 — the classic drift bug
        /// the standing obligation exists for.
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        struct Skew(u64);
        impl Wire for Skew {
            fn encode(&self, out: &mut Vec<u8>) {
                (self.0 as u32).encode(out); // BUG: narrows
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some(Skew(Wire::decode(input)?))
            }
        }
        impl Mrdt for Skew {
            type Op = CtrOp;
            type Value = ();
            type Query = CtrQuery;
            type Output = u64;
            fn initial() -> Self {
                Skew(0)
            }
            fn apply(&self, _op: &CtrOp, _t: Timestamp) -> (Self, ()) {
                (Skew(self.0 + 1), ())
            }
            fn query(&self, _q: &CtrQuery) -> u64 {
                self.0
            }
            fn merge(l: &Self, a: &Self, b: &Self) -> Self {
                Skew(a.0 + b.0 - l.0)
            }
        }
        let mut rep = ObligationReport::default();
        let err = check_codec(&Skew(1), &mut rep).unwrap_err();
        assert_eq!(err.obligation(), Obligation::Codec);
    }
}

//! Formal model for *mergeable replicated data types* (MRDTs).
//!
//! This crate is the foundation of the Peepul workspace, a Rust reproduction
//! of **“Certified Mergeable Replicated Data Types”** (PLDI 2022). It
//! provides the vocabulary that every other crate speaks:
//!
//! * [`Timestamp`] — unique, totally ordered operation timestamps satisfying
//!   the store guarantee Ψ_ts (paper, Table 1),
//! * [`Mrdt`] — Definition 2.1: an implementation `(Σ, σ0, do, merge)` as a
//!   purely functional interface with a three-way merge,
//! * [`AbstractState`] — Definition 2.2: abstract executions
//!   `I = ⟨E, oper, rval, time, vis⟩` together with the abstract operators
//!   `do#`, `merge#` and `lca#` from §3,
//! * [`Specification`] — Definition 2.3: the declarative specification
//!   function `F_τ(op, I)`,
//! * [`SimulationRelation`] — §4.1: replication-aware simulation relations
//!   `R_sim ⊆ I_τ × Σ`,
//! * [`obligations`] — Table 2: the four proof obligations `Φ_do`,
//!   `Φ_merge`, `Φ_spec` and `Φ_con` as executable checks,
//! * [`store_props`] — Table 1: the store properties `Ψ_ts` and `Ψ_lca`.
//!
//! The original Peepul discharges the Table 2 obligations to an SMT solver
//! through F*. Here the same predicates are *executed* over store executions
//! by the `peepul-verify` crate — bounded-exhaustively for small executions
//! and randomly for large ones. See `DESIGN.md` §1 for the substitution
//! rationale.
//!
//! # Example
//!
//! ```
//! use peepul_core::{Mrdt, Timestamp, ReplicaId, Wire};
//!
//! /// A tiny increment-only counter MRDT.
//! #[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
//! struct Ctr(u64);
//!
//! /// The canonical codec: these bytes are the storage format, the wire
//! /// format, and (hashed) the content address — one codec for all three.
//! impl Wire for Ctr {
//!     fn encode(&self, out: &mut Vec<u8>) { self.0.encode(out) }
//!     fn decode(input: &mut &[u8]) -> Option<Self> {
//!         Some(Ctr(Wire::decode(input)?))
//!     }
//! }
//!
//! /// Updates transform the state and are recorded as events…
//! #[derive(Clone, Copy, Debug, PartialEq, Eq)]
//! enum CtrOp { Inc }
//!
//! /// …while queries are pure observations, answered commit-free.
//! #[derive(Clone, Copy, Debug, PartialEq, Eq)]
//! enum CtrQuery { Read }
//!
//! impl Mrdt for Ctr {
//!     type Op = CtrOp;
//!     type Value = ();
//!     type Query = CtrQuery;
//!     type Output = u64;
//!     fn initial() -> Self { Ctr(0) }
//!     fn apply(&self, op: &CtrOp, _t: Timestamp) -> (Self, ()) {
//!         match op {
//!             CtrOp::Inc => (Ctr(self.0 + 1), ()),
//!         }
//!     }
//!     fn query(&self, q: &CtrQuery) -> u64 {
//!         match q {
//!             CtrQuery::Read => self.0,
//!         }
//!     }
//!     fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
//!         Ctr(a.0 + b.0 - lca.0)
//!     }
//! }
//!
//! let t = Timestamp::new(1, ReplicaId::new(0));
//! let (c, _) = Ctr::initial().apply(&CtrOp::Inc, t);
//! assert_eq!(c.query(&CtrQuery::Read), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abstract_state;
pub mod event;
pub mod mrdt;
pub mod obligations;
pub mod sim;
pub mod spec;
pub mod store_props;
pub mod timestamp;
pub mod wire;

pub use abstract_state::AbstractState;
pub use event::{Event, EventId};
pub use mrdt::Mrdt;
pub use obligations::{Certified, Obligation, ObligationError, ObligationReport};
pub use sim::SimulationRelation;
pub use spec::Specification;
pub use store_props::{psi_lca, psi_lca_paper, psi_ts, StorePropertyError};
pub use timestamp::{ReplicaId, Timestamp};
pub use wire::{diff_item_lists, Delta, DeltaOp, Wire};

/// Shorthand for the abstract state of an MRDT `M`.
///
/// An [`AbstractState`] is generic in the operation and return-value types;
/// for a concrete MRDT those are always `M::Op` and `M::Value`.
pub type AbstractOf<M> = AbstractState<<M as Mrdt>::Op, <M as Mrdt>::Value>;

//! Declarative replicated data type specifications (Definition 2.3).

use crate::{AbstractOf, Mrdt};

/// A replicated data type specification `F_τ`.
///
/// Given an operation `o ∈ Op_τ` and the abstract state `I` visible to it,
/// `F_τ(o, I)` is the return value the operation *must* produce. The
/// specification is evaluated on the branch's abstract state as it was
/// **before** the operation ran (Table 2, `Φ_spec`).
///
/// Specifications are deliberately far removed from implementations — the
/// OR-set specification, for instance, quantifies over `add`/`remove` events
/// and visibility, while the implementation juggles timestamp-tagged lists.
/// Bridging that gap is the job of the
/// [`SimulationRelation`](crate::SimulationRelation).
///
/// Implementors are usually zero-sized marker types, one per data type,
/// which keeps alternative specifications for the same implementation
/// possible (the paper's OR-set and OR-set-space share one specification).
///
/// # Example
///
/// ```
/// use peepul_core::{AbstractOf, Mrdt, Specification, Timestamp};
///
/// # #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
/// # struct Ctr(u64);
/// # #[derive(Clone, Copy, Debug, PartialEq, Eq)]
/// # enum CtrOp { Inc, Read }
/// # impl Mrdt for Ctr {
/// #     type Op = CtrOp;
/// #     type Value = u64;
/// #     fn initial() -> Self { Ctr(0) }
/// #     fn apply(&self, op: &CtrOp, _t: Timestamp) -> (Self, u64) {
/// #         match op { CtrOp::Inc => (Ctr(self.0 + 1), 0), CtrOp::Read => (*self, self.0) }
/// #     }
/// #     fn merge(l: &Self, a: &Self, b: &Self) -> Self { Ctr(a.0 + b.0 - l.0) }
/// # }
/// struct CtrSpec;
///
/// impl Specification<Ctr> for CtrSpec {
///     fn spec(op: &CtrOp, state: &AbstractOf<Ctr>) -> u64 {
///         match op {
///             // A read returns the number of visible increments.
///             CtrOp::Read => state
///                 .events()
///                 .filter(|e| matches!(e.op(), CtrOp::Inc))
///                 .count() as u64,
///             CtrOp::Inc => 0,
///         }
///     }
/// }
/// ```
pub trait Specification<M: Mrdt> {
    /// The specified return value of `op` when executed against abstract
    /// state `state`.
    fn spec(op: &M::Op, state: &AbstractOf<M>) -> M::Value;
}

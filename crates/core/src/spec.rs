//! Declarative replicated data type specifications (Definition 2.3).

use crate::{AbstractOf, Mrdt};

/// A replicated data type specification `F_τ`.
///
/// The specification answers two questions about an abstract state `I`
/// (the events visible to an observer, Definition 2.2):
///
/// * [`Specification::spec`] — given an **update** `o ∈ Op_τ` and the
///   abstract state visible to it, the return value the update *must*
///   produce. Evaluated on the branch's abstract state as it was
///   **before** the operation ran (Table 2, `Φ_spec`).
/// * [`Specification::query`] — given a **query** `q ∈ Query_τ` and an
///   abstract state, the answer the query *must* produce on any concrete
///   state related to `I`. Because queries are pure, the harness can check
///   this at *every* reachable state, not only when a schedule happens to
///   contain a read.
///
/// Specifications are deliberately far removed from implementations — the
/// OR-set specification, for instance, quantifies over `add`/`remove` events
/// and visibility, while the implementation juggles timestamp-tagged lists.
/// Bridging that gap is the job of the
/// [`SimulationRelation`](crate::SimulationRelation).
///
/// Implementors are usually zero-sized marker types, one per data type,
/// which keeps alternative specifications for the same implementation
/// possible (the paper's OR-set and OR-set-space share one specification).
///
/// # Example
///
/// ```
/// use peepul_core::{AbstractOf, Mrdt, Specification, Timestamp};
///
/// # #[derive(Clone, Copy, PartialEq, Eq, Debug)]
/// # struct Ctr(u64);
/// # impl peepul_core::Wire for Ctr {
/// #     fn encode(&self, out: &mut Vec<u8>) { self.0.encode(out) }
/// #     fn decode(input: &mut &[u8]) -> Option<Self> {
/// #         Some(Ctr(peepul_core::Wire::decode(input)?))
/// #     }
/// # }
/// # #[derive(Clone, Copy, Debug, PartialEq, Eq)]
/// # enum CtrOp { Inc }
/// # #[derive(Clone, Copy, Debug, PartialEq, Eq)]
/// # enum CtrQuery { Read }
/// # impl Mrdt for Ctr {
/// #     type Op = CtrOp;
/// #     type Value = ();
/// #     type Query = CtrQuery;
/// #     type Output = u64;
/// #     fn initial() -> Self { Ctr(0) }
/// #     fn apply(&self, _op: &CtrOp, _t: Timestamp) -> (Self, ()) { (Ctr(self.0 + 1), ()) }
/// #     fn query(&self, _q: &CtrQuery) -> u64 { self.0 }
/// #     fn merge(l: &Self, a: &Self, b: &Self) -> Self { Ctr(a.0 + b.0 - l.0) }
/// # }
/// struct CtrSpec;
///
/// impl Specification<Ctr> for CtrSpec {
///     fn spec(_op: &CtrOp, _state: &AbstractOf<Ctr>) {}
///
///     fn query(q: &CtrQuery, state: &AbstractOf<Ctr>) -> u64 {
///         // A read returns the number of visible increments.
///         match q {
///             CtrQuery::Read => state.events().count() as u64,
///         }
///     }
/// }
/// ```
pub trait Specification<M: Mrdt> {
    /// The specified return value of update `op` when executed against
    /// abstract state `state`.
    fn spec(op: &M::Op, state: &AbstractOf<M>) -> M::Value;

    /// The specified answer of query `q` against abstract state `state`.
    fn query(q: &M::Query, state: &AbstractOf<M>) -> M::Output;
}

//! Replication-aware simulation relations (paper §4.1).

use crate::{AbstractOf, Mrdt};

/// A replication-aware simulation relation `R_sim ⊆ I_τ × Σ`.
///
/// `R_sim` relates the abstract state of a branch (the events it has
/// observed, with visibility) to the concrete state of the MRDT
/// implementation at that branch. Proving an implementation correct amounts
/// to showing that a *valid* `R_sim` exists — one that is inductively
/// preserved by `do`/`do#` (obligation `Φ_do`, Fig. 4) and by
/// `merge`/`merge#` (obligation `Φ_merge`, Fig. 5), implies the declarative
/// specification (`Φ_spec`), and forces observational convergence (`Φ_con`).
/// That is Theorem 4.2; the `peepul-verify` crate checks all four
/// obligations executably.
///
/// In most cases the relation transcribes the specification: e.g. the OR-set
/// relation says *"(a, t) is in the concrete list iff some `add(a)` event
/// with timestamp `t` is unseen by any `remove(a)` event"*.
pub trait SimulationRelation<M: Mrdt> {
    /// Does the relation hold between this abstract and concrete state?
    fn holds(abs: &AbstractOf<M>, conc: &M) -> bool;

    /// Human-readable explanation of the *first* reason the relation fails,
    /// or `None` when it holds.
    ///
    /// Used by the certification harness to produce actionable
    /// counterexample reports; the default reports nothing beyond the
    /// boolean verdict.
    fn explain_failure(abs: &AbstractOf<M>, conc: &M) -> Option<String> {
        if Self::holds(abs, conc) {
            None
        } else {
            Some("simulation relation violated (no detailed explanation available)".to_owned())
        }
    }
}

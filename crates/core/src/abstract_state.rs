//! Abstract executions and the abstract operators `do#`, `merge#`, `lca#`.
//!
//! An [`AbstractState`] is the paper's `I = ⟨E, oper, rval, time, vis⟩`
//! (Definition 2.2): the set of events a branch has observed together with
//! an irreflexive, asymmetric, transitive *visibility* relation. The store
//! semantics (Fig. 3) maintains one abstract state per branch alongside the
//! concrete MRDT state; specifications are evaluated against the abstract
//! state, and simulation relations connect the two.

use crate::event::{Event, EventId};
use crate::Timestamp;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An abstract execution state for a data type with operations `O` and
/// return values `V`.
///
/// Visibility is stored as each event's *causal past*: `vis(e, f)` holds iff
/// `e` is in `past(f)`. Events are created by [`AbstractState::perform`]
/// (`do#`), which makes the new event causally after everything currently in
/// the state; [`AbstractState::merged`] (`merge#`) unions two states; and
/// [`AbstractState::lca`] (`lca#`) intersects them.
///
/// Two abstract states compare equal iff they contain the same events with
/// the same attributes and visibility — the paper's `δ(b1) = δ(b2)` used in
/// the convergence definition (Definition 3.5).
///
/// # Example
///
/// ```
/// use peepul_core::{AbstractState, ReplicaId, Timestamp};
///
/// let t1 = Timestamp::new(1, ReplicaId::new(0));
/// let t2 = Timestamp::new(2, ReplicaId::new(1));
///
/// let i0: AbstractState<&str, ()> = AbstractState::new();
/// let ia = i0.perform("add(1)", (), t1);
/// let ib = i0.perform("add(2)", (), t2);
///
/// let merged = ia.merged(&ib);
/// assert_eq!(merged.len(), 2);
/// // The two adds were concurrent: neither is visible to the other.
/// assert!(!merged.vis(t1, t2) && !merged.vis(t2, t1));
/// assert_eq!(merged.lca(&ia).len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct AbstractState<O, V> {
    events: BTreeMap<EventId, Event<O, V>>,
    past: BTreeMap<EventId, BTreeSet<EventId>>,
}

impl<O, V> AbstractState<O, V> {
    /// The empty abstract state `I0` (no events).
    pub fn new() -> Self {
        AbstractState {
            events: BTreeMap::new(),
            past: BTreeMap::new(),
        }
    }

    /// Number of events `|E|`.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the execution contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether event `id` is part of this execution.
    pub fn contains(&self, id: EventId) -> bool {
        self.events.contains_key(&id)
    }

    /// The event with identity `id`, if present.
    pub fn event(&self, id: EventId) -> Option<&Event<O, V>> {
        self.events.get(&id)
    }

    /// Iterates over all events in timestamp order.
    pub fn events(&self) -> impl Iterator<Item = &Event<O, V>> {
        self.events.values()
    }

    /// Iterates over all event identities in timestamp order.
    pub fn ids(&self) -> impl Iterator<Item = EventId> + '_ {
        self.events.keys().copied()
    }

    /// The visibility relation: does `e` causally precede `f`
    /// (`e --vis--> f`)?
    ///
    /// Returns `false` when either event is absent.
    pub fn vis(&self, e: EventId, f: EventId) -> bool {
        self.past.get(&f).is_some_and(|p| p.contains(&e))
    }

    /// The causal past of `f`: every event `e` with `e --vis--> f`.
    ///
    /// Returns an empty set for unknown events.
    pub fn past(&self, f: EventId) -> BTreeSet<EventId> {
        self.past.get(&f).cloned().unwrap_or_default()
    }

    /// Events of `self` that are *not* visible to any later event — the
    /// causal frontier. Useful for diagnostics.
    pub fn frontier(&self) -> BTreeSet<EventId> {
        let mut seen: BTreeSet<EventId> = BTreeSet::new();
        for p in self.past.values() {
            seen.extend(p.iter().copied());
        }
        self.events
            .keys()
            .copied()
            .filter(|id| !seen.contains(id))
            .collect()
    }
}

impl<O: Clone, V: Clone> AbstractState<O, V> {
    /// The abstract operator `do#` (§3): extends the execution with a new
    /// event that observes everything currently in it.
    ///
    /// ```text
    /// do#⟨I, e, op, a, t⟩ = ⟨I.E ∪ {e}, …, I.vis ∪ {(f, e) | f ∈ I.E}⟩
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if an event with timestamp `t` already exists — the store
    /// guarantees unique timestamps (Ψ_ts), so a collision is a harness bug.
    #[must_use]
    pub fn perform(&self, op: O, rval: V, t: Timestamp) -> Self {
        assert!(
            !self.events.contains_key(&t),
            "duplicate timestamp {t:?} violates Ψ_ts"
        );
        let mut next = self.clone();
        let past: BTreeSet<EventId> = next.events.keys().copied().collect();
        next.events.insert(t, Event::new(op, rval, t));
        next.past.insert(t, past);
        next
    }

    /// Rebuilds an abstract execution from an explicitly recorded witness:
    /// one `(op, rval, timestamp, past)` tuple per event, with visibility
    /// given **per event** instead of `perform`'s
    /// everything-currently-present rule.
    ///
    /// This is the constructor the replication-aware linearizability
    /// checker (`Φ_ra`) uses to replay a fleet history through a
    /// specification: a replica's operation observed exactly the events in
    /// its branch's ancestry at the time, not everything the global
    /// history would eventually contain. Each event's recorded past is
    /// restricted to the events actually present in the witness — the
    /// same projection semantics as [`AbstractState::filter_map`] — so a
    /// caller can rebuild the visible sub-execution at any observation
    /// point by passing only the visible events.
    ///
    /// # Panics
    ///
    /// Panics if two events carry the same timestamp — as with
    /// [`AbstractState::perform`], a collision is a Ψ_ts violation the
    /// caller must surface as such before reconstructing.
    pub fn from_witness(
        witness: impl IntoIterator<Item = (O, V, Timestamp, BTreeSet<EventId>)>,
    ) -> Self {
        let mut events = BTreeMap::new();
        let mut past = BTreeMap::new();
        for (op, rval, t, p) in witness {
            let replaced = events.insert(t, Event::new(op, rval, t));
            assert!(
                replaced.is_none(),
                "duplicate timestamp {t:?} violates Ψ_ts"
            );
            past.insert(t, p);
        }
        let keep: BTreeSet<EventId> = events.keys().copied().collect();
        for p in past.values_mut() {
            p.retain(|e| keep.contains(e));
        }
        AbstractState { events, past }
    }

    /// The abstract operator `merge#` (§3): the union of two executions.
    ///
    /// Events present in both carry identical attributes and pasts (they are
    /// the *same* event propagated along different branches), so the union
    /// is unambiguous.
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        let mut events = self.events.clone();
        let mut past = self.past.clone();
        for (id, ev) in &other.events {
            events.entry(*id).or_insert_with(|| ev.clone());
        }
        for (id, p) in &other.past {
            past.entry(*id).or_insert_with(|| p.clone());
        }
        AbstractState { events, past }
    }

    /// Projects this execution onto a sub-execution, keeping (and
    /// translating) exactly the events for which `f` returns `Some`.
    ///
    /// Visibility is restricted to the surviving events and timestamps are
    /// preserved. This is the `project` function of §5.4, used to reduce an
    /// `α-map` execution to the execution of the MRDT stored under one key
    /// so that the nested data type's specification and simulation relation
    /// can be reused verbatim.
    #[must_use]
    pub fn filter_map<O2: Clone, V2: Clone>(
        &self,
        mut f: impl FnMut(&Event<O, V>) -> Option<(O2, V2)>,
    ) -> AbstractState<O2, V2> {
        let mut events = BTreeMap::new();
        for (id, ev) in &self.events {
            if let Some((o2, v2)) = f(ev) {
                events.insert(*id, Event::new(o2, v2, ev.time()));
            }
        }
        let keep: BTreeSet<EventId> = events.keys().copied().collect();
        let past = self
            .past
            .iter()
            .filter(|(id, _)| keep.contains(id))
            .map(|(id, p)| (*id, p.intersection(&keep).copied().collect()))
            .collect();
        AbstractState { events, past }
    }

    /// The abstract operator `lca#` (§3): the intersection of two
    /// executions, with visibility restricted to the surviving events.
    ///
    /// By construction the causal past of a shared event is itself shared,
    /// so the restriction `vis|E_l` never actually removes an edge; it is
    /// applied anyway to mirror the definition exactly.
    #[must_use]
    pub fn lca(&self, other: &Self) -> Self {
        let common: BTreeSet<EventId> = self
            .events
            .keys()
            .filter(|id| other.events.contains_key(id))
            .copied()
            .collect();
        let events = self
            .events
            .iter()
            .filter(|(id, _)| common.contains(id))
            .map(|(id, ev)| (*id, ev.clone()))
            .collect();
        let past = self
            .past
            .iter()
            .filter(|(id, _)| common.contains(id))
            .map(|(id, p)| (*id, p.intersection(&common).copied().collect()))
            .collect();
        AbstractState { events, past }
    }
}

impl<O, V> Default for AbstractState<O, V> {
    fn default() -> Self {
        AbstractState::new()
    }
}

impl<O: fmt::Debug, V: fmt::Debug> fmt::Debug for AbstractState<O, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbstractState")
            .field("events", &self.events.values().collect::<Vec<_>>())
            .field(
                "vis",
                &self
                    .past
                    .iter()
                    .flat_map(|(to, from)| from.iter().map(move |f| (*f, *to)))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplicaId;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    fn chain() -> AbstractState<&'static str, ()> {
        AbstractState::new()
            .perform("a", (), ts(1, 0))
            .perform("b", (), ts(2, 0))
            .perform("c", (), ts(3, 0))
    }

    #[test]
    fn perform_makes_new_event_observe_everything() {
        let i = chain();
        assert_eq!(i.len(), 3);
        assert!(i.vis(ts(1, 0), ts(2, 0)));
        assert!(i.vis(ts(1, 0), ts(3, 0)));
        assert!(i.vis(ts(2, 0), ts(3, 0)));
        assert!(!i.vis(ts(3, 0), ts(1, 0)));
    }

    #[test]
    fn visibility_is_irreflexive() {
        let i = chain();
        for id in i.ids().collect::<Vec<_>>() {
            assert!(!i.vis(id, id));
        }
    }

    #[test]
    #[should_panic(expected = "Ψ_ts")]
    fn duplicate_timestamp_panics() {
        let i: AbstractState<&str, ()> = AbstractState::new();
        let _ = i.perform("a", (), ts(1, 0)).perform("b", (), ts(1, 0));
    }

    #[test]
    fn merge_unions_and_keeps_concurrency() {
        let base: AbstractState<&str, ()> = AbstractState::new().perform("root", (), ts(1, 0));
        let a = base.perform("a", (), ts(2, 1));
        let b = base.perform("b", (), ts(3, 2));
        let m = a.merged(&b);
        assert_eq!(m.len(), 3);
        assert!(m.vis(ts(1, 0), ts(2, 1)));
        assert!(m.vis(ts(1, 0), ts(3, 2)));
        assert!(!m.vis(ts(2, 1), ts(3, 2)));
        assert!(!m.vis(ts(3, 2), ts(2, 1)));
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let base: AbstractState<&str, ()> = AbstractState::new().perform("root", (), ts(1, 0));
        let a = base.perform("a", (), ts(2, 1));
        let b = base.perform("b", (), ts(3, 2));
        assert_eq!(a.merged(&b), b.merged(&a));
        assert_eq!(a.merged(&a), a);
    }

    #[test]
    fn lca_is_the_intersection() {
        let base: AbstractState<&str, ()> = AbstractState::new().perform("root", (), ts(1, 0));
        let a = base.perform("a", (), ts(2, 1));
        let b = base.perform("b", (), ts(3, 2));
        let l = a.lca(&b);
        assert_eq!(l.len(), 1);
        assert!(l.contains(ts(1, 0)));
        assert_eq!(l, base);
    }

    #[test]
    fn lca_after_merge_contains_shared_history() {
        let base: AbstractState<&str, ()> = AbstractState::new().perform("root", (), ts(1, 0));
        let a = base.perform("a", (), ts(2, 1));
        let b = base.perform("b", (), ts(3, 2));
        let a_merged = a.merged(&b); // branch a pulled from b
        let l = a_merged.lca(&b);
        assert_eq!(l, b);
    }

    #[test]
    fn frontier_reports_maximal_events() {
        let base: AbstractState<&str, ()> = AbstractState::new().perform("root", (), ts(1, 0));
        let a = base.perform("a", (), ts(2, 1));
        let b = base.perform("b", (), ts(3, 2));
        let m = a.merged(&b);
        let f = m.frontier();
        assert_eq!(f.len(), 2);
        assert!(f.contains(&ts(2, 1)) && f.contains(&ts(3, 2)));
    }

    #[test]
    fn from_witness_respects_recorded_pasts() {
        // b records only a in its past even though c exists — unlike
        // perform, which would make b observe everything present.
        let i: AbstractState<&str, ()> = AbstractState::from_witness([
            ("a", (), ts(1, 0), BTreeSet::new()),
            ("b", (), ts(2, 0), BTreeSet::from([ts(1, 0)])),
            ("c", (), ts(3, 1), BTreeSet::new()),
        ]);
        assert_eq!(i.len(), 3);
        assert!(i.vis(ts(1, 0), ts(2, 0)));
        assert!(!i.vis(ts(3, 1), ts(2, 0)));
        assert!(!i.vis(ts(1, 0), ts(3, 1)));
    }

    #[test]
    fn from_witness_projects_pasts_onto_present_events() {
        // The recorded past references an event outside the witness (the
        // projection case: rebuilding a visible sub-execution).
        let i: AbstractState<&str, ()> =
            AbstractState::from_witness([("b", (), ts(2, 0), BTreeSet::from([ts(1, 0)]))]);
        assert_eq!(i.len(), 1);
        assert!(i.past(ts(2, 0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "Ψ_ts")]
    fn from_witness_panics_on_duplicate_timestamp() {
        let _: AbstractState<&str, ()> = AbstractState::from_witness([
            ("a", (), ts(1, 0), BTreeSet::new()),
            ("b", (), ts(1, 0), BTreeSet::new()),
        ]);
    }

    #[test]
    fn event_lookup_and_iteration_are_consistent() {
        let i = chain();
        let ids: Vec<_> = i.ids().collect();
        assert_eq!(ids.len(), 3);
        for id in ids {
            assert!(i.contains(id));
            assert_eq!(i.event(id).unwrap().time(), id);
        }
        assert!(i.event(ts(99, 0)).is_none());
    }
}

//! Merge memoization: caching three-way merges by content address.
//!
//! An MRDT merge is a pure function of `(σ_lca, σ_a, σ_b)`, so its result
//! is determined by the three states' content addresses. Recursive
//! virtual merges on criss-cross DAGs (Git's `merge-recursive` strategy,
//! which [`BranchStore`](crate::BranchStore) implements) repeatedly
//! re-derive the *same* base triples — every further merge between two
//! criss-crossing branches recomputes the virtual ancestors of the round
//! before. Caching by `(lca, left, right)` [`ObjectId`] triple turns
//! those recomputations — each O(state size) — into map lookups, and the
//! returned `Arc` shares the merged state's allocation with every commit
//! that reuses it.
//!
//! The cache is *not* symmetric in `(left, right)`: merges are only
//! guaranteed commutative modulo observational equivalence (Definition
//! 3.4), not byte-identical, and the cache must never change which exact
//! state a schedule produces (the backend-equivalence property test
//! replays schedules with the cache on and off and demands identical
//! content addresses).

use crate::object::ObjectId;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Default bound on cached triples. Workloads that never repeat a triple
/// (e.g. a long two-branch gossip chain) would otherwise grow the cache —
/// and the `Arc`-pinned merged states behind it — linearly with history.
pub const DEFAULT_MEMO_CAPACITY: usize = 1024;

/// Hit/miss counters of a [`MergeMemo`], exposed for the bench pipeline
/// (`BENCH_store.json` reports the hit rate on the criss-cross workload).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MergeCacheStats {
    /// Merges answered from the cache.
    pub hits: u64,
    /// Merges that had to run the data type's `merge`.
    pub misses: u64,
}

impl MergeCacheStats {
    /// `hits / (hits + misses)`, or 0 when no merges ran.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A content-addressed cache of three-way merge results, bounded to
/// `capacity` triples with FIFO eviction (criss-cross re-derivations are
/// temporally clustered, so recency-ignorant eviction loses little).
pub struct MergeMemo<M> {
    cache: HashMap<(ObjectId, ObjectId, ObjectId), Arc<M>>,
    /// Insertion order, for FIFO eviction once `capacity` is reached.
    order: VecDeque<(ObjectId, ObjectId, ObjectId)>,
    capacity: usize,
    stats: MergeCacheStats,
    enabled: bool,
}

impl<M> MergeMemo<M> {
    /// Creates an enabled, empty cache with [`DEFAULT_MEMO_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MEMO_CAPACITY)
    }

    /// Creates an enabled, empty cache bounded to `capacity` triples
    /// (`0` disables caching outright).
    pub fn with_capacity(capacity: usize) -> Self {
        MergeMemo {
            cache: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            stats: MergeCacheStats::default(),
            enabled: true,
        }
    }

    /// Enables or disables the cache; disabling clears it (and the
    /// subsequent merges count as misses).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.cache.clear();
            self.order.clear();
        }
    }

    /// Whether the cache is consulted at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The merged state for `(lca, left, right)`, computing and caching it
    /// via `merge` on a miss.
    pub fn merged(
        &mut self,
        key: (ObjectId, ObjectId, ObjectId),
        merge: impl FnOnce() -> M,
    ) -> Arc<M> {
        if self.enabled {
            if let Some(hit) = self.cache.get(&key) {
                self.stats.hits += 1;
                return Arc::clone(hit);
            }
        }
        self.stats.misses += 1;
        let computed = Arc::new(merge());
        if self.enabled && self.capacity > 0 {
            while self.cache.len() >= self.capacity {
                let oldest = self.order.pop_front().expect("order tracks cache");
                self.cache.remove(&oldest);
            }
            if self.cache.insert(key, Arc::clone(&computed)).is_none() {
                self.order.push_back(key);
            }
        }
        computed
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> MergeCacheStats {
        self.stats
    }

    /// Number of distinct cached triples.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

impl<M> Default for MergeMemo<M> {
    fn default() -> Self {
        MergeMemo::new()
    }
}

impl<M> fmt::Debug for MergeMemo<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MergeMemo({} entries, {} hits, {} misses)",
            self.cache.len(),
            self.stats.hits,
            self.stats.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::content_id;

    #[test]
    fn second_identical_merge_is_a_hit() {
        let mut memo: MergeMemo<u64> = MergeMemo::new();
        let key = (content_id(&0u8), content_id(&1u8), content_id(&2u8));
        let a = memo.merged(key, || 42);
        let b = memo.merged(key, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(memo.stats(), MergeCacheStats { hits: 1, misses: 1 });
        assert!((memo.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_order_matters() {
        let mut memo: MergeMemo<u64> = MergeMemo::new();
        let (l, a, b) = (content_id(&0u8), content_id(&1u8), content_id(&2u8));
        memo.merged((l, a, b), || 1);
        memo.merged((l, b, a), || 2);
        assert_eq!(memo.stats().hits, 0);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn disabling_clears_and_bypasses() {
        let mut memo: MergeMemo<u64> = MergeMemo::new();
        let key = (content_id(&0u8), content_id(&1u8), content_id(&2u8));
        memo.merged(key, || 1);
        memo.set_enabled(false);
        assert!(memo.is_empty());
        memo.merged(key, || 2);
        memo.merged(key, || 3);
        assert_eq!(memo.stats().hits, 0);
        assert_eq!(memo.stats().misses, 3);
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        let memo: MergeMemo<u64> = MergeMemo::new();
        assert_eq!(memo.stats().hit_rate(), 0.0);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let mut memo: MergeMemo<u64> = MergeMemo::with_capacity(2);
        let key = |i: u8| (content_id(&i), content_id(&i), content_id(&i));
        memo.merged(key(0), || 0);
        memo.merged(key(1), || 1);
        memo.merged(key(2), || 2); // cache {1, 2}: key(0) evicted (oldest)
        assert_eq!(memo.len(), 2);
        memo.merged(key(0), || 0); // miss — evicted; refilling drops key(1)
        assert_eq!(memo.stats().hits, 0);
        memo.merged(key(2), || panic!("must still be cached"));
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut memo: MergeMemo<u64> = MergeMemo::with_capacity(0);
        let key = (content_id(&0u8), content_id(&1u8), content_id(&2u8));
        memo.merged(key, || 1);
        memo.merged(key, || 2);
        assert_eq!(memo.stats().hits, 0);
        assert!(memo.is_empty());
    }
}

//! Merge memoization: caching three-way merges by content address.
//!
//! An MRDT merge is a pure function of `(σ_lca, σ_a, σ_b)`, so its result
//! is determined by the three states' content addresses. Recursive
//! virtual merges on criss-cross DAGs (Git's `merge-recursive` strategy,
//! which [`BranchStore`](crate::BranchStore) implements) repeatedly
//! re-derive the *same* base triples — every further merge between two
//! criss-crossing branches recomputes the virtual ancestors of the round
//! before. Caching by `(lca, left, right)` [`ObjectId`] triple turns
//! those recomputations — each O(state size) — into map lookups, and the
//! returned `Arc` shares the merged state's allocation with every commit
//! that reuses it.
//!
//! The cache is **interior-mutable** (a mutex around the map): memoized
//! merges are a pure-function cache, so warming or probing it is logically
//! a read. This is what lets `BranchStore::lca_state` and the commit-free
//! query path run against `&BranchStore` while still sharing cache hits
//! with real merges.
//!
//! The cache is *not* symmetric in `(left, right)`: merges are only
//! guaranteed commutative modulo observational equivalence (Definition
//! 3.4), not byte-identical, and the cache must never change which exact
//! state a schedule produces (the backend-equivalence property test
//! replays schedules with the cache on and off and demands identical
//! content addresses).

use crate::object::ObjectId;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Default bound on cached triples. Workloads that never repeat a triple
/// (e.g. a long two-branch gossip chain) would otherwise grow the cache —
/// and the `Arc`-pinned merged states behind it — linearly with history.
pub const DEFAULT_MEMO_CAPACITY: usize = 1024;

/// Hit/miss counters of a [`MergeMemo`], exposed for the bench pipeline
/// (`BENCH_store.json` reports the hit rate on the criss-cross workload).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MergeCacheStats {
    /// Merges answered from the cache.
    pub hits: u64,
    /// Merges that had to run the data type's `merge`.
    pub misses: u64,
}

impl MergeCacheStats {
    /// `hits / (hits + misses)`, or 0 when no merges ran.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type MemoKey = (ObjectId, ObjectId, ObjectId);

/// One cached merge result. The result's own content address is cached
/// lazily alongside it (`None` until some caller needed it): the
/// recursive virtual-LCA path keys further merges by it, and recomputing
/// a SHA-256 over the whole state on every cache *hit* would claw back
/// much of what the cache saves.
struct MemoEntry<M> {
    state: Arc<M>,
    id: Option<ObjectId>,
}

struct MemoInner<M> {
    cache: HashMap<MemoKey, MemoEntry<M>>,
    /// Insertion order, for FIFO eviction once `capacity` is reached.
    order: VecDeque<MemoKey>,
    capacity: usize,
    stats: MergeCacheStats,
    enabled: bool,
}

/// A content-addressed cache of three-way merge results, bounded to
/// `capacity` triples with FIFO eviction (criss-cross re-derivations are
/// temporally clustered, so recency-ignorant eviction loses little).
pub struct MergeMemo<M> {
    inner: Mutex<MemoInner<M>>,
}

impl<M> MergeMemo<M> {
    /// Creates an enabled, empty cache with [`DEFAULT_MEMO_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MEMO_CAPACITY)
    }

    /// Creates an enabled, empty cache bounded to `capacity` triples
    /// (`0` disables caching outright).
    pub fn with_capacity(capacity: usize) -> Self {
        MergeMemo {
            inner: Mutex::new(MemoInner {
                cache: HashMap::new(),
                order: VecDeque::new(),
                capacity,
                stats: MergeCacheStats::default(),
                enabled: true,
            }),
        }
    }

    /// Enables or disables the cache; disabling clears it (and the
    /// subsequent merges count as misses).
    pub fn set_enabled(&self, enabled: bool) {
        let mut inner = self.inner.lock();
        inner.enabled = enabled;
        if !enabled {
            inner.cache.clear();
            inner.order.clear();
        }
    }

    /// Whether the cache is consulted at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// The merged state for `(lca, left, right)`, computing and caching it
    /// via `merge` on a miss.
    ///
    /// The lock is **not** held while `merge` runs, so `merge` may
    /// recursively consult the same memo (recursive virtual merges do).
    /// Two racing misses on the same key both compute; the later insert
    /// overwrites the earlier one's `Arc` (the eviction queue records the
    /// key only once), and the two values are identical by purity, so
    /// which allocation survives is unobservable.
    pub fn merged(&self, key: MemoKey, merge: impl FnOnce() -> M) -> Arc<M> {
        {
            let mut inner = self.inner.lock();
            if inner.enabled {
                if let Some(hit) = inner.cache.get(&key) {
                    let hit = Arc::clone(&hit.state);
                    inner.stats.hits += 1;
                    return hit;
                }
            }
            inner.stats.misses += 1;
        }
        let computed = Arc::new(merge());
        self.insert(key, &computed, None);
        computed
    }

    /// Like [`MergeMemo::merged`], additionally returning the merged
    /// state's content address — cached with the entry, so a hit costs no
    /// re-hash of the state. The recursive virtual-LCA path uses this to
    /// key sub-merges without paying O(state) SHA-256 per level per hit.
    pub fn merged_with_id(&self, key: MemoKey, merge: impl FnOnce() -> M) -> (Arc<M>, ObjectId)
    where
        M: peepul_core::Wire,
    {
        {
            let mut inner = self.inner.lock();
            if inner.enabled {
                if let Some(hit) = inner.cache.get(&key) {
                    let state = Arc::clone(&hit.state);
                    let cached_id = hit.id;
                    inner.stats.hits += 1;
                    drop(inner);
                    // Backfill the id if an earlier `merged` call cached
                    // the entry without one.
                    let id = cached_id.unwrap_or_else(|| {
                        let id = crate::object::content_id(state.as_ref());
                        if let Some(entry) = self.inner.lock().cache.get_mut(&key) {
                            entry.id = Some(id);
                        }
                        id
                    });
                    return (state, id);
                }
            }
            inner.stats.misses += 1;
        }
        let computed = Arc::new(merge());
        let id = crate::object::content_id(computed.as_ref());
        self.insert(key, &computed, Some(id));
        (computed, id)
    }

    fn insert(&self, key: MemoKey, state: &Arc<M>, id: Option<ObjectId>) {
        let mut inner = self.inner.lock();
        if inner.enabled && inner.capacity > 0 {
            while inner.cache.len() >= inner.capacity {
                let oldest = inner.order.pop_front().expect("order tracks cache");
                inner.cache.remove(&oldest);
            }
            let entry = MemoEntry {
                state: Arc::clone(state),
                id,
            };
            if inner.cache.insert(key, entry).is_none() {
                inner.order.push_back(key);
            }
        }
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> MergeCacheStats {
        self.inner.lock().stats
    }

    /// Number of distinct cached triples.
    pub fn len(&self) -> usize {
        self.inner.lock().cache.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().cache.is_empty()
    }
}

impl<M> Default for MergeMemo<M> {
    fn default() -> Self {
        MergeMemo::new()
    }
}

impl<M> fmt::Debug for MergeMemo<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        write!(
            f,
            "MergeMemo({} entries, {} hits, {} misses)",
            inner.cache.len(),
            inner.stats.hits,
            inner.stats.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::content_id;

    #[test]
    fn second_identical_merge_is_a_hit() {
        let memo: MergeMemo<u64> = MergeMemo::new();
        let key = (content_id(&0u8), content_id(&1u8), content_id(&2u8));
        let a = memo.merged(key, || 42);
        let b = memo.merged(key, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(memo.stats(), MergeCacheStats { hits: 1, misses: 1 });
        assert!((memo.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_order_matters() {
        let memo: MergeMemo<u64> = MergeMemo::new();
        let (l, a, b) = (content_id(&0u8), content_id(&1u8), content_id(&2u8));
        memo.merged((l, a, b), || 1);
        memo.merged((l, b, a), || 2);
        assert_eq!(memo.stats().hits, 0);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn disabling_clears_and_bypasses() {
        let memo: MergeMemo<u64> = MergeMemo::new();
        let key = (content_id(&0u8), content_id(&1u8), content_id(&2u8));
        memo.merged(key, || 1);
        memo.set_enabled(false);
        assert!(memo.is_empty());
        memo.merged(key, || 2);
        memo.merged(key, || 3);
        assert_eq!(memo.stats().hits, 0);
        assert_eq!(memo.stats().misses, 3);
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        let memo: MergeMemo<u64> = MergeMemo::new();
        assert_eq!(memo.stats().hit_rate(), 0.0);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let memo: MergeMemo<u64> = MergeMemo::with_capacity(2);
        let key = |i: u8| (content_id(&i), content_id(&i), content_id(&i));
        memo.merged(key(0), || 0);
        memo.merged(key(1), || 1);
        memo.merged(key(2), || 2); // cache {1, 2}: key(0) evicted (oldest)
        assert_eq!(memo.len(), 2);
        memo.merged(key(0), || 0); // miss — evicted; refilling drops key(1)
        assert_eq!(memo.stats().hits, 0);
        memo.merged(key(2), || panic!("must still be cached"));
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let memo: MergeMemo<u64> = MergeMemo::with_capacity(0);
        let key = (content_id(&0u8), content_id(&1u8), content_id(&2u8));
        memo.merged(key, || 1);
        memo.merged(key, || 2);
        assert_eq!(memo.stats().hits, 0);
        assert!(memo.is_empty());
    }

    #[test]
    fn shared_reference_probing_works() {
        // The point of interior mutability: a &MergeMemo can serve and warm
        // the cache.
        let memo: MergeMemo<u64> = MergeMemo::new();
        let r: &MergeMemo<u64> = &memo;
        let key = (content_id(&0u8), content_id(&1u8), content_id(&2u8));
        r.merged(key, || 9);
        r.merged(key, || panic!("hit expected"));
        assert_eq!(r.stats().hits, 1);
    }

    #[test]
    fn recursive_merge_does_not_deadlock() {
        let memo: MergeMemo<u64> = MergeMemo::new();
        let k1 = (content_id(&0u8), content_id(&1u8), content_id(&2u8));
        let k2 = (content_id(&3u8), content_id(&4u8), content_id(&5u8));
        let v = memo.merged(k1, || *memo.merged(k2, || 5) + 1);
        assert_eq!(*v, 6);
        assert_eq!(memo.len(), 2);
    }
}

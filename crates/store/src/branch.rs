//! The user-facing branch store: an Irmin-style versioned database of one
//! MRDT object.
//!
//! Clients fork branches, apply data-type operations to a branch's local
//! version, and merge branches pairwise; the store tracks the commit DAG,
//! mints unique happens-before-consistent timestamps, finds the lowest
//! common ancestor for every merge, and invokes the data type's three-way
//! merge (§2.1 of the paper). Criss-cross histories with several maximal
//! common ancestors are resolved by *recursive virtual merges*, the
//! strategy of Git's `merge-recursive`: merge the merge-bases (recursively)
//! into a virtual ancestor, then use that as the LCA.

use crate::dag::{CommitGraph, CommitId};
use crate::error::StoreError;
use peepul_core::{Mrdt, ReplicaId, Timestamp};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

#[derive(Clone, Debug)]
struct BranchInfo {
    head: CommitId,
    replica: ReplicaId,
}

/// A Git-like store replicating one MRDT object across branches.
///
/// # Example
///
/// ```
/// use peepul_store::BranchStore;
/// use peepul_types::counter::{Counter, CounterOp, CounterValue};
///
/// # fn main() -> Result<(), peepul_store::StoreError> {
/// let mut store: BranchStore<Counter> = BranchStore::new("main");
/// store.apply("main", &CounterOp::Increment)?;
/// store.fork("feature", "main")?;
/// store.apply("feature", &CounterOp::Increment)?;
/// store.apply("main", &CounterOp::Increment)?;
/// store.merge("main", "feature")?;
/// assert_eq!(store.state("main")?.count(), 3);
/// # Ok(())
/// # }
/// ```
pub struct BranchStore<M: Mrdt> {
    graph: CommitGraph<Arc<M>>,
    branches: BTreeMap<String, BranchInfo>,
    /// Global Lamport tick: unique and happens-before consistent because
    /// the store is the sole timestamp authority (Ψ_ts).
    tick: u64,
    next_replica: u32,
}

impl<M: Mrdt> BranchStore<M> {
    /// Creates a store with a single branch holding the initial state.
    pub fn new(root_branch: impl Into<String>) -> Self {
        let mut graph = CommitGraph::new();
        let root = graph.add_root(Arc::new(M::initial()));
        let mut branches = BTreeMap::new();
        branches.insert(
            root_branch.into(),
            BranchInfo {
                head: root,
                replica: ReplicaId::new(0),
            },
        );
        BranchStore {
            graph,
            branches,
            tick: 0,
            next_replica: 1,
        }
    }

    /// The branch names, in order.
    pub fn branch_names(&self) -> Vec<&str> {
        self.branches.keys().map(String::as_str).collect()
    }

    /// Whether `branch` exists.
    pub fn has_branch(&self, branch: &str) -> bool {
        self.branches.contains_key(branch)
    }

    /// The replica id minting timestamps for `branch`.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn replica_of(&self, branch: &str) -> Result<ReplicaId, StoreError> {
        self.info(branch).map(|i| i.replica)
    }

    fn info(&self, branch: &str) -> Result<&BranchInfo, StoreError> {
        self.branches
            .get(branch)
            .ok_or_else(|| StoreError::UnknownBranch(branch.to_owned()))
    }

    /// The head commit of a branch.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn head(&self, branch: &str) -> Result<CommitId, StoreError> {
        self.info(branch).map(|i| i.head)
    }

    /// The current state of a branch (cheap `Arc` clone).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn state(&self, branch: &str) -> Result<Arc<M>, StoreError> {
        Ok(self.graph.payload(self.head(branch)?).clone())
    }

    /// Forks a new branch off an existing one (`CREATEBRANCH` of Fig. 3):
    /// the new branch starts at the same version.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if `from` does not exist;
    /// [`StoreError::BranchExists`] if `new` already does.
    pub fn fork(&mut self, new: impl Into<String>, from: &str) -> Result<(), StoreError> {
        let new = new.into();
        if self.branches.contains_key(&new) {
            return Err(StoreError::BranchExists(new));
        }
        let head = self.head(from)?;
        let replica = ReplicaId::new(self.next_replica);
        self.next_replica += 1;
        self.branches.insert(new, BranchInfo { head, replica });
        Ok(())
    }

    /// Applies a data-type operation at a branch (`DO` of Fig. 3),
    /// committing the successor state and returning the operation's value.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn apply(&mut self, branch: &str, op: &M::Op) -> Result<M::Value, StoreError> {
        let (head, replica) = {
            let info = self.info(branch)?;
            (info.head, info.replica)
        };
        self.tick += 1;
        let t = Timestamp::new(self.tick, replica);
        let (next, value) = self.graph.payload(head).apply(op, t);
        let new_head = self
            .graph
            .add_commit(vec![head], Arc::new(next))
            .expect("head is a valid parent");
        self.branches
            .get_mut(branch)
            .expect("branch checked above")
            .head = new_head;
        Ok(value)
    }

    /// The lowest-common-ancestor *state* of two branches, resolving
    /// multiple merge bases by recursive virtual merging.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] for missing branches;
    /// [`StoreError::NoCommonAncestor`] for unrelated histories (impossible
    /// for branches forked from one root).
    pub fn lca_state(&mut self, b1: &str, b2: &str) -> Result<Arc<M>, StoreError> {
        let (c1, c2) = (self.head(b1)?, self.head(b2)?);
        let lca = self.lca_commit(c1, c2)?;
        Ok(self.graph.payload(lca).clone())
    }

    /// Returns a commit (possibly virtual) whose state is the LCA state of
    /// `c1` and `c2`.
    fn lca_commit(&mut self, c1: CommitId, c2: CommitId) -> Result<CommitId, StoreError> {
        let bases = self.graph.merge_bases(c1, c2);
        let Some((&first, rest)) = bases.split_first() else {
            return Err(StoreError::NoCommonAncestor);
        };
        let mut virt = first;
        for &base in rest {
            // Recursively merge the bases into a virtual ancestor, exactly
            // like git merge-recursive.
            let sub_lca = self.lca_commit(virt, base)?;
            let merged = M::merge(
                self.graph.payload(sub_lca),
                self.graph.payload(virt),
                self.graph.payload(base),
            );
            virt = self
                .graph
                .add_commit(vec![virt, base], Arc::new(merged))
                .expect("bases are valid parents");
        }
        Ok(virt)
    }

    /// Merges branch `from` into branch `into` (`MERGE` of Fig. 3): runs
    /// the data type's three-way merge against the store-computed LCA and
    /// commits the result on `into`. Merging a branch whose history is
    /// already contained in `into` is a no-op.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] for missing branches.
    pub fn merge(&mut self, into: &str, from: &str) -> Result<(), StoreError> {
        let (c_into, c_from) = (self.head(into)?, self.head(from)?);
        if self.graph.is_ancestor(c_from, c_into) {
            return Ok(()); // nothing new to integrate
        }
        let lca = self.lca_commit(c_into, c_from)?;
        let merged = M::merge(
            self.graph.payload(lca),
            self.graph.payload(c_into),
            self.graph.payload(c_from),
        );
        let new_head = self
            .graph
            .add_commit(vec![c_into, c_from], Arc::new(merged))
            .expect("heads are valid parents");
        self.branches
            .get_mut(into)
            .expect("branch checked above")
            .head = new_head;
        Ok(())
    }

    /// The commit history of a branch, newest first.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn history(&self, branch: &str) -> Result<Vec<CommitId>, StoreError> {
        Ok(self.graph.history(self.head(branch)?))
    }

    /// Total number of commits (including virtual LCA commits).
    pub fn commit_count(&self) -> usize {
        self.graph.len()
    }

    /// Direct access to the underlying commit graph (read-only).
    pub fn graph(&self) -> &CommitGraph<Arc<M>> {
        &self.graph
    }
}

impl<M: Mrdt> fmt::Debug for BranchStore<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BranchStore({} branches, {} commits, tick {})",
            self.branches.len(),
            self.graph.len(),
            self.tick
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_types::counter::{Counter, CounterOp};
    use peepul_types::or_set::{OrSet, OrSetOp, OrSetValue};
    use peepul_types::queue::{Queue, QueueOp, QueueValue};

    #[test]
    fn fork_copies_state_and_mints_new_replica() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.apply("main", &CounterOp::Increment).unwrap();
        s.fork("dev", "main").unwrap();
        assert_eq!(s.state("dev").unwrap().count(), 1);
        assert_ne!(s.replica_of("main").unwrap(), s.replica_of("dev").unwrap());
    }

    #[test]
    fn unknown_branch_errors() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        assert_eq!(
            s.apply("nope", &CounterOp::Increment),
            Err(StoreError::UnknownBranch("nope".into()))
        );
        assert!(matches!(
            s.fork("x", "nope"),
            Err(StoreError::UnknownBranch(_))
        ));
        assert!(matches!(
            s.fork("main", "main"),
            Err(StoreError::BranchExists(_))
        ));
    }

    #[test]
    fn divergent_counters_merge_additively() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.fork("dev", "main").unwrap();
        for _ in 0..3 {
            s.apply("main", &CounterOp::Increment).unwrap();
        }
        for _ in 0..2 {
            s.apply("dev", &CounterOp::Increment).unwrap();
        }
        s.merge("main", "dev").unwrap();
        assert_eq!(s.state("main").unwrap().count(), 5);
        // dev hasn't pulled yet.
        assert_eq!(s.state("dev").unwrap().count(), 2);
        s.merge("dev", "main").unwrap();
        assert_eq!(s.state("dev").unwrap().count(), 5);
    }

    #[test]
    fn merge_of_contained_history_is_noop() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.fork("dev", "main").unwrap();
        s.apply("main", &CounterOp::Increment).unwrap();
        let commits_before = s.commit_count();
        // dev is an ancestor of main: nothing to do.
        s.merge("main", "dev").unwrap();
        assert_eq!(s.commit_count(), commits_before);
    }

    #[test]
    fn or_set_add_wins_through_the_store() {
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("main");
        s.apply("main", &OrSetOp::Add(1)).unwrap();
        s.fork("dev", "main").unwrap();
        s.apply("main", &OrSetOp::Remove(1)).unwrap();
        s.apply("dev", &OrSetOp::Add(1)).unwrap();
        s.merge("main", "dev").unwrap();
        let v = s.apply("main", &OrSetOp::Lookup(1)).unwrap();
        assert_eq!(v, OrSetValue::Present(true));
    }

    #[test]
    fn criss_cross_merge_resolves_via_recursive_lca() {
        // Build the criss-cross: both branches add elements, merge into
        // each other (creating two merge commits with swapped parents),
        // diverge again, then merge. merge_bases yields two candidates and
        // the recursive virtual LCA must still produce a correct merge.
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("a");
        s.apply("a", &OrSetOp::Add(0)).unwrap();
        s.fork("b", "a").unwrap();
        s.apply("a", &OrSetOp::Add(1)).unwrap();
        s.apply("b", &OrSetOp::Add(2)).unwrap();
        // Criss-cross: each pulls the other.
        s.merge("a", "b").unwrap();
        s.merge("b", "a").unwrap();
        // Diverge again.
        s.apply("a", &OrSetOp::Add(3)).unwrap();
        s.apply("b", &OrSetOp::Add(4)).unwrap();
        s.merge("a", "b").unwrap();
        let OrSetValue::Elements(elems) = s.apply("a", &OrSetOp::Read).unwrap() else {
            panic!("read returns elements");
        };
        assert_eq!(elems, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn queue_fifo_across_branches() {
        let mut s: BranchStore<Queue<&str>> = BranchStore::new("main");
        s.apply("main", &QueueOp::Enqueue("job-1")).unwrap();
        s.fork("worker", "main").unwrap();
        s.apply("main", &QueueOp::Enqueue("job-2")).unwrap();
        let v = s.apply("worker", &QueueOp::Dequeue).unwrap();
        assert!(matches!(v, QueueValue::Dequeued(Some((_, "job-1")))));
        s.merge("main", "worker").unwrap();
        // job-1 consumed on worker; only job-2 remains on main.
        let v = s.apply("main", &QueueOp::Dequeue).unwrap();
        assert!(matches!(v, QueueValue::Dequeued(Some((_, "job-2")))));
    }

    #[test]
    fn history_grows_with_operations() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.apply("main", &CounterOp::Increment).unwrap();
        s.apply("main", &CounterOp::Increment).unwrap();
        let h = s.history("main").unwrap();
        assert_eq!(h.len(), 3); // root + 2 DO commits
        assert_eq!(
            h.last().copied(),
            s.history("main").unwrap().last().copied()
        );
    }

    #[test]
    fn timestamps_are_unique_across_branches() {
        // Indirectly observable through the OR-set's stored pairs.
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("main");
        s.fork("dev", "main").unwrap();
        s.apply("main", &OrSetOp::Add(1)).unwrap();
        s.apply("dev", &OrSetOp::Add(2)).unwrap();
        s.merge("main", "dev").unwrap();
        let main_state = s.state("main").unwrap();
        assert_eq!(main_state.pair_count(), 2);
    }
}

impl<M: Mrdt> BranchStore<M> {
    /// Renders the commit DAG with branch heads in Graphviz DOT format —
    /// `git log --graph` for this store. Pipe through `dot -Tsvg` to
    /// visualise criss-cross histories and virtual LCA commits.
    pub fn to_dot(&self) -> String {
        let heads: std::collections::BTreeMap<String, crate::dag::CommitId> = self
            .branches
            .iter()
            .map(|(name, info)| (name.clone(), info.head))
            .collect();
        crate::dot::render(&self.graph, |state| format!("{state:?}"), &heads)
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use peepul_types::counter::{Counter, CounterOp};

    #[test]
    fn branch_store_renders_to_dot() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.apply("main", &CounterOp::Increment).unwrap();
        s.fork("dev", "main").unwrap();
        s.apply("dev", &CounterOp::Increment).unwrap();
        s.merge("main", "dev").unwrap();
        let dot = s.to_dot();
        assert!(dot.contains("\"main\""));
        assert!(dot.contains("\"dev\""));
        assert!(dot.contains("Counter"));
    }
}

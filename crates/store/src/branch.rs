//! The user-facing branch store: an Irmin-style versioned database of one
//! MRDT object.
//!
//! Clients address branches through **typed handles** ([`BranchRef`],
//! [`BranchMut`], see [`handle`]): a handle is created from a branch name
//! exactly once — where a typo surfaces immediately as
//! [`StoreError::UnknownBranch`] — and everything else (`apply`, `read`,
//! `fork`, `merge_from`, `history`, transactions) hangs off the handle,
//! infallibly addressed. Updates commit new versions; **queries are
//! commit-free**: [`BranchStore::read`] and [`BranchRef::read`] answer from
//! the branch head against `&self`, minting no commit, no timestamp and no
//! backend write. Batched updates go through [`BranchMut::transaction`],
//! which stages any number of operations against a scratch state and
//! publishes **one** commit and one backend write for the whole batch.
//!
//! The store tracks the commit DAG, mints unique happens-before-consistent
//! timestamps, finds the lowest common ancestor for every merge, and
//! invokes the data type's three-way merge (§2.1 of the paper).
//! Criss-cross histories with several maximal common ancestors are resolved
//! by *recursive virtual merges*, the strategy of Git's `merge-recursive` —
//! computed **without materialising virtual commits**
//! ([`CommitGraph::merge_bases_of`] works on leaf sets), which keeps the
//! whole LCA path `&self`-clean and the commit count equal to the number of
//! real versions.
//!
//! Since the backend refactor the store is generic over its persistence
//! layer: every state and commit it creates is *published* to a pluggable
//! [`Backend`] under its content address, and every branch head is a
//! backend ref — run it over [`MemoryBackend`] (default) or the on-disk
//! [`SegmentBackend`](crate::SegmentBackend) interchangeably. Merges are
//! memoized by `(lca, left, right)` content-address triple
//! ([`MergeMemo`]): recursive virtual merges on criss-cross DAGs re-derive
//! the same triples over and over, and the cache turns those repeated
//! O(state) merges into lookups.

use crate::backend::{Backend, MemoryBackend, SweepStats};
use crate::dag::{CommitGraph, CommitId};
use crate::error::StoreError;
use crate::memo::{MergeCacheStats, MergeMemo};
use crate::metrics::StoreMetrics;
use crate::object::{canonical_bytes, content_id_of_bytes, decode_canonical, ObjectId};
use peepul_core::{Delta, Mrdt, ReplicaId, Timestamp, Wire};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

pub mod handle;

pub use handle::{BranchId, BranchMut, BranchRef, Transaction};

#[derive(Clone, Debug)]
struct BranchInfo {
    head: CommitId,
    replica: ReplicaId,
    /// The interned validated name; handles clone this (cheap `Arc`).
    id: BranchId,
}

/// The decoded metadata of a commit record: everything that determines a
/// commit's content address besides the state bytes themselves.
///
/// `tick`/`replica` are the timestamp the commit's operation minted (zero
/// for roots and merges, whose content is already fully determined by
/// their parents and state). Without them, two *different* concurrent
/// operations on two replicas that happen to produce equal states from
/// equal parents — two counter increments, say — would collapse into one
/// commit identity and replication would silently drop one of them. With
/// them, commit addresses distinguish distinct events exactly the way Git
/// commits with equal trees are distinguished by their author timestamps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitMeta {
    /// Parent commit addresses, in order.
    pub parents: Vec<ObjectId>,
    /// The commit's state address.
    pub state: ObjectId,
    /// Lamport tick of the minting operation (0 for roots/merges).
    pub tick: u64,
    /// Replica id of the minting operation (0 for roots/merges).
    pub replica: u32,
}

/// Builds the deterministic byte encoding of a commit record: a tag, the
/// parents' commit addresses in order, the state's address, and the
/// minting timestamp. Hashing this yields the commit's own address, so
/// equal histories produce equal (Merkle) head ids on *any* backend — the
/// property the backend-equivalence suite checks, and the property fetch
/// negotiation relies on to identify common history between independent
/// stores.
pub fn commit_record(parents: &[ObjectId], state: ObjectId, tick: u64, replica: u32) -> Vec<u8> {
    let mut record = Vec::with_capacity(8 + 4 + 32 * (parents.len() + 1) + 12);
    record.extend_from_slice(b"commit\0");
    record.extend_from_slice(&(parents.len() as u32).to_le_bytes());
    for p in parents {
        record.extend_from_slice(p.as_bytes());
    }
    record.extend_from_slice(state.as_bytes());
    record.extend_from_slice(&tick.to_le_bytes());
    record.extend_from_slice(&replica.to_le_bytes());
    record
}

/// Parses a [`commit_record`] back into its [`CommitMeta`], or `None` when
/// the bytes are not a well-formed record. The inverse the fetch client
/// uses to learn a received commit's parents (to continue the graph walk)
/// and its state address (to request the state object).
pub fn parse_commit_record(bytes: &[u8]) -> Option<CommitMeta> {
    let rest = bytes.strip_prefix(b"commit\0".as_slice())?;
    let (len, mut rest) = rest.split_first_chunk::<4>()?;
    let n = u32::from_le_bytes(*len) as usize;
    let mut parents = Vec::with_capacity(n.min(rest.len() / 32));
    for _ in 0..n {
        let (id, tail) = rest.split_first_chunk::<32>()?;
        parents.push(ObjectId::from_bytes(*id));
        rest = tail;
    }
    let (state, rest) = rest.split_first_chunk::<32>()?;
    let (tick, rest) = rest.split_first_chunk::<8>()?;
    let (replica, rest) = rest.split_first_chunk::<4>()?;
    rest.is_empty().then(|| CommitMeta {
        parents,
        state: ObjectId::from_bytes(*state),
        tick: u64::from_le_bytes(*tick),
        replica: u32::from_le_bytes(*replica),
    })
}

/// Leading tag of a full state record: the rest is the state's canonical
/// encoding (which hashes to the record's address).
const STATE_FULL: u8 = 0;
/// Leading tag of a delta state record: a 32-byte base state address
/// followed by a [`peepul_core::Delta`] wire encoding. Resolving the
/// delta against the base's canonical bytes yields this state's canonical
/// bytes — which must hash to the record's address.
const STATE_DELTA: u8 = 1;

/// A parsed state record, borrowed from its envelope bytes.
///
/// Every state object in the backend is wrapped in a one-byte envelope:
/// either the full canonical encoding ([`StateRecord::Full`]) or a delta
/// against a parent state ([`StateRecord::Delta`]). The record lives
/// under the address `sha256(full canonical bytes)` regardless of which
/// form is stored — the delta form is a storage encoding, not an
/// identity; every resolution re-hashes the resolved bytes against the
/// address before trusting them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateRecord<'a> {
    /// The state's full canonical encoding (a snapshot).
    Full(&'a [u8]),
    /// An edit script against the base state's canonical encoding.
    Delta {
        /// Address of the base state this delta resolves against.
        base: ObjectId,
        /// [`peepul_core::Delta`] wire bytes.
        delta: &'a [u8],
    },
}

/// Wraps a state's canonical bytes in the full-snapshot envelope.
pub fn state_record_full(canonical: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(1 + canonical.len());
    record.push(STATE_FULL);
    record.extend_from_slice(canonical);
    record
}

/// Wraps a [`peepul_core::Delta`] wire encoding in the delta envelope
/// naming its base state.
pub fn state_record_delta(base: ObjectId, delta_wire: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(1 + 32 + delta_wire.len());
    record.push(STATE_DELTA);
    record.extend_from_slice(base.as_bytes());
    record.extend_from_slice(delta_wire);
    record
}

/// Parses a stored state record back into its envelope form, or `None`
/// when the bytes are not a well-formed record.
pub fn parse_state_record(bytes: &[u8]) -> Option<StateRecord<'_>> {
    let (tag, rest) = bytes.split_first()?;
    match *tag {
        STATE_FULL => Some(StateRecord::Full(rest)),
        STATE_DELTA => {
            let (base, delta) = rest.split_first_chunk::<32>()?;
            Some(StateRecord::Delta {
                base: ObjectId::from_bytes(*base),
                delta,
            })
        }
        _ => None,
    }
}

/// A resolved state record: the full canonical bytes plus how many delta
/// links were applied to reach them (0 when the record was a snapshot or
/// a cache hit).
type Resolved = (Arc<Vec<u8>>, u32);

/// Resolves a state address to its full canonical bytes by walking the
/// stored delta chain: read the record under `oid`, follow delta bases
/// until a full snapshot (or a `cache` hit), then apply the deltas back
/// down — re-hashing **every** link's resolved bytes against its address
/// before caching it, so a drifted or corrupted delta surfaces as
/// [`StoreError::Corrupt`] at the link that broke, never as a wrong
/// state. Newly discovered `delta → base` edges are recorded in `deps`
/// (the GC retention index). Returns `None` when `oid` is not stored.
///
/// Standalone so [`BranchStore::open`] can resolve while the store is
/// still under construction; chain length is bounded by the backend's
/// snapshot interval at write time, and a corrupted cyclic chain is
/// detected by the id-revisit guard rather than looping.
fn resolve_state_record<B: Backend>(
    backend: &B,
    oid: ObjectId,
    cache: &mut HashMap<ObjectId, Arc<Vec<u8>>>,
    deps: &mut HashMap<ObjectId, ObjectId>,
) -> Result<Option<Resolved>, StoreError> {
    if let Some(bytes) = cache.get(&oid) {
        return Ok(Some((Arc::clone(bytes), 0)));
    }
    // Walk up: the chain of (link id, delta wire bytes) pending resolution.
    let mut pending: Vec<(ObjectId, Vec<u8>)> = Vec::new();
    let mut walking = HashSet::new();
    let mut cursor = oid;
    let mut base_bytes: Arc<Vec<u8>> = loop {
        if !walking.insert(cursor) {
            return Err(StoreError::Corrupt(format!(
                "state {} sits on a cyclic delta chain",
                oid.short()
            )));
        }
        if let Some(bytes) = cache.get(&cursor) {
            break Arc::clone(bytes);
        }
        let Some(record) = backend.get(cursor)? else {
            return if pending.is_empty() {
                Ok(None)
            } else {
                Err(StoreError::Corrupt(format!(
                    "delta chain of state {} references missing base {}",
                    oid.short(),
                    cursor.short()
                )))
            };
        };
        match parse_state_record(&record) {
            Some(StateRecord::Full(canonical)) => {
                let bytes = Arc::new(canonical.to_vec());
                if content_id_of_bytes(&bytes) != cursor {
                    return Err(StoreError::Corrupt(format!(
                        "state snapshot {} does not hash to its address",
                        cursor.short()
                    )));
                }
                cache.insert(cursor, Arc::clone(&bytes));
                break bytes;
            }
            Some(StateRecord::Delta { base, delta }) => {
                pending.push((cursor, delta.to_vec()));
                deps.insert(cursor, base);
                cursor = base;
            }
            None => {
                return Err(StoreError::Corrupt(format!(
                    "object {} is not a state record",
                    cursor.short()
                )))
            }
        }
    };
    // Apply back down, verifying each link against its own address.
    let links = pending.len() as u32;
    while let Some((link, delta_wire)) = pending.pop() {
        let delta = Delta::from_wire(&delta_wire).ok_or_else(|| {
            StoreError::Corrupt(format!("state {} carries a malformed delta", link.short()))
        })?;
        let resolved = delta.apply(&base_bytes).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "delta of state {} does not apply to its base",
                link.short()
            ))
        })?;
        if content_id_of_bytes(&resolved) != link {
            return Err(StoreError::Corrupt(format!(
                "resolved delta chain of state {} does not hash to its address",
                link.short()
            )));
        }
        base_bytes = Arc::new(resolved);
        cache.insert(link, Arc::clone(&base_bytes));
    }
    Ok(Some((base_bytes, links)))
}

/// A Git-like store replicating one MRDT object across branches.
///
/// # Example
///
/// ```
/// use peepul_store::BranchStore;
/// use peepul_types::counter::{Counter, CounterOp, CounterQuery};
///
/// # fn main() -> Result<(), peepul_store::StoreError> {
/// let mut store: BranchStore<Counter> = BranchStore::new("main");
/// let dev = store.branch_mut("main")?.fork("dev")?;
///
/// // Updates go through a mutable handle; a transaction batches them into
/// // one commit.
/// store.branch_mut(&dev)?.transaction(|tx| {
///     tx.apply(&CounterOp::Increment);
///     tx.apply(&CounterOp::Increment);
/// })?;
/// store.branch_mut("main")?.apply(&CounterOp::Increment)?;
/// store.branch_mut("main")?.merge_from(&dev)?;
///
/// // Queries are commit-free and need no `&mut`.
/// assert_eq!(store.read("main", &CounterQuery::Value)?, 3);
/// # Ok(())
/// # }
/// ```
pub struct BranchStore<M: Mrdt, B: Backend = MemoryBackend> {
    graph: CommitGraph<Arc<M>>,
    /// Content address of each commit's *state*, indexed like the graph.
    state_ids: Vec<ObjectId>,
    /// Content address of each *commit record*, indexed like the graph.
    commit_ids: Vec<ObjectId>,
    /// The `(tick, replica)` mint of each commit, indexed like the graph.
    /// Roots and merge commits mint `(0, 0)`; operation commits carry the
    /// timestamp of the event they landed — what the replication-aware
    /// linearizability witness observes.
    mints: Vec<Timestamp>,
    /// Commit content address → graph id (the fetch/ingest lookup).
    commit_index: HashMap<ObjectId, CommitId>,
    /// State content address → first commit carrying it (typed payload
    /// lookup for serving state objects to peers).
    state_index: HashMap<ObjectId, CommitId>,
    branches: BTreeMap<String, BranchInfo>,
    /// Global Lamport tick: unique and happens-before consistent because
    /// the store is the sole timestamp authority (Ψ_ts).
    tick: u64,
    next_replica: u32,
    backend: B,
    memo: MergeMemo<M>,
    /// Observability handles, attached by [`BranchStore::set_metrics`];
    /// `None` keeps every hot path at its uninstrumented cost.
    metrics: Option<Arc<StoreMetrics>>,
    /// Commit boundaries crossed ([`BranchStore::durability_point`]) —
    /// the denominator of the published fsync-coalesce ratio.
    boundaries: u64,
    /// Delta-stored state → its base state: the retention index GC closes
    /// over (a base must outlive every live delta resolving through it)
    /// and the chain-depth oracle commit uses to bound chains at the
    /// backend's snapshot interval.
    delta_deps: HashMap<ObjectId, ObjectId>,
}

impl<M: Mrdt> BranchStore<M> {
    /// Creates a store over the in-memory backend with a single branch
    /// holding the initial state.
    ///
    /// # Panics
    ///
    /// Panics if `root_branch` is not a valid branch name (see
    /// [`BranchId`]); use [`BranchStore::with_backend`] for a fallible
    /// constructor.
    pub fn new(root_branch: impl Into<String>) -> Self {
        Self::with_backend(root_branch, MemoryBackend::new())
            .expect("the in-memory backend cannot fail and the name must be valid")
    }
}

impl<M: Mrdt, B: Backend> BranchStore<M, B> {
    /// Creates a store over an explicit backend with a single branch
    /// holding the initial state.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidBranchName`] if `root_branch` is not a legal
    /// name; [`StoreError::Io`] if publishing the root commit fails.
    pub fn with_backend(root_branch: impl Into<String>, backend: B) -> Result<Self, StoreError> {
        Self::with_backend_and_base(root_branch, backend, 0)
    }

    /// Creates a store like [`BranchStore::with_backend`], but minting
    /// replica ids starting at `replica_base` instead of 0.
    ///
    /// Timestamp uniqueness (Ψ_ts) holds *within* one store because it is
    /// the sole timestamp authority over its branches. Once several
    /// independent stores replicate into each other, their replica-id
    /// ranges must not overlap or two stores could mint the same
    /// `(tick, replica)` pair; a fleet assigns each store a disjoint base
    /// (`peepul-net`'s `Cluster` spaces them `2^16` apart).
    ///
    /// # Errors
    ///
    /// As [`BranchStore::with_backend`] — plus [`StoreError::Corrupt`]
    /// when the backend **already holds published refs**: creating a
    /// fresh store over an existing one would silently repoint its branch
    /// at a new initial root, orphaning the real history. Reopen such a
    /// backend with [`BranchStore::open`] instead (the two constructors
    /// refuse in opposite directions, so neither path can be mis-called
    /// into data loss).
    pub fn with_backend_and_base(
        root_branch: impl Into<String>,
        backend: B,
        replica_base: u32,
    ) -> Result<Self, StoreError> {
        let root_branch = root_branch.into();
        let id = BranchId::new(&root_branch)?;
        if !backend.refs()?.is_empty() {
            return Err(StoreError::Corrupt(
                "backend already holds published refs; reopen it with BranchStore::open \
                 instead of creating a new store over it"
                    .into(),
            ));
        }
        let mut store = BranchStore {
            graph: CommitGraph::new(),
            state_ids: Vec::new(),
            commit_ids: Vec::new(),
            mints: Vec::new(),
            commit_index: HashMap::new(),
            state_index: HashMap::new(),
            branches: BTreeMap::new(),
            tick: 0,
            next_replica: replica_base + 1,
            backend,
            memo: MergeMemo::new(),
            metrics: None,
            boundaries: 0,
            delta_deps: HashMap::new(),
        };
        let root = store.commit(Vec::new(), Arc::new(M::initial()), (0, 0))?;
        store.set_head(&root_branch, root)?;
        store.branches.insert(
            root_branch,
            BranchInfo {
                head: root,
                replica: ReplicaId::new(replica_base),
                id,
            },
        );
        store.durability_point()?;
        Ok(store)
    }

    /// Reopens an **existing** store from the objects and refs a backend
    /// already holds — the typed cold-start path.
    ///
    /// Because the canonical encoding is decodable, a process restart is
    /// a full recovery, not a byte-level salvage: `open` walks every ref
    /// to its commit record, follows parent addresses through the Merkle
    /// graph, decodes each referenced state back to the typed `M`,
    /// rebuilds the [`CommitGraph`], both content-address indexes (so
    /// merges memoize and replication serves immediately), the branch
    /// table, and the Lamport clock (`observe_tick` over every recovered
    /// commit mint and every tick embedded in a recovered state). Every
    /// branch head is byte- and commit-identical to the pre-restart
    /// store: same head commit id, same state bytes, same query answers.
    ///
    /// Branch **replica ids** are reassigned deterministically
    /// (`replica_base + i` in sorted branch-name order; see
    /// [`BranchStore::open_with_base`]) rather than recovered — commit
    /// records carry the mints of *past* operations, not the assignment
    /// table. This is safe: the recovered Lamport clock exceeds every
    /// persisted tick, so post-reopen timestamps are fresh pairs
    /// regardless of which replica id a branch minted before the restart.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the backend has no refs (nothing was
    /// ever published — use [`BranchStore::with_backend`] to create a
    /// store), when a ref or parent points at a missing object, or when
    /// an object fails to parse/decode; [`StoreError::Io`] from the
    /// backend.
    pub fn open(backend: B) -> Result<Self, StoreError> {
        Self::open_with_base(backend, 0)
    }

    /// [`BranchStore::open`], minting post-reopen replica ids from
    /// `replica_base` — the reopen counterpart of
    /// [`BranchStore::with_backend_and_base`] for stores that live in a
    /// replicating fleet with disjoint id ranges.
    ///
    /// # Errors
    ///
    /// As [`BranchStore::open`].
    pub fn open_with_base(backend: B, replica_base: u32) -> Result<Self, StoreError> {
        let refs = backend.refs()?;
        if refs.is_empty() {
            return Err(StoreError::Corrupt(
                "cannot reopen: backend holds no refs (create a new store with with_backend)"
                    .into(),
            ));
        }

        // Phase 1: walk the Merkle graph from every ref, collecting each
        // reachable commit's metadata. Iterative — histories are deep.
        let mut metas: BTreeMap<ObjectId, CommitMeta> = BTreeMap::new();
        let mut stack: Vec<ObjectId> = refs.iter().map(|(_, oid)| *oid).collect();
        while let Some(oid) = stack.pop() {
            if metas.contains_key(&oid) {
                continue;
            }
            let bytes = backend.get(oid)?.ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "reachable commit {} missing from backend",
                    oid.short()
                ))
            })?;
            let meta = parse_commit_record(&bytes).ok_or_else(|| {
                StoreError::Corrupt(format!("object {} is not a commit record", oid.short()))
            })?;
            stack.extend(meta.parents.iter().copied());
            metas.insert(oid, meta);
        }

        // Phase 2: topological order, parents first (Kahn; deterministic
        // because the ready set is ordered by commit address).
        let mut children: HashMap<ObjectId, Vec<ObjectId>> = HashMap::new();
        let mut pending: HashMap<ObjectId, usize> = HashMap::new();
        for (oid, meta) in &metas {
            pending.insert(*oid, meta.parents.len());
            for p in &meta.parents {
                children.entry(*p).or_default().push(*oid);
            }
        }
        let mut ready: BTreeSet<ObjectId> = pending
            .iter()
            .filter(|(_, n)| **n == 0)
            .map(|(o, _)| *o)
            .collect();

        // Phase 3: decode states (each distinct state object once) and
        // install commits into the graph + indexes. Nothing is written:
        // the backend already holds every byte.
        let mut store = BranchStore {
            graph: CommitGraph::new(),
            state_ids: Vec::new(),
            commit_ids: Vec::new(),
            mints: Vec::new(),
            commit_index: HashMap::new(),
            state_index: HashMap::new(),
            branches: BTreeMap::new(),
            tick: 0,
            next_replica: replica_base,
            backend,
            memo: MergeMemo::new(),
            metrics: None,
            boundaries: 0,
            delta_deps: HashMap::new(),
        };
        let mut resolved: HashMap<ObjectId, Arc<Vec<u8>>> = HashMap::new();
        let mut typed: HashMap<ObjectId, Arc<M>> = HashMap::new();
        let mut installed = 0usize;
        while let Some(oid) = ready.pop_first() {
            let meta = &metas[&oid];
            let state = match typed.get(&meta.state) {
                Some(s) => Arc::clone(s),
                None => {
                    // Resolve the stored record (a snapshot, or a delta
                    // chain down to one) to full canonical bytes —
                    // hash-verified per link — then decode. The resolved
                    // cache persists across commits, so a chain of K
                    // deltas costs K applications for the whole reopen,
                    // not K per state.
                    let (bytes, _) = resolve_state_record(
                        &store.backend,
                        meta.state,
                        &mut resolved,
                        &mut store.delta_deps,
                    )?
                    .ok_or_else(|| {
                        StoreError::Corrupt(format!(
                            "commit {} references missing state {}",
                            oid.short(),
                            meta.state.short()
                        ))
                    })?;
                    let m: M = decode_canonical(&bytes).ok_or_else(|| {
                        StoreError::Corrupt(format!(
                            "state {} does not decode as typed state",
                            meta.state.short()
                        ))
                    })?;
                    store.tick = store.tick.max(m.max_tick());
                    let arc = Arc::new(m);
                    typed.insert(meta.state, Arc::clone(&arc));
                    arc
                }
            };
            store.tick = store.tick.max(meta.tick);
            let parent_cids: Vec<CommitId> =
                meta.parents.iter().map(|p| store.commit_index[p]).collect();
            store.install_commit(
                parent_cids,
                state,
                meta.state,
                oid,
                (meta.tick, meta.replica),
            );
            installed += 1;
            for child in children.get(&oid).into_iter().flatten() {
                let n = pending.get_mut(child).expect("child is a known commit");
                *n -= 1;
                if *n == 0 {
                    ready.insert(*child);
                }
            }
        }
        if installed != metas.len() {
            // Unreachable with honest SHA-256 (a parent cycle needs a hash
            // cycle), but never loop forever on a corrupted index.
            return Err(StoreError::Corrupt(
                "commit records form a cycle; backend index corrupt".into(),
            ));
        }

        // Phase 4: the branch table, from the refs (sorted by name).
        for (i, (name, oid)) in refs.iter().enumerate() {
            let id = BranchId::new(name)?;
            let head = store.commit_index[oid];
            store.branches.insert(
                name.clone(),
                BranchInfo {
                    head,
                    replica: ReplicaId::new(replica_base + i as u32),
                    id,
                },
            );
        }
        store.next_replica = replica_base + refs.len() as u32;
        Ok(store)
    }

    /// Publishes a state + commit record to the backend, then appends the
    /// commit to the in-memory DAG. Backend first: a failed publish leaves
    /// the graph untouched (the orphaned object, if any, is harmless in a
    /// content-addressed store).
    fn commit(
        &mut self,
        parents: Vec<CommitId>,
        state: Arc<M>,
        mint: (u64, u32),
    ) -> Result<CommitId, StoreError> {
        let canonical = canonical_bytes(state.as_ref());
        let state_id = content_id_of_bytes(&canonical);
        self.put_state(
            state_id,
            &canonical,
            state.as_ref(),
            parents.first().copied(),
        )?;
        let parent_ids: Vec<ObjectId> =
            parents.iter().map(|p| self.commit_ids[p.index()]).collect();
        let record = commit_record(&parent_ids, state_id, mint.0, mint.1);
        let commit_oid = self.backend.put(&record)?;
        Ok(self.install_commit(parents, state, state_id, commit_oid, mint))
    }

    /// Persists one state under its content address, choosing the storage
    /// form: a structural delta against the (first) parent's state when
    /// the backend's snapshot interval allows the chain to grow and the
    /// delta record is actually smaller, a full snapshot otherwise. The
    /// address is `sha256(canonical)` either way — the delta is a storage
    /// encoding, and every read re-verifies that hash after resolution.
    fn put_state(
        &mut self,
        state_id: ObjectId,
        canonical: &[u8],
        state: &M,
        parent: Option<CommitId>,
    ) -> Result<(), StoreError> {
        if self.backend.contains(state_id)? {
            // Interned: an equal state was stored before (under either
            // form). Route the no-op through `put_keyed` so the backend's
            // intern counters still see the sharing.
            return self
                .backend
                .put_keyed(state_id, &state_record_full(canonical));
        }
        if let Some(pc) = parent {
            let base_id = self.state_ids[pc.index()];
            // `base_id != state_id` is implied: an equal state would have
            // hit the intern check above. Check the chain bound before
            // paying for the diff.
            let interval = self.backend.snapshot_interval();
            if interval > 0 && self.chain_depth(base_id) + 1 < interval {
                let parent_state = self.graph.payload(pc).clone();
                let delta = state.diff(parent_state.as_ref());
                if self.try_put_delta(state_id, base_id, &delta.to_wire(), canonical.len())? {
                    return Ok(());
                }
            }
        }
        self.backend
            .put_keyed(state_id, &state_record_full(canonical))?;
        if let Some(m) = &self.metrics {
            m.full_states_total.inc();
        }
        Ok(())
    }

    /// Lands a state in delta form when the chain bound and the size test
    /// allow it: the chain through `base` must stay under the backend's
    /// snapshot interval (so every resolution is bounded by
    /// `interval - 1` links) and the delta record must actually be
    /// smaller than the full record. Returns `false` — nothing written —
    /// when either test fails; the caller stores a full snapshot instead.
    fn try_put_delta(
        &mut self,
        state_id: ObjectId,
        base_id: ObjectId,
        delta_wire: &[u8],
        canonical_len: usize,
    ) -> Result<bool, StoreError> {
        let interval = self.backend.snapshot_interval();
        if interval == 0 || self.chain_depth(base_id) + 1 >= interval {
            return Ok(false);
        }
        let record = state_record_delta(base_id, delta_wire);
        let full_record_len = 1 + canonical_len;
        if record.len() >= full_record_len {
            return Ok(false);
        }
        self.backend.put_keyed(state_id, &record)?;
        self.delta_deps.insert(state_id, base_id);
        if let Some(m) = &self.metrics {
            m.delta_states_total.inc();
            m.delta_bytes_total.add(record.len() as u64);
            m.delta_saved_bytes_total
                .add(full_record_len.saturating_sub(record.len()) as u64);
            m.delta_chain_len
                .observe(u64::from(self.chain_depth(state_id)));
        }
        Ok(true)
    }

    /// How many delta links sit between a stored state and its snapshot
    /// base (0 for a snapshot). Bounded by the snapshot interval at write
    /// time, so the walk is O(interval).
    fn chain_depth(&self, mut id: ObjectId) -> u32 {
        let mut depth = 0;
        while let Some(base) = self.delta_deps.get(&id) {
            depth += 1;
            id = *base;
        }
        depth
    }

    /// Appends an already-published commit to the in-memory structures:
    /// graph, id ledgers, and both lookup indexes. The backend holds the
    /// state bytes under `state_id` and the record bytes under
    /// `commit_oid` before this is called (by [`BranchStore::commit`], the
    /// ingest path, or — on reopen — by the segment file itself).
    fn install_commit(
        &mut self,
        parents: Vec<CommitId>,
        state: Arc<M>,
        state_id: ObjectId,
        commit_oid: ObjectId,
        mint: (u64, u32),
    ) -> CommitId {
        let cid = if parents.is_empty() {
            self.graph.add_root(state)
        } else {
            self.graph
                .add_commit(parents, state)
                .expect("callers pass live parents")
        };
        self.state_ids.push(state_id);
        self.commit_ids.push(commit_oid);
        self.mints
            .push(Timestamp::new(mint.0, ReplicaId::new(mint.1)));
        self.commit_index.insert(commit_oid, cid);
        self.state_index.entry(state_id).or_insert(cid);
        cid
    }

    /// Points the branch's backend ref at a commit (the in-memory
    /// `branches` entry is the caller's to update).
    fn set_head(&mut self, branch: &str, head: CommitId) -> Result<(), StoreError> {
        self.backend.set_ref(branch, self.commit_ids[head.index()])
    }

    /// Marks the end of one logical commit (an apply, a merge, a fork, a
    /// whole transaction, an ingested pack): the backend schedules
    /// durability here per its flush policy — the group-commit seam that
    /// turns N record appends into at most one fsync.
    pub(crate) fn durability_point(&mut self) -> Result<(), StoreError> {
        self.boundaries += 1;
        self.backend.commit_boundary()
    }

    /// The branch names, sorted lexicographically.
    ///
    /// The order is **guaranteed deterministic** across backends and runs
    /// (branches live in an ordered map), so iteration-driven artefacts —
    /// [`BranchStore::to_dot`] output, convergence sweeps, test fixtures —
    /// are stable.
    pub fn branch_names(&self) -> Vec<&str> {
        self.branches.keys().map(String::as_str).collect()
    }

    /// Whether `branch` exists.
    pub fn has_branch(&self, branch: &str) -> bool {
        self.branches.contains_key(branch)
    }

    /// A validated, cheaply clonable identifier for an existing branch.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn branch_id(&self, branch: &str) -> Result<BranchId, StoreError> {
        self.info(branch).map(|i| i.id.clone())
    }

    /// A read-only handle to an existing branch — the typo check happens
    /// here, once; every method on the returned [`BranchRef`] is
    /// infallible.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn branch(&self, branch: &str) -> Result<BranchRef<'_, M, B>, StoreError> {
        let info = self.info(branch)?;
        Ok(BranchRef::new(
            self,
            info.id.clone(),
            info.head,
            info.replica,
        ))
    }

    /// A mutable handle to an existing branch, for `apply`, `fork`,
    /// `merge_from` and transactions.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn branch_mut(&mut self, branch: &str) -> Result<BranchMut<'_, M, B>, StoreError> {
        let id = self.info(branch)?.id.clone();
        Ok(BranchMut::new(self, id))
    }

    /// The replica id minting timestamps for `branch`.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn replica_of(&self, branch: &str) -> Result<ReplicaId, StoreError> {
        self.info(branch).map(|i| i.replica)
    }

    fn info(&self, branch: &str) -> Result<&BranchInfo, StoreError> {
        self.branches
            .get(branch)
            .ok_or_else(|| StoreError::UnknownBranch(branch.to_owned()))
    }

    /// The head commit of a branch.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn head(&self, branch: &str) -> Result<CommitId, StoreError> {
        self.info(branch).map(|i| i.head)
    }

    /// The content address of a branch's head *commit* (Merkle over the
    /// whole history) — what the backend ref for `branch` points at.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn head_id(&self, branch: &str) -> Result<ObjectId, StoreError> {
        Ok(self.commit_ids[self.head(branch)?.index()])
    }

    /// The content address of a branch's head *state*.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn state_id(&self, branch: &str) -> Result<ObjectId, StoreError> {
        Ok(self.state_ids[self.head(branch)?.index()])
    }

    /// The current state of a branch (cheap `Arc` clone).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn state(&self, branch: &str) -> Result<Arc<M>, StoreError> {
        Ok(self.graph.payload(self.head(branch)?).clone())
    }

    /// Answers a pure query against a branch's head state — the
    /// **commit-free read path**: no commit is minted, no timestamp
    /// consumed, no backend write issued, and no `&mut` access required.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn read(&self, branch: &str, q: &M::Query) -> Result<M::Output, StoreError> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let out = self.graph.payload(self.head(branch)?).query(q);
        if let (Some(m), Some(start)) = (&self.metrics, start) {
            m.reads_total.inc();
            m.read_micros.observe_since(start);
        }
        Ok(out)
    }

    pub(crate) fn do_fork(&mut self, new: String, from: &str) -> Result<BranchId, StoreError> {
        let id = BranchId::new(&new)?;
        if self.branches.contains_key(&new) {
            return Err(StoreError::BranchExists(new));
        }
        let head = self.head(from)?;
        self.set_head(&new, head)?;
        let replica = ReplicaId::new(self.next_replica);
        self.next_replica += 1;
        self.branches.insert(
            new,
            BranchInfo {
                head,
                replica,
                id: id.clone(),
            },
        );
        self.durability_point()?;
        Ok(id)
    }

    pub(crate) fn do_apply(&mut self, branch: &str, op: &M::Op) -> Result<M::Value, StoreError> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let (head, replica) = {
            let info = self.info(branch)?;
            (info.head, info.replica)
        };
        self.tick += 1;
        let t = Timestamp::new(self.tick, replica);
        let (next, value) = self.graph.payload(head).apply(op, t);
        let new_head = self.commit(vec![head], Arc::new(next), (t.tick(), t.replica().as_u32()))?;
        self.set_head(branch, new_head)?;
        self.branches
            .get_mut(branch)
            .expect("branch checked above")
            .head = new_head;
        self.durability_point()?;
        if let (Some(m), Some(start)) = (&self.metrics, start) {
            let micros = start.elapsed().as_micros() as u64;
            m.commits_total.inc();
            m.commit_micros.observe(micros);
            m.trace("commit", branch, micros);
        }
        Ok(value)
    }

    /// The lowest-common-ancestor *state* of two branches, resolving
    /// multiple merge bases by recursive virtual merging.
    ///
    /// This is a **read**: virtual ancestors are computed on the fly from
    /// merge-base leaf sets ([`CommitGraph::merge_bases_of`]) instead of
    /// being committed into the graph, so the whole path works against
    /// `&self` — read-only callers no longer need `&mut BranchStore`. The
    /// interior-mutable [`MergeMemo`] still caches (and serves) the
    /// virtual merges by content-address triple.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] for missing branches;
    /// [`StoreError::NoCommonAncestor`] for unrelated histories (impossible
    /// for branches forked from one root).
    pub fn lca_state(&self, b1: &str, b2: &str) -> Result<Arc<M>, StoreError> {
        let (c1, c2) = (self.head(b1)?, self.head(b2)?);
        let (state, _, _) = self.virtual_lca(&[c1], &[c2])?;
        Ok(state)
    }

    /// Recursive virtual merge of the merge bases of two virtual commits
    /// (each given by its real leaf set), exactly like git merge-recursive
    /// — but materialising nothing. Returns the LCA state, its content
    /// address, and the leaf set describing the virtual ancestor.
    ///
    /// Criss-cross rounds re-derive the same `(lca, left, right)` triples,
    /// so these merges are where the memo pays.
    #[allow(clippy::type_complexity)]
    fn virtual_lca(
        &self,
        left: &[CommitId],
        right: &[CommitId],
    ) -> Result<(Arc<M>, ObjectId, Vec<CommitId>), StoreError> {
        let bases = self.graph.merge_bases_of(left, right);
        let Some((&first, rest)) = bases.split_first() else {
            return Err(StoreError::NoCommonAncestor);
        };
        let mut state = self.graph.payload(first).clone();
        let mut sid = self.state_ids[first.index()];
        let mut leaves = vec![first];
        for &base in rest {
            let (sub_state, sub_sid, _) = self.virtual_lca(&leaves, &[base])?;
            let base_sid = self.state_ids[base.index()];
            // merged_with_id caches the result's content address with the
            // entry, so repeated criss-cross derivations skip both the
            // merge AND the O(state) re-hash.
            let (merged, merged_sid) = {
                let graph = &self.graph;
                let virt_state = Arc::clone(&state);
                self.memo.merged_with_id((sub_sid, sid, base_sid), move || {
                    M::merge(&sub_state, &virt_state, graph.payload(base))
                })
            };
            sid = merged_sid;
            state = merged;
            leaves.push(base);
        }
        Ok((state, sid, leaves))
    }

    pub(crate) fn do_merge(&mut self, into: &str, from: &str) -> Result<(), StoreError> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let (c_into, c_from) = (self.head(into)?, self.head(from)?);
        if self.graph.is_ancestor(c_from, c_into) {
            return Ok(()); // nothing new to integrate
        }
        let (lca_state, lca_sid, _) = self.virtual_lca(&[c_into], &[c_from])?;
        let key = (
            lca_sid,
            self.state_ids[c_into.index()],
            self.state_ids[c_from.index()],
        );
        let merged = {
            let graph = &self.graph;
            self.memo.merged(key, || {
                M::merge(&lca_state, graph.payload(c_into), graph.payload(c_from))
            })
        };
        let new_head = self.commit(vec![c_into, c_from], merged, (0, 0))?;
        self.set_head(into, new_head)?;
        self.branches
            .get_mut(into)
            .expect("branch checked above")
            .head = new_head;
        self.durability_point()?;
        if let (Some(m), Some(start)) = (&self.metrics, start) {
            let micros = start.elapsed().as_micros() as u64;
            m.merges_total.inc();
            m.merge_micros.observe(micros);
            m.trace("merge", into, micros);
        }
        Ok(())
    }

    /// Total number of commits. Every commit is a real version: virtual
    /// LCA ancestors are computed on the fly and never enter the graph.
    pub fn commit_count(&self) -> usize {
        self.graph.len()
    }

    /// Direct access to the underlying commit graph (read-only).
    pub fn graph(&self) -> &CommitGraph<Arc<M>> {
        &self.graph
    }

    /// The persistence backend (read-only).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the persistence backend — for storage
    /// maintenance (forcing a rotation, injecting crash faults in tests).
    /// Writing objects or refs behind the store's back desynchronizes its
    /// in-memory graph; prefer the store-level methods
    /// ([`BranchStore::collect_garbage`],
    /// [`BranchStore::compact_storage`], [`BranchStore::flush`]) for
    /// anything the store models itself.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Flushes the backend to stable storage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on persistence failure.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.backend.flush()
    }

    /// The backend objects reachable from the branch table: every branch
    /// head, every ancestor commit record, and the state each one
    /// references — the commit graph *is* the reachability index, so
    /// tracing is a parent walk, no backend reads.
    ///
    /// Everything else in the backend is garbage by construction:
    /// orphaned fork roots whose branch was never created, superseded
    /// scratch states, objects a rejected push transferred but never
    /// referenced.
    pub fn live_objects(&self) -> HashSet<ObjectId> {
        let mut live = HashSet::new();
        let mut stack: Vec<CommitId> = self.branches.values().map(|b| b.head).collect();
        let mut seen: HashSet<CommitId> = stack.iter().copied().collect();
        while let Some(c) = stack.pop() {
            live.insert(self.commit_ids[c.index()]);
            live.insert(self.state_ids[c.index()]);
            for &p in self.graph.parents(c) {
                if seen.insert(p) {
                    stack.push(p);
                }
            }
        }
        // A live delta-stored state pins its whole chain down to the full
        // snapshot: resolution reads every link, so a base must survive
        // even when no reachable commit carries it any more (the carrying
        // commits may be exactly what this sweep is discarding).
        let mut chain: Vec<ObjectId> = live.iter().copied().collect();
        while let Some(id) = chain.pop() {
            if let Some(base) = self.delta_deps.get(&id) {
                if live.insert(*base) {
                    chain.push(*base);
                }
            }
        }
        live
    }

    /// What a [`BranchStore::collect_garbage`] would reclaim, without
    /// reclaiming it — liveness traced by [`BranchStore::live_objects`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend read failure.
    pub fn sweep_stats(&self) -> Result<SweepStats, StoreError> {
        self.backend.sweep_stats(&self.live_objects())
    }

    /// Reference-tracing garbage collection: marks every object reachable
    /// from a branch head ([`BranchStore::live_objects`]) and has the
    /// backend reclaim the rest (for
    /// [`SegmentBackend`](crate::SegmentBackend): rotate, then compact the
    /// sealed files into one pack holding only live objects).
    ///
    /// Safe by construction: the store publishes state and commit bytes
    /// *before* the ref that makes them reachable, `&mut self` excludes
    /// concurrent writers mid-publish, and the trace runs over the
    /// in-memory graph — so no object reachable from a published ref can
    /// be classified dead.
    ///
    /// Collected commits take their Lamport mints with them: a later
    /// [`BranchStore::open`] recovers the clock as the maximum over
    /// *reachable* history (the live store's clock never moves
    /// backwards, so in-process timestamps stay unique either way).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend failure.
    pub fn collect_garbage(&mut self) -> Result<SweepStats, StoreError> {
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let live = self.live_objects();
        let stats = self.backend.collect_garbage(&live)?;
        // Forget the collected addresses in the replication indexes too:
        // `ingest_pack` skips objects `has_commit` claims to know, and a
        // stale index entry would let a re-pushed collected commit land
        // without its bytes.
        self.commit_index.retain(|oid, _| live.contains(oid));
        self.state_index.retain(|oid, _| live.contains(oid));
        // Collected delta-stored states drop out of the retention index;
        // every surviving entry's base is in `live` (the closure in
        // `live_objects` put it there), so surviving chains stay whole.
        self.delta_deps.retain(|oid, _| live.contains(oid));
        if let (Some(m), Some(start)) = (&self.metrics, start) {
            let micros = start.elapsed().as_micros() as u64;
            m.gc_sweeps_total.inc();
            m.gc_dead_objects_total.add(stats.dead_objects);
            m.gc_dead_bytes_total.add(stats.dead_bytes);
            m.gc_micros.observe(micros);
            m.trace("gc", "", stats.dead_objects);
        }
        Ok(stats)
    }

    /// Compacts backend storage for read efficiency without reclaiming
    /// anything (see [`Backend::compact`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend failure.
    pub fn compact_storage(&mut self) -> Result<(), StoreError> {
        let before = self
            .metrics
            .as_ref()
            .map(|_| self.backend.storage_info().disk_bytes);
        self.backend.compact()?;
        if let (Some(m), Some(before)) = (&self.metrics, before) {
            let released = before.saturating_sub(self.backend.storage_info().disk_bytes);
            m.compactions_total.inc();
            m.compact_bytes_total.add(released);
            m.trace("compact", "", released);
        }
        Ok(())
    }

    /// Merge-cache hit/miss counters (for the bench pipeline).
    pub fn merge_cache_stats(&self) -> MergeCacheStats {
        self.memo.stats()
    }

    /// Enables or disables merge memoization (disabling clears the cache).
    /// Used by the equivalence suite to check cached ≡ uncached.
    pub fn set_merge_cache(&self, enabled: bool) {
        self.memo.set_enabled(enabled);
    }

    /// Attaches (or detaches, with `None`) observability handles. With no
    /// metrics attached every hot path runs at its uninstrumented cost —
    /// the [`ObsConfig::disabled`](peepul_obs::ObsConfig::disabled)
    /// baseline `bench_obs` gates against.
    pub fn set_metrics(&mut self, metrics: Option<Arc<StoreMetrics>>) {
        self.metrics = metrics;
    }

    /// The attached observability handles, if any.
    pub fn metrics(&self) -> Option<&Arc<StoreMetrics>> {
        self.metrics.as_ref()
    }

    /// Publishes the **pull-model** gauges — facts that live in other
    /// structures (merge-memo counters, backend
    /// [`StorageInfo`](crate::StorageInfo), graph sizes) and would cost
    /// hot-path work to push on every operation. Callers invoke this
    /// right before rendering an exposition (the server's `Metrics`
    /// handler does, under its read lock). No-op without metrics.
    pub fn publish_gauges(&self) {
        let Some(m) = &self.metrics else { return };
        let memo = self.memo.stats();
        m.memo_hits.set(memo.hits as i64);
        m.memo_misses.set(memo.misses as i64);
        m.memo_hit_permille.set((memo.hit_rate() * 1000.0) as i64);
        let info = self.backend.storage_info();
        m.fsyncs.set(info.fsyncs as i64);
        m.disk_bytes.set(info.disk_bytes as i64);
        m.segments.set(info.segments as i64);
        m.fsync_coalesce_permille.set(
            info.fsyncs
                .saturating_mul(1000)
                .checked_div(self.boundaries)
                .unwrap_or(0) as i64,
        );
        m.commit_count.set(self.graph.len() as i64);
        m.branches.set(self.branches.len() as i64);
        m.objects.set(self.backend.object_count() as i64);
        m.delta_states.set(self.delta_deps.len() as i64);
    }
}

// ---------------------------------------------------------------------------
// Replication surface: graph walks, object ingest, tracking refs
// ---------------------------------------------------------------------------

/// What one [`BranchStore::ingest_pack`] landed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IngestReport {
    /// Previously unknown commits that entered the graph.
    pub commits: u64,
    /// Verified state objects the pack carried.
    pub states: u64,
    /// The largest Lamport tick the pack carried (mint ticks and ticks
    /// embedded in states); the store's clock has been advanced past it.
    pub max_tick: u64,
    /// State objects that arrived in delta form ([`PackState::Delta`]).
    pub delta_states: u64,
    /// Wire bytes the delta forms saved: resolved canonical size minus
    /// delta size, summed over every [`PackState::Delta`] received.
    pub delta_saved_bytes: u64,
}

/// A state object as it arrives in a pack: the full canonical bytes, or
/// a delta against a base state the receiver is expected to hold (its
/// `haves` proved it during negotiation). Either way the object's
/// identity is `id = sha256(full canonical bytes)` — a delta is verified
/// by resolving it and re-hashing before anything is written.
#[derive(Clone, Copy, Debug)]
pub enum PackState<'a> {
    /// Full canonical encoding; must hash to `id`.
    Full {
        /// Advertised content address.
        id: ObjectId,
        /// The canonical bytes.
        bytes: &'a [u8],
    },
    /// A [`peepul_core::Delta`] whose resolution against `base`'s
    /// canonical bytes must hash to `id`.
    Delta {
        /// Advertised content address of the *resolved* state.
        id: ObjectId,
        /// Address of the base state the delta applies to. Must be held
        /// by this store or appear earlier in the same pack.
        base: ObjectId,
        /// Delta wire bytes.
        delta: &'a [u8],
    },
}

impl PackState<'_> {
    /// The advertised content address of the (resolved) state.
    pub fn id(&self) -> ObjectId {
        match self {
            PackState::Full { id, .. } | PackState::Delta { id, .. } => *id,
        }
    }
}

/// What [`BranchStore::track`] did to the branch ref.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TrackOutcome {
    /// The branch did not exist and was created at the target commit.
    Created,
    /// The branch existed and its head was an ancestor of the target: the
    /// ref moved forward without minting a commit (a Git fast-forward).
    FastForwarded,
    /// The branch already pointed at the target.
    Unchanged,
    /// The branch has local history the target does not contain. [`track`]
    /// leaves the ref alone in this case; [`force_track`] moves it anyway.
    ///
    /// [`track`]: BranchStore::track
    /// [`force_track`]: BranchStore::force_track
    Diverged,
}

impl<M: Mrdt, B: Backend> BranchStore<M, B> {
    /// The content address of a commit's *record* (Merkle over history).
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to this store's graph.
    pub fn commit_oid(&self, c: CommitId) -> ObjectId {
        self.commit_ids[c.index()]
    }

    /// The content address of a commit's *state*.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to this store's graph.
    pub fn state_oid(&self, c: CommitId) -> ObjectId {
        self.state_ids[c.index()]
    }

    /// Resolves a commit content address to its graph id, if this store
    /// has the commit.
    pub fn find_commit(&self, oid: ObjectId) -> Option<CommitId> {
        self.commit_index.get(&oid).copied()
    }

    /// Whether this store has the commit addressed by `oid`.
    pub fn has_commit(&self, oid: ObjectId) -> bool {
        self.commit_index.contains_key(&oid)
    }

    /// The raw commit-record bytes stored under `oid`, or `None` when the
    /// store has no such commit. These bytes are what travels on the wire
    /// during a fetch; [`parse_commit_record`] reads them back.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Corrupt`] from the backend.
    pub fn commit_record_bytes(&self, oid: ObjectId) -> Result<Option<Vec<u8>>, StoreError> {
        if !self.has_commit(oid) {
            return Ok(None);
        }
        self.backend.get(oid)
    }

    /// The typed state stored under the state address `oid`, if any commit
    /// in this store carries it (cheap `Arc` clone).
    pub fn state_payload(&self, oid: ObjectId) -> Option<Arc<M>> {
        self.state_index
            .get(&oid)
            .map(|c| self.graph.payload(*c).clone())
    }

    /// The canonical bytes of the state stored under `oid`, if any commit
    /// carries it. A full snapshot costs one backend read; a delta-stored
    /// state is resolved through its chain (each link hash-verified, at
    /// most `snapshot_interval - 1` links). The returned bytes are exactly
    /// what travels in a fetch/push and hash to `oid` — the canonical
    /// encoding **is** the wire format, so serving costs zero re-encodes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Corrupt`] from the backend,
    /// including a delta chain that fails to resolve to bytes hashing to
    /// their address.
    pub fn state_bytes(&self, oid: ObjectId) -> Result<Option<Vec<u8>>, StoreError> {
        if !self.state_index.contains_key(&oid) {
            return Ok(None);
        }
        let mut cache = HashMap::new();
        let mut deps = HashMap::new();
        let Some((bytes, links)) = resolve_state_record(&self.backend, oid, &mut cache, &mut deps)?
        else {
            return Ok(None);
        };
        if let Some(m) = &self.metrics {
            if links > 0 {
                m.delta_resolves_total.inc();
            }
        }
        Ok(Some(bytes.as_ref().clone()))
    }

    /// The stored **delta form** of the state under `oid`: `Some((base,
    /// delta_wire))` when the backend holds it as a delta record, `None`
    /// when it is a full snapshot (or not held at all). The sync server
    /// uses this to ship O(delta) bytes when the peer's `haves` prove it
    /// holds `base` — the delta bytes go out exactly as stored, and the
    /// receiver re-hashes the resolution against `oid` before trusting it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Corrupt`] from the backend.
    pub fn state_stored_delta(
        &self,
        oid: ObjectId,
    ) -> Result<Option<(ObjectId, Vec<u8>)>, StoreError> {
        if !self.state_index.contains_key(&oid) {
            return Ok(None);
        }
        let Some(record) = self.backend.get(oid)? else {
            return Ok(None);
        };
        match parse_state_record(&record) {
            Some(StateRecord::Delta { base, delta }) => Ok(Some((base, delta.to_vec()))),
            Some(StateRecord::Full(_)) => Ok(None),
            None => Err(StoreError::Corrupt(format!(
                "object {} is not a state record",
                oid.short()
            ))),
        }
    }

    /// Verifies and lands a pack of commit records and canonical state
    /// objects — the single ingest path replication uses.
    ///
    /// Verification is one hash and (for states) one decode per object,
    /// against the bytes exactly as they arrived — there is no second
    /// serialization to cross-check because there is no second
    /// serialization:
    ///
    /// * each **state** object's bytes must hash to its advertised id and
    ///   decode as a canonical `M` (undecodable or non-canonical bytes
    ///   are corruption, same as a wrong hash);
    /// * each **commit** record's bytes must hash to its advertised id;
    ///   its parents must precede it (in the pack or the store) and its
    ///   state address must name a state verified above or already held.
    ///
    /// The whole pack is verified **before anything is written**, so a
    /// corrupt object anywhere leaves the store untouched. Verified
    /// state bytes are then published in their one-byte state-record
    /// envelope with [`Backend::put_keyed`] and commit records with
    /// [`Backend::put_known`] (no re-hash), the commits enter the graph
    /// parents-first, and the
    /// Lamport clock advances past every tick the pack carried (the
    /// receive rule). Already-known commits are skipped idempotently,
    /// and **only states referenced by a freshly ingested commit are
    /// persisted** — a peer cannot grow this store's append-only backend
    /// with valid-but-unreferenced state objects.
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptObject`] on a hash mismatch;
    /// [`StoreError::Corrupt`] on undecodable objects, missing parents or
    /// unresolvable state references — for these verification failures
    /// nothing has been ingested. [`StoreError::Io`] from the backend
    /// during the landing phase can leave a *prefix* of the pack
    /// ingested; the store is still consistent (every landed commit is
    /// fully published, and the Lamport clock was advanced past the whole
    /// pack's ticks before landing began, so the receive rule holds for
    /// the prefix), and because ingest is idempotent and
    /// content-addressed, re-ingesting the same pack completes it.
    pub fn ingest_pack(
        &mut self,
        commits: &[(ObjectId, &[u8])],
        states: &[(ObjectId, &[u8])],
    ) -> Result<IngestReport, StoreError> {
        let full: Vec<PackState<'_>> = states
            .iter()
            .map(|(id, bytes)| PackState::Full { id: *id, bytes })
            .collect();
        self.ingest_pack_states(commits, &full)
    }

    /// [`BranchStore::ingest_pack`] for packs whose state objects may
    /// arrive in **delta form** ([`PackState::Delta`]) — the receiving
    /// half of delta sync. Deltas are resolved during verification
    /// (against a base held by this store or appearing earlier in the
    /// pack), and the resolved bytes must hash to the advertised id and
    /// decode canonically — exactly the checks full states get, so a
    /// drifted or hostile delta fails before anything is written.
    ///
    /// A verified delta state *lands* in delta form too, when its base is
    /// persisted and the chain bound allows — so an O(delta) fetch costs
    /// O(delta) disk as well as O(delta) wire. Otherwise the resolved
    /// snapshot is stored.
    ///
    /// # Errors
    ///
    /// As [`BranchStore::ingest_pack`]; additionally a delta that names a
    /// base neither held nor in the pack prefix, fails to apply, or
    /// resolves to bytes that do not hash to its advertised id is
    /// [`StoreError::Corrupt`] / [`StoreError::CorruptObject`] with
    /// nothing ingested.
    pub fn ingest_pack_states(
        &mut self,
        commits: &[(ObjectId, &[u8])],
        states: &[PackState<'_>],
    ) -> Result<IngestReport, StoreError> {
        // Phase 1: verify every state — resolve deltas, then one hash and
        // one decode per object, exactly as for full states. No writes.
        let mut typed: HashMap<ObjectId, Arc<M>> = HashMap::with_capacity(states.len());
        let mut resolved: HashMap<ObjectId, Vec<u8>> = HashMap::with_capacity(states.len());
        let mut max_tick = 0u64;
        let mut delta_states = 0u64;
        let mut delta_saved_bytes = 0u64;
        for s in states {
            let (id, bytes) = match *s {
                PackState::Full { id, bytes } => (id, bytes.to_vec()),
                PackState::Delta { id, base, delta } => {
                    let base_bytes = match resolved.get(&base) {
                        Some(b) => b.clone(),
                        None => self.state_bytes(base)?.ok_or_else(|| {
                            StoreError::Corrupt(format!(
                                "delta state {} references base {} that is neither in the pack \
                                 prefix nor in the store",
                                id.short(),
                                base.short()
                            ))
                        })?,
                    };
                    let d = Delta::from_wire(delta).ok_or_else(|| {
                        StoreError::Corrupt(format!(
                            "state {} carries a malformed delta",
                            id.short()
                        ))
                    })?;
                    let bytes = d.apply(&base_bytes).ok_or_else(|| {
                        StoreError::Corrupt(format!(
                            "delta of state {} does not apply to its base",
                            id.short()
                        ))
                    })?;
                    delta_states += 1;
                    delta_saved_bytes += (bytes.len() as u64).saturating_sub(delta.len() as u64);
                    (id, bytes)
                }
            };
            let actual = content_id_of_bytes(&bytes);
            if actual != id {
                return Err(StoreError::CorruptObject {
                    expected: id,
                    actual,
                });
            }
            let m: M = decode_canonical(&bytes).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "state object {} is not a canonical state encoding",
                    id.short()
                ))
            })?;
            max_tick = max_tick.max(m.max_tick());
            typed.insert(id, Arc::new(m));
            resolved.insert(id, bytes);
        }

        // Phase 2: verify every commit record — one hash, plus structural
        // checks against the store ∪ the pack prefix. Still no writes.
        let mut incoming: HashSet<ObjectId> = HashSet::new();
        let mut fresh: Vec<(ObjectId, CommitMeta, &[u8])> = Vec::new();
        for (id, bytes) in commits {
            let actual = content_id_of_bytes(bytes);
            if actual != *id {
                return Err(StoreError::CorruptObject {
                    expected: *id,
                    actual,
                });
            }
            if self.has_commit(*id) || incoming.contains(id) {
                continue; // idempotent re-ingest
            }
            let meta = parse_commit_record(bytes).ok_or_else(|| {
                StoreError::Corrupt(format!("malformed commit record {}", id.short()))
            })?;
            for p in &meta.parents {
                if !self.has_commit(*p) && !incoming.contains(p) {
                    return Err(StoreError::Corrupt(format!(
                        "ingest of {} before its parent {}",
                        id.short(),
                        p.short()
                    )));
                }
            }
            if !typed.contains_key(&meta.state) && !self.state_index.contains_key(&meta.state) {
                return Err(StoreError::Corrupt(format!(
                    "commit {} references state {} that is neither in the pack nor in the store",
                    id.short(),
                    meta.state.short()
                )));
            }
            max_tick = max_tick.max(meta.tick);
            incoming.insert(*id);
            fresh.push((*id, meta, bytes));
        }

        // Verification is complete: advance the Lamport clock *before*
        // landing, so even if a backend Io error strands a prefix of the
        // pack, every commit visible through the public API already had
        // its ticks observed (the receive rule holds for the prefix).
        self.observe_tick(max_tick);

        // Phase 3: land. Verified bytes go down without a second hash —
        // but only states some fresh commit pins: persisting unreferenced
        // (if valid) objects would let a peer grow the backend forever.
        // Pack order guarantees a delta's base (when it is in the pack)
        // lands before its dependants, so the `contains` check below sees
        // it; a base not pinned by any fresh commit simply fails the
        // check and the dependant lands as a snapshot.
        let mut needed: HashSet<ObjectId> = fresh.iter().map(|(_, m, _)| m.state).collect();
        for s in states {
            let id = s.id();
            if !needed.remove(&id) {
                continue;
            }
            let canonical = &resolved[&id];
            if let PackState::Delta { base, delta, .. } = *s {
                if self.backend.contains(base)?
                    && self.try_put_delta(id, base, delta, canonical.len())?
                {
                    continue;
                }
            }
            self.backend.put_keyed(id, &state_record_full(canonical))?;
            if let Some(m) = &self.metrics {
                m.full_states_total.inc();
            }
        }
        for (id, meta, bytes) in &fresh {
            let state = match typed.get(&meta.state) {
                Some(s) => Arc::clone(s),
                None => self
                    .state_payload(meta.state)
                    .expect("checked in phase 2: state is in pack or store"),
            };
            let parent_cids: Vec<CommitId> = meta
                .parents
                .iter()
                .map(|p| self.find_commit(*p).expect("checked in phase 2"))
                .collect();
            self.backend.put_known(*id, bytes)?;
            self.install_commit(
                parent_cids,
                state,
                meta.state,
                *id,
                (meta.tick, meta.replica),
            );
        }
        // One pack, one durability point — however many objects landed.
        self.durability_point()?;
        let report = IngestReport {
            commits: fresh.len() as u64,
            states: states.len() as u64,
            max_tick,
            delta_states,
            delta_saved_bytes,
        };
        if let Some(m) = &self.metrics {
            m.ingest_packs_total.inc();
            m.ingest_commits_total.add(report.commits);
            m.ingest_states_total.add(report.states);
            m.trace("ingest_pack", "", report.commits);
        }
        Ok(report)
    }

    /// The commits reachable from `wants` but not from `haves` — the
    /// object-negotiation walk of a fetch, answered entirely from the
    /// Merkle structure. Returned **parents before children**, so a
    /// receiver can ingest the list in order. Unknown ids on either side
    /// are ignored (a peer may advertise commits this store never saw).
    pub fn commits_between(&self, wants: &[ObjectId], haves: &[ObjectId]) -> Vec<CommitId> {
        let mut known: HashSet<CommitId> = HashSet::new();
        let mut stack: Vec<CommitId> = haves.iter().filter_map(|o| self.find_commit(*o)).collect();
        while let Some(c) = stack.pop() {
            if known.insert(c) {
                stack.extend(self.graph.parents(c).iter().copied());
            }
        }
        let mut missing: HashSet<CommitId> = HashSet::new();
        let mut stack: Vec<CommitId> = wants.iter().filter_map(|o| self.find_commit(*o)).collect();
        while let Some(c) = stack.pop() {
            if known.contains(&c) || !missing.insert(c) {
                continue;
            }
            stack.extend(self.graph.parents(c).iter().copied());
        }
        let mut out: Vec<CommitId> = missing.into_iter().collect();
        // Parents have strictly smaller generations, so ascending
        // generation order is a topological order.
        out.sort_by_key(|c| (self.graph.generation(*c), *c));
        out
    }

    /// Points branch `name` at an already-ingested commit, creating the
    /// branch or fast-forwarding it — how a fetch lands a remote head as a
    /// tracking branch, and how a pull fast-forwards instead of minting a
    /// redundant merge commit. Never moves a ref backwards or sideways:
    /// a diverged branch is reported as [`TrackOutcome::Diverged`] and left
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when `target` is not a commit of this store;
    /// [`StoreError::InvalidBranchName`] for an illegal new name;
    /// [`StoreError::Io`] if publishing the ref fails.
    pub fn track(&mut self, name: &str, target: ObjectId) -> Result<TrackOutcome, StoreError> {
        self.track_inner(name, target, false)
    }

    /// Like [`BranchStore::track`], but moves the ref even when the branch
    /// has diverged (discarding no commits — the old history stays in the
    /// graph). Fetch uses this for its own `remote/…` tracking refs, which
    /// mirror the peer and carry no local work.
    ///
    /// # Errors
    ///
    /// As [`BranchStore::track`].
    pub fn force_track(
        &mut self,
        name: &str,
        target: ObjectId,
    ) -> Result<TrackOutcome, StoreError> {
        self.track_inner(name, target, true)
    }

    fn track_inner(
        &mut self,
        name: &str,
        target: ObjectId,
        force: bool,
    ) -> Result<TrackOutcome, StoreError> {
        let head = self.find_commit(target).ok_or_else(|| {
            StoreError::Corrupt(format!("track target {} not ingested", target.short()))
        })?;
        match self.branches.get(name) {
            None => {
                let id = BranchId::new(name)?;
                self.set_head(name, head)?;
                let replica = ReplicaId::new(self.next_replica);
                self.next_replica += 1;
                self.branches
                    .insert(name.to_owned(), BranchInfo { head, replica, id });
                self.durability_point()?;
                Ok(TrackOutcome::Created)
            }
            Some(info) if info.head == head => Ok(TrackOutcome::Unchanged),
            Some(info) => {
                let fast_forward = self.graph.is_ancestor(info.head, head);
                if !fast_forward && !force {
                    return Ok(TrackOutcome::Diverged);
                }
                self.set_head(name, head)?;
                self.branches.get_mut(name).expect("branch checked").head = head;
                self.durability_point()?;
                Ok(if fast_forward {
                    TrackOutcome::FastForwarded
                } else {
                    TrackOutcome::Diverged
                })
            }
        }
    }

    /// The store's current Lamport tick (the last timestamp minted).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the store's Lamport clock to at least `tick` — the
    /// **receive rule**: after ingesting remote state whose largest
    /// embedded tick is `tick`, later local operations mint timestamps
    /// that order after everything merged in (the cross-store half of
    /// Ψ_ts's happens-before consistency).
    pub fn observe_tick(&mut self, tick: u64) {
        self.tick = self.tick.max(tick);
    }

    /// **Mutation-testing surface — never call in production code.** Sets
    /// the Lamport clock to exactly `tick`, even *backwards*, bypassing
    /// the receive rule [`BranchStore::observe_tick`] enforces. The
    /// replication-mutant suite in `peepul-verify` uses this to enact a
    /// "broken receive rule" fault (ingest remote state, then forget its
    /// ticks) and prove the `Φ_ra` checker catches the resulting
    /// happens-before violation. Analogous to the segment engine's
    /// `CompactionFault` knob: a deliberate hole drilled for verification,
    /// kept on the store so the mutant exercises the *real* minting path.
    pub fn force_clock(&mut self, tick: u64) {
        self.tick = tick;
    }

    /// The `(tick, replica)` timestamp commit `c` minted, as recorded in
    /// its commit record. Roots and merge commits mint the sentinel
    /// `(0, 0)` — they create no event; operation commits carry the
    /// timestamp of the single event they landed.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to this store's graph.
    pub fn commit_mint(&self, c: CommitId) -> Timestamp {
        self.mints[c.index()]
    }

    /// The mints of every **operation** commit in `c`'s ancestry
    /// (`c` included), ascending — the set of events *visible* at `c`.
    ///
    /// Roots and merges (mint `(0, 0)`) are excluded: they create no
    /// event, so the remaining timestamps are exactly the abstract
    /// execution a branch head at `c` has observed. This is the witness
    /// the replication-aware linearizability checker records at every
    /// local operation, head movement and observation.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to this store's graph.
    pub fn visible_mints(&self, c: CommitId) -> Vec<Timestamp> {
        let mut out: Vec<Timestamp> = self
            .graph
            .ancestors(c)
            .into_iter()
            .map(|a| self.mints[a.index()])
            .filter(|t| t.tick() > 0)
            .collect();
        out.sort_unstable();
        out
    }
}

impl<M: Mrdt, B: Backend> fmt::Debug for BranchStore<M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BranchStore({} branches, {} commits, tick {}, {} backend, {:?})",
            self.branches.len(),
            self.graph.len(),
            self.tick,
            self.backend.kind(),
            self.memo
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_types::counter::{Counter, CounterOp, CounterQuery};
    use peepul_types::or_set::{OrSet, OrSetOp, OrSetOutput, OrSetQuery};
    use peepul_types::queue::{Queue, QueueOp, QueueValue};

    #[test]
    fn fork_copies_state_and_mints_new_replica() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        assert_eq!(s.state("dev").unwrap().count(), 1);
        assert_ne!(s.replica_of("main").unwrap(), s.replica_of("dev").unwrap());
    }

    #[test]
    fn unknown_branch_errors_at_handle_creation() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        assert_eq!(
            s.branch_mut("nope").err(),
            Some(StoreError::UnknownBranch("nope".into()))
        );
        assert_eq!(
            s.branch("nope").err(),
            Some(StoreError::UnknownBranch("nope".into()))
        );
        assert!(matches!(
            s.branch_mut("main").unwrap().fork("main"),
            Err(StoreError::BranchExists(_))
        ));
    }

    #[test]
    fn invalid_branch_names_are_rejected() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        assert!(matches!(
            s.branch_mut("main").unwrap().fork(""),
            Err(StoreError::InvalidBranchName(_))
        ));
        assert!(matches!(
            s.branch_mut("main").unwrap().fork("bad\nname"),
            Err(StoreError::InvalidBranchName(_))
        ));
        assert!(matches!(
            BranchId::new("nul\0"),
            Err(StoreError::InvalidBranchName(_))
        ));
    }

    #[test]
    fn divergent_counters_merge_additively() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        for _ in 0..3 {
            s.branch_mut("main")
                .unwrap()
                .apply(&CounterOp::Increment)
                .unwrap();
        }
        for _ in 0..2 {
            s.branch_mut("dev")
                .unwrap()
                .apply(&CounterOp::Increment)
                .unwrap();
        }
        s.branch_mut("main").unwrap().merge_from("dev").unwrap();
        assert_eq!(s.state("main").unwrap().count(), 5);
        // dev hasn't pulled yet.
        assert_eq!(s.state("dev").unwrap().count(), 2);
        s.branch_mut("dev").unwrap().merge_from("main").unwrap();
        assert_eq!(s.state("dev").unwrap().count(), 5);
    }

    #[test]
    fn merge_of_contained_history_is_noop() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        let commits_before = s.commit_count();
        // dev is an ancestor of main: nothing to do.
        s.branch_mut("main").unwrap().merge_from("dev").unwrap();
        assert_eq!(s.commit_count(), commits_before);
    }

    #[test]
    fn or_set_add_wins_through_the_store() {
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(1))
            .unwrap();
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        s.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Remove(1))
            .unwrap();
        s.branch_mut("dev")
            .unwrap()
            .apply(&OrSetOp::Add(1))
            .unwrap();
        s.branch_mut("main").unwrap().merge_from("dev").unwrap();
        // The lookup is a commit-free read.
        let commits = s.commit_count();
        let v = s.read("main", &OrSetQuery::Lookup(1)).unwrap();
        assert_eq!(v, OrSetOutput::Present(true));
        assert_eq!(s.commit_count(), commits);
    }

    #[test]
    fn criss_cross_merge_resolves_via_recursive_lca() {
        // Build the criss-cross: both branches add elements, merge into
        // each other (creating two merge commits with swapped parents),
        // diverge again, then merge. merge_bases yields two candidates and
        // the recursive virtual LCA must still produce a correct merge.
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("a");
        s.branch_mut("a").unwrap().apply(&OrSetOp::Add(0)).unwrap();
        s.branch_mut("a").unwrap().fork("b").unwrap();
        s.branch_mut("a").unwrap().apply(&OrSetOp::Add(1)).unwrap();
        s.branch_mut("b").unwrap().apply(&OrSetOp::Add(2)).unwrap();
        // Criss-cross: each pulls the other.
        s.branch_mut("a").unwrap().merge_from("b").unwrap();
        s.branch_mut("b").unwrap().merge_from("a").unwrap();
        // Diverge again.
        s.branch_mut("a").unwrap().apply(&OrSetOp::Add(3)).unwrap();
        s.branch_mut("b").unwrap().apply(&OrSetOp::Add(4)).unwrap();
        s.branch_mut("a").unwrap().merge_from("b").unwrap();
        let OrSetOutput::Elements(elems) = s.read("a", &OrSetQuery::Read).unwrap() else {
            panic!("read returns elements");
        };
        assert_eq!(elems, vec![0, 1, 2, 3, 4]);
    }

    /// Builds a *true* criss-cross: two merge commits with swapped parents
    /// created from the same pair of heads. Sequential `merge(a,b);
    /// merge(b,a)` cannot produce one (the second merge already sees the
    /// first's result), so the swapped merge goes through helper forks.
    /// Afterwards `merge_bases(x, y2)` yields two maximal candidates.
    fn criss_cross_store() -> BranchStore<OrSet<u32>> {
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("x");
        s.branch_mut("x").unwrap().apply(&OrSetOp::Add(0)).unwrap();
        s.branch_mut("x").unwrap().fork("y").unwrap();
        s.branch_mut("x").unwrap().apply(&OrSetOp::Add(1)).unwrap(); // x1
        s.branch_mut("y").unwrap().apply(&OrSetOp::Add(2)).unwrap(); // y1
        s.branch_mut("x").unwrap().fork("x-pin").unwrap();
        s.branch_mut("y").unwrap().fork("y2").unwrap();
        s.branch_mut("x").unwrap().merge_from("y").unwrap(); // m1 = (x1, y1)
        s.branch_mut("y2").unwrap().merge_from("x-pin").unwrap(); // m2 = (y1, x1) — the criss-cross
        s.branch_mut("x").unwrap().apply(&OrSetOp::Add(3)).unwrap();
        s.branch_mut("y2").unwrap().apply(&OrSetOp::Add(4)).unwrap();
        s
    }

    #[test]
    fn repeated_criss_cross_merges_hit_the_merge_cache() {
        let mut s = criss_cross_store();
        let (hx, hy) = (s.head("x").unwrap(), s.head("y2").unwrap());
        assert_eq!(s.graph().merge_bases(hx, hy).len(), 2, "need a criss-cross");

        // Building the criss-cross merged (lca, y1, x1) already; the
        // virtual merge of the two bases re-derives that exact triple, so
        // even the *first* LCA computation hits the cache.
        assert_eq!(s.merge_cache_stats().hits, 0);
        s.lca_state("x", "y2").unwrap();
        let after_first = s.merge_cache_stats();
        assert!(
            after_first.hits >= 1,
            "virtual base merge must hit: {after_first:?}"
        );
        // Recomputing the LCA re-derives the identical triple again.
        s.lca_state("x", "y2").unwrap();
        let after_second = s.merge_cache_stats();
        assert!(after_second.hits > after_first.hits, "{after_second:?}");
        // A real merge between the branches re-derives it again.
        s.branch_mut("x").unwrap().merge_from("y2").unwrap();
        let after_merge = s.merge_cache_stats();
        assert!(after_merge.hits > after_second.hits, "{after_merge:?}");
        assert!(after_merge.hit_rate() > 0.0);

        // Correctness is untouched by the cache.
        let OrSetOutput::Elements(elems) = s.read("x", &OrSetQuery::Read).unwrap() else {
            panic!("read returns elements");
        };
        assert_eq!(elems, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lca_state_needs_no_mut_and_mints_no_commit() {
        let s = criss_cross_store();
        let commits = s.commit_count();
        // Shared reference only: the signature itself is the proof that no
        // &mut is needed.
        let shared: &BranchStore<OrSet<u32>> = &s;
        let lca = shared.lca_state("x", "y2").unwrap();
        assert!(lca.contains(&0) && lca.contains(&1) && lca.contains(&2));
        assert_eq!(shared.commit_count(), commits, "LCA reads mint no commits");
    }

    #[test]
    fn probe_branches_reuse_the_cached_base_merge() {
        let mut s = criss_cross_store();
        // Fork probes off the x side; each merge with y2 recomputes the
        // same two-base virtual merge — only the first is a miss.
        for i in 0..4 {
            s.branch_mut("x")
                .unwrap()
                .fork(format!("probe-{i}"))
                .unwrap();
        }
        for i in 0..4 {
            s.branch_mut(&format!("probe-{i}"))
                .unwrap()
                .merge_from("y2")
                .unwrap();
        }
        let stats = s.merge_cache_stats();
        assert!(
            stats.hits >= 3,
            "probes must share the base merge: {stats:?}"
        );
    }

    #[test]
    fn cached_and_uncached_merges_produce_identical_heads() {
        let run = |cache: bool| {
            let mut s: BranchStore<OrSet<u32>> = BranchStore::new("a");
            s.set_merge_cache(cache);
            s.branch_mut("a").unwrap().fork("b").unwrap();
            for round in 0..5u32 {
                s.branch_mut("a")
                    .unwrap()
                    .apply(&OrSetOp::Add(round))
                    .unwrap();
                s.branch_mut("b")
                    .unwrap()
                    .apply(&OrSetOp::Add(round + 100))
                    .unwrap();
                s.branch_mut("a").unwrap().merge_from("b").unwrap();
                s.branch_mut("b").unwrap().merge_from("a").unwrap();
            }
            (s.head_id("a").unwrap(), s.state_id("b").unwrap())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn backend_refs_track_branch_heads() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        s.branch_mut("dev")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        assert_eq!(
            s.backend().get_ref("main").unwrap(),
            Some(s.head_id("main").unwrap())
        );
        assert_eq!(
            s.backend().get_ref("dev").unwrap(),
            Some(s.head_id("dev").unwrap())
        );
        // Every published state is retrievable and integrity-checked.
        let sid = s.state_id("dev").unwrap();
        assert!(s.backend().contains(sid).unwrap());
    }

    #[test]
    fn converged_branches_share_one_state_object() {
        let mut s: BranchStore<Counter> = BranchStore::new("x");
        s.branch_mut("x").unwrap().fork("y").unwrap();
        s.branch_mut("x")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        s.branch_mut("y")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        s.branch_mut("x").unwrap().merge_from("y").unwrap();
        s.branch_mut("y").unwrap().merge_from("x").unwrap();
        // Equal states intern to one content address in the backend.
        assert_eq!(s.state_id("x").unwrap(), s.state_id("y").unwrap());
    }

    #[test]
    fn queue_fifo_across_branches() {
        let mut s: BranchStore<Queue<String>> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&QueueOp::Enqueue("job-1".into()))
            .unwrap();
        s.branch_mut("main").unwrap().fork("worker").unwrap();
        s.branch_mut("main")
            .unwrap()
            .apply(&QueueOp::Enqueue("job-2".into()))
            .unwrap();
        let v = s
            .branch_mut("worker")
            .unwrap()
            .apply(&QueueOp::Dequeue)
            .unwrap();
        assert!(matches!(v, QueueValue::Dequeued(Some((_, job))) if job == "job-1"));
        s.branch_mut("main").unwrap().merge_from("worker").unwrap();
        // job-1 consumed on worker; only job-2 remains on main.
        let v = s
            .branch_mut("main")
            .unwrap()
            .apply(&QueueOp::Dequeue)
            .unwrap();
        assert!(matches!(v, QueueValue::Dequeued(Some((_, job))) if job == "job-2"));
    }

    #[test]
    fn history_grows_with_operations() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        let h = s.branch("main").unwrap().history();
        assert_eq!(h.len(), 3); // root + 2 DO commits
        assert_eq!(
            h.last().copied(),
            s.branch("main").unwrap().history().last().copied()
        );
    }

    #[test]
    fn timestamps_are_unique_across_branches() {
        // Indirectly observable through the OR-set's stored pairs.
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("main");
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        s.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(1))
            .unwrap();
        s.branch_mut("dev")
            .unwrap()
            .apply(&OrSetOp::Add(2))
            .unwrap();
        s.branch_mut("main").unwrap().merge_from("dev").unwrap();
        let main_state = s.state("main").unwrap();
        assert_eq!(main_state.pair_count(), 2);
    }

    #[test]
    fn branch_names_are_sorted_lexicographically() {
        let mut s: BranchStore<Counter> = BranchStore::new("zeta");
        s.branch_mut("zeta").unwrap().fork("alpha").unwrap();
        s.branch_mut("zeta").unwrap().fork("mu").unwrap();
        s.branch_mut("alpha").unwrap().fork("beta").unwrap();
        assert_eq!(s.branch_names(), vec!["alpha", "beta", "mu", "zeta"]);
        let mut sorted = s.branch_names();
        sorted.sort_unstable();
        assert_eq!(s.branch_names(), sorted, "branch_names is always sorted");
    }

    #[test]
    fn open_rebuilds_typed_state_from_a_reopened_backend() {
        // A full session with forks, concurrent ops and a criss-cross.
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(0))
            .unwrap();
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        s.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(1))
            .unwrap();
        s.branch_mut("dev")
            .unwrap()
            .apply(&OrSetOp::Add(2))
            .unwrap();
        s.branch_mut("main").unwrap().merge_from("dev").unwrap();
        s.branch_mut("dev").unwrap().merge_from("main").unwrap();
        s.branch_mut("dev")
            .unwrap()
            .apply(&OrSetOp::Remove(0))
            .unwrap();

        // "Restart": a fresh store over the same persisted objects/refs.
        let reopened: BranchStore<OrSet<u32>> = BranchStore::open(s.backend().clone()).unwrap();

        assert_eq!(reopened.branch_names(), s.branch_names());
        assert_eq!(reopened.commit_count(), s.commit_count());
        assert_eq!(reopened.tick(), s.tick(), "Lamport clock recovered");
        for b in s.branch_names() {
            assert_eq!(reopened.head_id(b).unwrap(), s.head_id(b).unwrap());
            assert_eq!(reopened.state_id(b).unwrap(), s.state_id(b).unwrap());
            assert_eq!(
                reopened.read(b, &OrSetQuery::Read).unwrap(),
                s.read(b, &OrSetQuery::Read).unwrap(),
                "typed queries answer identically after reopen"
            );
        }
        // The reopened store is fully live: updates, merges, LCA search.
        let mut reopened = reopened;
        reopened
            .branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(9))
            .unwrap();
        reopened
            .branch_mut("dev")
            .unwrap()
            .merge_from("main")
            .unwrap();
        let OrSetOutput::Elements(elems) = reopened.read("dev", &OrSetQuery::Read).unwrap() else {
            panic!("read returns elements");
        };
        assert!(elems.contains(&9));
    }

    #[test]
    fn open_of_an_empty_backend_is_refused() {
        let err = BranchStore::<Counter>::open(MemoryBackend::new()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
    }

    #[test]
    fn creating_over_a_used_backend_is_refused() {
        // The mirror-image guard: `with_backend` on a backend that already
        // holds refs would repoint the existing branch at a fresh root —
        // apparent data loss. It must refuse and direct callers to `open`.
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        let used = s.backend().clone();
        let err = BranchStore::<Counter>::with_backend("main", used.clone()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
        // The refused backend is untouched and still reopens faithfully.
        let reopened: BranchStore<Counter> = BranchStore::open(used).unwrap();
        assert_eq!(reopened.state("main").unwrap().count(), 1);
    }

    #[test]
    fn ingest_pack_verifies_before_writing_anything() {
        let mut src: BranchStore<Counter> = BranchStore::new("main");
        src.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        src.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        let head = src.head_id("main").unwrap();

        let mut dst: BranchStore<Counter> = BranchStore::new("main");
        let missing = src.commits_between(&[head], &[dst.head_id("main").unwrap()]);
        let commit_bytes: Vec<(ObjectId, Vec<u8>)> = missing
            .iter()
            .map(|c| {
                let oid = src.commit_oid(*c);
                (oid, src.commit_record_bytes(oid).unwrap().unwrap())
            })
            .collect();
        let state_bytes: Vec<(ObjectId, Vec<u8>)> = missing
            .iter()
            .map(|c| {
                let sid = src.state_oid(*c);
                (sid, src.state_bytes(sid).unwrap().unwrap())
            })
            .collect();
        let commits: Vec<(ObjectId, &[u8])> = commit_bytes
            .iter()
            .map(|(o, b)| (*o, b.as_slice()))
            .collect();
        let states: Vec<(ObjectId, &[u8])> = state_bytes
            .iter()
            .map(|(o, b)| (*o, b.as_slice()))
            .collect();

        // A flipped byte anywhere in a state fails the whole pack and
        // leaves the store untouched.
        let before_objects = dst.backend().object_count();
        let before_commits = dst.commit_count();
        let mut corrupt = state_bytes.clone();
        corrupt[0].1[0] ^= 0xff;
        let corrupt_states: Vec<(ObjectId, &[u8])> =
            corrupt.iter().map(|(o, b)| (*o, b.as_slice())).collect();
        let err = dst.ingest_pack(&commits, &corrupt_states).unwrap_err();
        assert!(matches!(err, StoreError::CorruptObject { .. }));
        assert_eq!(dst.backend().object_count(), before_objects);
        assert_eq!(dst.commit_count(), before_commits);

        // The honest pack lands with one decode + one hash per object,
        // and re-ingest is idempotent.
        let report = dst.ingest_pack(&commits, &states).unwrap();
        assert_eq!(report.commits, 2);
        assert_eq!(report.states, 2);
        assert!(dst.has_commit(head));
        assert_eq!(dst.tick(), 2, "receive rule ran");
        let again = dst.ingest_pack(&commits, &states).unwrap();
        assert_eq!(again.commits, 0);
        dst.track("main", head).unwrap();
        assert_eq!(dst.state("main").unwrap().count(), 2);
    }

    #[test]
    fn commit_record_parse_roundtrip() {
        let a = crate::object::content_id(&1u8);
        let b = crate::object::content_id(&2u8);
        let s = crate::object::content_id(&3u8);
        let bytes = commit_record(&[a, b], s, 7, 9);
        let meta = parse_commit_record(&bytes).unwrap();
        assert_eq!(
            meta,
            CommitMeta {
                parents: vec![a, b],
                state: s,
                tick: 7,
                replica: 9
            }
        );
        let root = parse_commit_record(&commit_record(&[], s, 0, 0)).unwrap();
        assert!(root.parents.is_empty());
        assert_eq!(parse_commit_record(b"not a commit"), None);
        assert_eq!(parse_commit_record(&bytes[..bytes.len() - 1]), None);
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(parse_commit_record(&trailing), None);
        // Distinct mints ⇒ distinct commit identities, even for identical
        // parents and state — the property multi-store replication needs.
        assert_ne!(bytes, commit_record(&[a, b], s, 8, 9));
        assert_ne!(bytes, commit_record(&[a, b], s, 7, 10));
    }

    #[test]
    fn replication_surface_walks_and_ingests() {
        // Build a small history on one store, replay it object-by-object
        // into a fresh store through the public ingest surface, and check
        // the Merkle heads agree.
        let mut src: BranchStore<Counter> = BranchStore::new("main");
        src.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        src.branch_mut("main").unwrap().fork("dev").unwrap();
        src.branch_mut("dev")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        src.branch_mut("main").unwrap().merge_from("dev").unwrap();
        let head = src.head_id("main").unwrap();

        let mut dst: BranchStore<Counter> = BranchStore::new("main");
        let missing = src.commits_between(&[head], &[dst.head_id("main").unwrap()]);
        // Both stores share the root commit (same initial state), so only
        // the two DO commits and the merge commit are missing.
        assert_eq!(missing.len(), 3);
        let root = src.graph().ids().next().unwrap();
        assert!(!missing.contains(&root));
        // Replay commit-by-commit (each its own one-commit pack), proving
        // the parents-first contract and idempotence of the ingest path.
        for c in missing {
            let oid = src.commit_oid(c);
            let record = src.commit_record_bytes(oid).unwrap().unwrap();
            let meta = parse_commit_record(&record).unwrap();
            let state_bytes = src.state_bytes(meta.state).unwrap().unwrap();
            let commits = [(oid, record.as_slice())];
            let states = [(meta.state, state_bytes.as_slice())];
            let report = dst.ingest_pack(&commits, &states).unwrap();
            assert_eq!(report.commits, 1);
            assert!(dst.has_commit(oid));
            // Idempotent.
            let again = dst.ingest_pack(&commits, &states).unwrap();
            assert_eq!(again.commits, 0);
        }
        assert!(dst.has_commit(head));
        assert_eq!(dst.track("tracking", head).unwrap(), TrackOutcome::Created);
        assert_eq!(dst.head_id("tracking").unwrap(), head);
        assert_eq!(dst.state("tracking").unwrap().count(), 2);
        // Fast-forward "main" (still at the shared root) onto the head.
        assert_eq!(
            dst.track("main", head).unwrap(),
            TrackOutcome::FastForwarded
        );
        assert_eq!(dst.track("main", head).unwrap(), TrackOutcome::Unchanged);
    }

    #[test]
    fn ingest_rejects_corrupt_and_orphaned_commits() {
        let mut src: BranchStore<Counter> = BranchStore::new("main");
        src.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        src.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        let head = src.head("main").unwrap();
        let parent = src.graph().parents(head)[0];
        let head_oid = src.commit_oid(head);

        let record = src.commit_record_bytes(head_oid).unwrap().unwrap();
        let meta = parse_commit_record(&record).unwrap();
        assert_eq!(meta.parents, vec![src.commit_oid(parent)]);

        let mut dst: BranchStore<Counter> = BranchStore::new("main");
        let record_bytes = src.commit_record_bytes(head_oid).unwrap().unwrap();
        let state_bytes = src.state_bytes(meta.state).unwrap().unwrap();
        // Wrong bytes for the advertised state id → CorruptObject with
        // both ids, before anything is written.
        let wrong_state = Counter::initial();
        let err = dst
            .ingest_pack(
                &[(head_oid, record_bytes.as_slice())],
                &[(meta.state, canonical_bytes(&wrong_state).as_slice())],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            StoreError::CorruptObject { expected, .. } if expected == meta.state
        ));
        // Right state but the parent was never ingested → Corrupt.
        let err = dst
            .ingest_pack(
                &[(head_oid, record_bytes.as_slice())],
                &[(meta.state, state_bytes.as_slice())],
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
        // Tracking an unknown commit is refused.
        assert!(dst.track("t", head_oid).is_err());
    }

    #[test]
    fn diverged_track_is_refused_unless_forced() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        s.branch_mut("dev")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        let dev_head = s.head_id("dev").unwrap();
        let main_head = s.head_id("main").unwrap();
        assert_eq!(s.track("main", dev_head).unwrap(), TrackOutcome::Diverged);
        assert_eq!(s.head_id("main").unwrap(), main_head, "ref untouched");
        assert_eq!(
            s.force_track("main", dev_head).unwrap(),
            TrackOutcome::Diverged
        );
        assert_eq!(s.head_id("main").unwrap(), dev_head, "forced move");
    }

    #[test]
    fn observe_tick_implements_the_receive_rule() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        assert_eq!(s.tick(), 1);
        s.observe_tick(100);
        assert_eq!(s.tick(), 100);
        s.observe_tick(5); // never rewinds
        assert_eq!(s.tick(), 100);
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        assert_eq!(s.tick(), 101, "next op orders after everything observed");
    }

    #[test]
    fn replica_bases_separate_fleet_id_ranges() {
        let a: BranchStore<Counter> =
            BranchStore::with_backend_and_base("main", MemoryBackend::new(), 0x1_0000).unwrap();
        assert_eq!(a.replica_of("main").unwrap(), ReplicaId::new(0x1_0000));
        let b: BranchStore<Counter> = BranchStore::new("main");
        assert_eq!(b.replica_of("main").unwrap(), ReplicaId::new(0));
        // Same initial state ⇒ same root commit on both stores, so fleets
        // with disjoint replica ranges still share history.
        assert_eq!(a.head_id("main").unwrap(), b.head_id("main").unwrap());
    }

    #[test]
    fn read_answers_queries_without_commits() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        let commits = s.commit_count();
        for _ in 0..100 {
            assert_eq!(s.read("main", &CounterQuery::Value).unwrap(), 1);
        }
        assert_eq!(s.commit_count(), commits);
        assert_eq!(
            s.read("nope", &CounterQuery::Value),
            Err(StoreError::UnknownBranch("nope".into()))
        );
    }
}

impl<M: Mrdt, B: Backend> BranchStore<M, B> {
    /// Renders the commit DAG with branch heads in Graphviz DOT format —
    /// `git log --graph` for this store. Pipe through `dot -Tsvg` to
    /// visualise criss-cross histories. Branch heads render in sorted name
    /// order, so the output is deterministic across backends and runs.
    pub fn to_dot(&self) -> String {
        let heads: std::collections::BTreeMap<String, crate::dag::CommitId> = self
            .branches
            .iter()
            .map(|(name, info)| (name.clone(), info.head))
            .collect();
        crate::dot::render(&self.graph, |state| format!("{state:?}"), &heads)
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use peepul_types::counter::{Counter, CounterOp};

    #[test]
    fn branch_store_renders_to_dot() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        s.branch_mut("dev")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        s.branch_mut("main").unwrap().merge_from("dev").unwrap();
        let dot = s.to_dot();
        assert!(dot.contains("\"main\""));
        assert!(dot.contains("\"dev\""));
        assert!(dot.contains("Counter"));
    }
}

//! Pluggable object persistence: the [`Backend`] trait and the in-memory
//! reference implementation.
//!
//! The paper runs its certified MRDTs on Irmin, a content-addressed store
//! with *pluggable backends* (in-memory, on-disk, Git). This module is the
//! workspace's version of that seam: a backend stores immutable byte
//! objects addressed by the SHA-256 of their content, plus a mutable
//! namespace of refs (branch heads), exactly Git's object-store/refs
//! split. [`BranchStore`](crate::BranchStore) publishes every state and
//! commit it creates through a backend, so the same branch-and-merge
//! semantics runs unchanged over [`MemoryBackend`] or the append-only
//! on-disk [`SegmentBackend`](crate::SegmentBackend).
//!
//! Object bytes are the value's canonical encoding
//! ([`canonical_bytes`](crate::object::canonical_bytes)), which hashes to
//! its [`ObjectId`] — every stored object is integrity-checkable against
//! its own address.

use crate::error::StoreError;
use crate::object::ObjectId;
use crate::sha256::Sha256;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Default delta-chain bound `K`: a full snapshot state is written at
/// least every `K` commits, so resolving any stored state costs at most
/// `K − 1` delta applications. See [`Backend::snapshot_interval`].
pub const DEFAULT_SNAPSHOT_INTERVAL: u32 = 16;

/// Interning counters a backend keeps for the dedup the content
/// addressing bought (Irmin/Git-style structural sharing).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Total `put` calls.
    pub puts: u64,
    /// `put` calls that found the object already stored (deduplicated).
    pub dedup_hits: u64,
}

/// What a garbage-collection sweep found (and, for
/// [`Backend::collect_garbage`], reclaimed): stored objects partitioned
/// against a caller-supplied live set.
///
/// `dead` objects are those present in the backend but absent from the
/// live set — orphaned forks, superseded scratch states, the leftovers of
/// a rejected push. `live_bytes` is the denominator of *disk
/// amplification* (bytes on disk ÷ live bytes), the storage-health metric
/// the sustained-write bench gates on.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Stored objects in the live set.
    pub live_objects: u64,
    /// Stored objects *not* in the live set (reclaimable).
    pub dead_objects: u64,
    /// Payload bytes of the live objects.
    pub live_bytes: u64,
    /// Payload bytes of the dead objects.
    pub dead_bytes: u64,
}

/// Storage-engine facts an operator asks for first — what `serve-status`
/// reports and the observability registry publishes as gauges. Volatile
/// backends return the [`Default`] (zeros, `"volatile"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageInfo {
    /// Total bytes currently on disk (all segment files).
    pub disk_bytes: u64,
    /// Number of storage files (active + sealed segments + packs).
    pub segments: u64,
    /// Fsyncs issued since open.
    pub fsyncs: u64,
    /// Human-readable durability/flush policy
    /// (`"volatile"`, `"per-commit"`, `"coalesced:5ms"`, `"explicit"`,
    /// `"none"`).
    pub flush: String,
}

impl Default for StorageInfo {
    fn default() -> Self {
        StorageInfo {
            disk_bytes: 0,
            segments: 0,
            fsyncs: 0,
            flush: "volatile".to_string(),
        }
    }
}

/// Abstract object persistence: content-addressed immutable objects plus
/// named mutable refs.
///
/// Implementations must guarantee:
///
/// * `put(bytes)` returns `sha256(bytes)` and is idempotent — putting the
///   same bytes twice stores one object;
/// * `get(id)` returns exactly the bytes that were put (or `None`);
/// * refs are last-writer-wins by `set_ref` order;
/// * once `put`/`set_ref` returns `Ok`, the write is *published*:
///   subsequent reads through the same backend observe it, and a
///   persistent backend recovers a **prefix** of the publish order after
///   a crash — never a reordering or a gap. *When* the prefix is forced
///   to stable storage is governed by the backend's flush policy (see
///   [`FlushPolicy`](crate::FlushPolicy) and [`Backend::commit_boundary`]);
///   under the per-commit default every completed commit boundary is
///   durable.
///
/// The trait is object-safe; `Box<dyn Backend + Send + Sync>` implements it too,
/// which is how the test harness drives every suite over both backends.
pub trait Backend: fmt::Debug {
    /// Stores `bytes` under their content address and returns it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on persistence failure.
    fn put(&mut self, bytes: &[u8]) -> Result<ObjectId, StoreError>;

    /// Stores `bytes` whose content address `id` the **caller has already
    /// computed and verified** (`id == sha256(bytes)`) — the ingest hot
    /// path, which has just hash-checked every received object and must
    /// not pay a second SHA-256 per store. Implementations may trust `id`
    /// (they debug-assert it); a caller that lies corrupts its own store,
    /// exactly as if it had scribbled on the segment file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on persistence failure.
    fn put_known(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(), StoreError> {
        let computed = self.put(bytes)?;
        debug_assert_eq!(computed, id, "put_known caller must pass sha256(bytes)");
        Ok(())
    }

    /// Stores `bytes` under a **caller-chosen** address `id` that is *not*
    /// the hash of `bytes` — the delta-storage path, where a state's
    /// content address is the sha256 of its full canonical encoding but
    /// the stored record is a wrapped delta against a parent state
    /// (`peepul-store`'s state-record envelope). The caller owns the
    /// integrity argument: it must be able to resolve the stored record
    /// back to bytes hashing to `id` and re-verify that hash on every
    /// resolution, which is exactly what
    /// [`BranchStore`](crate::BranchStore)'s chain resolution does.
    /// Idempotent per `id`: a second `put_keyed` under a stored address is
    /// a dedup no-op.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on persistence failure.
    fn put_keyed(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(), StoreError>;

    /// How many commits may chain as deltas before the store must write a
    /// full snapshot state — the `K` bound on delta-chain length, so cold
    /// reads and reopen resolve at most `K − 1` links. `0` disables delta
    /// storage entirely (every state is stored full). Persistent backends
    /// surface their configured [`SegmentOptions`](crate::SegmentOptions)
    /// value; the default is [`DEFAULT_SNAPSHOT_INTERVAL`].
    fn snapshot_interval(&self) -> u32 {
        DEFAULT_SNAPSHOT_INTERVAL
    }

    /// Fetches the bytes stored under `id`, or `None` if absent.
    ///
    /// For a content-addressed object ([`Backend::put`]/
    /// [`Backend::put_known`]) these are bytes hashing to `id`; for a
    /// keyed record ([`Backend::put_keyed`]) they are the record exactly
    /// as the caller stored it, which the caller verifies by resolving.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure; [`StoreError::Corrupt`] if the
    /// stored bytes match neither `id` as content hash nor a keyed record
    /// stored under `id`.
    fn get(&self, id: ObjectId) -> Result<Option<Vec<u8>>, StoreError>;

    /// Whether an object is stored under `id`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure.
    fn contains(&self, id: ObjectId) -> Result<bool, StoreError>;

    /// Points the ref `name` at `id` (creating or overwriting it).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on persistence failure.
    fn set_ref(&mut self, name: &str, id: ObjectId) -> Result<(), StoreError>;

    /// The current target of ref `name`, or `None`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure.
    fn get_ref(&self, name: &str) -> Result<Option<ObjectId>, StoreError>;

    /// All refs, sorted by name.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure.
    fn refs(&self) -> Result<Vec<(String, ObjectId)>, StoreError>;

    /// Number of distinct objects stored.
    fn object_count(&self) -> usize;

    /// Interning/dedup counters.
    fn stats(&self) -> BackendStats;

    /// Forces any buffered writes to stable storage (no-op for volatile
    /// backends).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on persistence failure.
    fn flush(&mut self) -> Result<(), StoreError>;

    /// Signals that the writes since the last boundary form one logical
    /// commit (a transaction, one `apply`, one ingested pack). Persistent
    /// backends schedule durability here per their flush policy — one
    /// fsync per *commit* (or fewer, under a coalesced/explicit policy),
    /// never one per record. The default is a full [`Backend::flush`],
    /// which is always correct.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on persistence failure.
    fn commit_boundary(&mut self) -> Result<(), StoreError> {
        self.flush()
    }

    /// Partitions the stored objects against `live` without reclaiming
    /// anything — a dry run of [`Backend::collect_garbage`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure.
    fn sweep_stats(&self, live: &HashSet<ObjectId>) -> Result<SweepStats, StoreError>;

    /// Reclaims every stored object **not** in `live`, returning the
    /// sweep that was applied. The caller owns the liveness argument:
    /// [`BranchStore::collect_garbage`](crate::BranchStore::collect_garbage)
    /// traces `live` from the branch refs through the commit graph, so
    /// anything reachable from a published head is never passed as dead.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on persistence failure.
    fn collect_garbage(&mut self, live: &HashSet<ObjectId>) -> Result<SweepStats, StoreError>;

    /// Reorganizes storage for read efficiency without dropping anything
    /// (for [`SegmentBackend`](crate::SegmentBackend): fold sealed
    /// segments into one packed file). Volatile backends no-op.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on persistence failure.
    fn compact(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    /// A short human-readable backend name (`"memory"`, `"segment"`).
    fn kind(&self) -> &'static str;

    /// Storage-engine facts for status reporting and observability.
    /// The default describes a volatile backend: no disk, no fsyncs.
    fn storage_info(&self) -> StorageInfo {
        StorageInfo::default()
    }
}

impl<B: Backend + ?Sized> Backend for Box<B> {
    fn put(&mut self, bytes: &[u8]) -> Result<ObjectId, StoreError> {
        (**self).put(bytes)
    }

    fn put_known(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(), StoreError> {
        (**self).put_known(id, bytes)
    }

    fn put_keyed(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(), StoreError> {
        (**self).put_keyed(id, bytes)
    }

    fn snapshot_interval(&self) -> u32 {
        (**self).snapshot_interval()
    }

    fn get(&self, id: ObjectId) -> Result<Option<Vec<u8>>, StoreError> {
        (**self).get(id)
    }

    fn contains(&self, id: ObjectId) -> Result<bool, StoreError> {
        (**self).contains(id)
    }

    fn set_ref(&mut self, name: &str, id: ObjectId) -> Result<(), StoreError> {
        (**self).set_ref(name, id)
    }

    fn get_ref(&self, name: &str) -> Result<Option<ObjectId>, StoreError> {
        (**self).get_ref(name)
    }

    fn refs(&self) -> Result<Vec<(String, ObjectId)>, StoreError> {
        (**self).refs()
    }

    fn object_count(&self) -> usize {
        (**self).object_count()
    }

    fn stats(&self) -> BackendStats {
        (**self).stats()
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        (**self).flush()
    }

    fn commit_boundary(&mut self) -> Result<(), StoreError> {
        (**self).commit_boundary()
    }

    fn sweep_stats(&self, live: &HashSet<ObjectId>) -> Result<SweepStats, StoreError> {
        (**self).sweep_stats(live)
    }

    fn collect_garbage(&mut self, live: &HashSet<ObjectId>) -> Result<SweepStats, StoreError> {
        (**self).collect_garbage(live)
    }

    fn compact(&mut self) -> Result<(), StoreError> {
        (**self).compact()
    }

    fn kind(&self) -> &'static str {
        (**self).kind()
    }

    fn storage_info(&self) -> StorageInfo {
        (**self).storage_info()
    }
}

/// The interning in-memory backend: a `HashMap` object heap plus a
/// `BTreeMap` of refs.
///
/// This is the byte-level refactor of the original typed `ObjectStore`:
/// equal contents intern to one allocation, and [`BackendStats`] records
/// how much the dedup saved.
///
/// # Example
///
/// ```
/// use peepul_store::backend::{Backend, MemoryBackend};
///
/// let mut b = MemoryBackend::new();
/// let id = b.put(b"hello").unwrap();
/// assert_eq!(b.put(b"hello").unwrap(), id); // deduplicated
/// assert_eq!(b.object_count(), 1);
/// assert_eq!(b.get(id).unwrap().as_deref(), Some(&b"hello"[..]));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemoryBackend {
    objects: HashMap<ObjectId, Arc<[u8]>>,
    refs: BTreeMap<String, ObjectId>,
    stats: BackendStats,
    /// `None` means [`DEFAULT_SNAPSHOT_INTERVAL`]; `Some(0)` disables
    /// delta storage (the full-state control arm of the size benches).
    snapshot_interval: Option<u32>,
}

impl MemoryBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        MemoryBackend::default()
    }

    /// Creates an empty backend with an explicit delta snapshot interval
    /// (`0` stores every state full — see [`Backend::snapshot_interval`]).
    pub fn with_snapshot_interval(snapshot_interval: u32) -> Self {
        MemoryBackend {
            snapshot_interval: Some(snapshot_interval),
            ..MemoryBackend::default()
        }
    }
}

impl Backend for MemoryBackend {
    fn put(&mut self, bytes: &[u8]) -> Result<ObjectId, StoreError> {
        let id = ObjectId::from_bytes(Sha256::digest(bytes));
        self.put_known(id, bytes)?;
        Ok(id)
    }

    fn put_known(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(), StoreError> {
        debug_assert_eq!(
            id,
            ObjectId::from_bytes(Sha256::digest(bytes)),
            "put_known caller must pass sha256(bytes)"
        );
        self.stats.puts += 1;
        match self.objects.entry(id) {
            std::collections::hash_map::Entry::Occupied(_) => self.stats.dedup_hits += 1,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Arc::from(bytes));
            }
        }
        Ok(())
    }

    fn put_keyed(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(), StoreError> {
        self.stats.puts += 1;
        match self.objects.entry(id) {
            std::collections::hash_map::Entry::Occupied(_) => self.stats.dedup_hits += 1,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Arc::from(bytes));
            }
        }
        Ok(())
    }

    fn snapshot_interval(&self) -> u32 {
        self.snapshot_interval.unwrap_or(DEFAULT_SNAPSHOT_INTERVAL)
    }

    fn get(&self, id: ObjectId) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.objects.get(&id).map(|b| b.to_vec()))
    }

    fn contains(&self, id: ObjectId) -> Result<bool, StoreError> {
        Ok(self.objects.contains_key(&id))
    }

    fn set_ref(&mut self, name: &str, id: ObjectId) -> Result<(), StoreError> {
        self.refs.insert(name.to_owned(), id);
        Ok(())
    }

    fn get_ref(&self, name: &str) -> Result<Option<ObjectId>, StoreError> {
        Ok(self.refs.get(name).copied())
    }

    fn refs(&self) -> Result<Vec<(String, ObjectId)>, StoreError> {
        Ok(self.refs.iter().map(|(n, i)| (n.clone(), *i)).collect())
    }

    fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn commit_boundary(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn sweep_stats(&self, live: &HashSet<ObjectId>) -> Result<SweepStats, StoreError> {
        let mut stats = SweepStats::default();
        for (id, bytes) in &self.objects {
            if live.contains(id) {
                stats.live_objects += 1;
                stats.live_bytes += bytes.len() as u64;
            } else {
                stats.dead_objects += 1;
                stats.dead_bytes += bytes.len() as u64;
            }
        }
        Ok(stats)
    }

    fn collect_garbage(&mut self, live: &HashSet<ObjectId>) -> Result<SweepStats, StoreError> {
        let stats = self.sweep_stats(live)?;
        self.objects.retain(|id, _| live.contains(id));
        Ok(stats)
    }

    fn kind(&self) -> &'static str {
        "memory"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::content_id;

    #[test]
    fn put_is_content_addressed_and_idempotent() {
        let mut b = MemoryBackend::new();
        let id1 = b.put(b"abc").unwrap();
        let id2 = b.put(b"abc").unwrap();
        let id3 = b.put(b"abd").unwrap();
        assert_eq!(id1, id2);
        assert_ne!(id1, id3);
        assert_eq!(b.object_count(), 2);
        assert_eq!(
            b.stats(),
            BackendStats {
                puts: 3,
                dedup_hits: 1
            }
        );
    }

    #[test]
    fn put_agrees_with_content_id_on_canonical_bytes() {
        use crate::object::canonical_bytes;
        let mut b = MemoryBackend::new();
        let value = vec![9u64, 8, 7];
        let id = b.put(&canonical_bytes(&value)).unwrap();
        assert_eq!(id, content_id(&value));
    }

    #[test]
    fn refs_are_last_writer_wins() {
        let mut b = MemoryBackend::new();
        let a = b.put(b"a").unwrap();
        let c = b.put(b"c").unwrap();
        b.set_ref("main", a).unwrap();
        b.set_ref("main", c).unwrap();
        b.set_ref("dev", a).unwrap();
        assert_eq!(b.get_ref("main").unwrap(), Some(c));
        assert_eq!(
            b.refs().unwrap(),
            vec![("dev".into(), a), ("main".into(), c)]
        );
    }

    #[test]
    fn get_missing_is_none() {
        let b = MemoryBackend::new();
        assert_eq!(b.get(content_id(&0u8)).unwrap(), None);
        assert!(!b.contains(content_id(&0u8)).unwrap());
        assert_eq!(b.get_ref("nope").unwrap(), None);
    }

    #[test]
    fn memory_collect_garbage_retains_only_live() {
        let mut b = MemoryBackend::new();
        let keep = b.put(b"keep").unwrap();
        let drop_ = b.put(b"drop").unwrap();
        let live: HashSet<ObjectId> = [keep].into_iter().collect();

        let dry = b.sweep_stats(&live).unwrap();
        assert_eq!((dry.live_objects, dry.dead_objects), (1, 1));
        assert_eq!(b.object_count(), 2, "sweep_stats is a dry run");

        let swept = b.collect_garbage(&live).unwrap();
        assert_eq!(swept, dry);
        assert_eq!(b.object_count(), 1);
        assert!(b.contains(keep).unwrap());
        assert!(!b.contains(drop_).unwrap());
    }

    #[test]
    fn boxed_backend_delegates() {
        let mut b: Box<dyn Backend + Send + Sync> = Box::new(MemoryBackend::new());
        let id = b.put(b"boxed").unwrap();
        assert!(b.contains(id).unwrap());
        assert_eq!(b.kind(), "memory");
    }
}

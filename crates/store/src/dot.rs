//! Graphviz (DOT) rendering of commit graphs — `git log --graph` for the
//! branch store, invaluable when debugging merge-base questions on
//! criss-cross histories.

use crate::dag::{CommitGraph, CommitId};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Renders a commit graph in DOT format.
///
/// `label_of` produces the node label for each commit's payload; `heads`
/// maps branch names to their head commits (drawn as filled house-shaped
/// nodes pointing at their commit).
///
/// # Example
///
/// ```
/// use peepul_store::dag::CommitGraph;
/// use peepul_store::dot::render;
/// use std::collections::BTreeMap;
///
/// let mut g: CommitGraph<&str> = CommitGraph::new();
/// let root = g.add_root("v0");
/// let a = g.add_commit(vec![root], "a").unwrap();
/// let mut heads = BTreeMap::new();
/// heads.insert("main".to_owned(), a);
/// let dot = render(&g, |p| p.to_string(), &heads);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("\"main\""));
/// ```
pub fn render<P>(
    graph: &CommitGraph<P>,
    label_of: impl Fn(&P) -> String,
    heads: &BTreeMap<String, CommitId>,
) -> String {
    let mut out = String::from(
        "digraph commits {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for id in graph.ids() {
        let label = label_of(graph.payload(id)).replace('"', "'");
        let _ = writeln!(
            out,
            "  c{} [label=\"c{}: {label}\"];",
            id.index(),
            id.index()
        );
        for parent in graph.parents(id) {
            let _ = writeln!(out, "  c{} -> c{};", parent.index(), id.index());
        }
    }
    for (branch, head) in heads {
        let _ = writeln!(
            out,
            "  \"{branch}\" [shape=house, style=filled, fillcolor=lightblue];"
        );
        let _ = writeln!(out, "  \"{branch}\" -> c{};", head.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_edges_and_heads() {
        let mut g: CommitGraph<&str> = CommitGraph::new();
        let root = g.add_root("root");
        let a = g.add_commit(vec![root], "a").unwrap();
        let b = g.add_commit(vec![root], "b").unwrap();
        let m = g.add_commit(vec![a, b], "merge").unwrap();
        let mut heads = BTreeMap::new();
        heads.insert("main".to_owned(), m);
        let dot = render(&g, |p| p.to_string(), &heads);
        assert!(dot.starts_with("digraph commits {"));
        assert!(dot.contains("c0: root"));
        assert!(dot.contains("c0 -> c1;"));
        assert!(dot.contains("c1 -> c3;") && dot.contains("c2 -> c3;"));
        assert!(dot.contains("\"main\" -> c3;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn escapes_quotes_in_labels() {
        let mut g: CommitGraph<&str> = CommitGraph::new();
        g.add_root("say \"hi\"");
        let dot = render(&g, |p| p.to_string(), &BTreeMap::new());
        assert!(dot.contains("say 'hi'"));
        assert!(!dot.contains("\"hi\""));
    }
}

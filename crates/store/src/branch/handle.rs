//! Typed branch handles and transactions.
//!
//! The redesigned store API addresses branches through three types instead
//! of bare strings:
//!
//! * [`BranchId`] — a **validated**, cheaply clonable branch identifier.
//!   Name validation (and, when minted by the store, existence) happens at
//!   construction, so typos surface at the edge of the API instead of deep
//!   inside a merge.
//! * [`BranchRef`] — a read-only handle borrowed from `&BranchStore`.
//!   Every method is infallible: the branch was checked when the handle was
//!   created, branches are never deleted, and the shared borrow freezes the
//!   store for the handle's lifetime.
//! * [`BranchMut`] — a mutable handle borrowed from `&mut BranchStore`,
//!   carrying `apply`, `fork`, `merge_from` and [`BranchMut::transaction`].
//!
//! # Transactions
//!
//! [`Transaction`] stages any number of updates against a scratch copy of
//! the branch head. Nothing touches the store until [`Transaction::commit`]
//! (which [`BranchMut::transaction`] calls for you): committing publishes
//! **one** state object, **one** commit record and **one** ref update for
//! the whole batch — this is how batched writes amortise hashing and
//! backend publication. Dropping a transaction without committing rolls it
//! back by construction: the scratch state simply vanishes. (Timestamps
//! consumed by a rolled-back transaction stay consumed; uniqueness, not
//! density, is the Ψ_ts guarantee.)

use super::{Backend, BranchInfo, BranchStore};
use crate::dag::CommitId;
use crate::error::StoreError;
use crate::object::ObjectId;
use peepul_core::{Mrdt, ReplicaId, Timestamp};
use std::fmt;
use std::sync::Arc;

/// A validated branch identifier.
///
/// Legal names are non-empty and contain no control characters. A
/// `BranchId` is interned behind an `Arc`, so cloning one (which every
/// handle creation does) is a reference-count bump, not a string copy.
///
/// `BranchId` dereferences to `str` and implements `AsRef<str>`, so any
/// API that accepts a name accepts an id.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchId(Arc<str>);

impl BranchId {
    /// Validates `name` and wraps it.
    ///
    /// This checks *syntax* only; `BranchStore::branch_id` additionally
    /// checks existence against a concrete store.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidBranchName`] when `name` is empty or contains
    /// control characters (including `\0`, `\n`, `\r`, `\t`).
    pub fn new(name: &str) -> Result<Self, StoreError> {
        if name.is_empty() || name.chars().any(|c| c.is_control()) {
            return Err(StoreError::InvalidBranchName(name.to_owned()));
        }
        Ok(BranchId(Arc::from(name)))
    }

    /// The branch name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for BranchId {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for BranchId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BranchId({:?})", &*self.0)
    }
}

/// A read-only handle to one branch of a [`BranchStore`].
///
/// Created by [`BranchStore::branch`]; the existence check happens there,
/// and the shared borrow pins the store, so every accessor here is
/// **infallible** — the commit-free counterpart to [`BranchMut`].
pub struct BranchRef<'s, M: Mrdt, B: Backend> {
    store: &'s BranchStore<M, B>,
    id: BranchId,
    head: CommitId,
    replica: ReplicaId,
}

impl<'s, M: Mrdt, B: Backend> BranchRef<'s, M, B> {
    pub(super) fn new(
        store: &'s BranchStore<M, B>,
        id: BranchId,
        head: CommitId,
        replica: ReplicaId,
    ) -> Self {
        BranchRef {
            store,
            id,
            head,
            replica,
        }
    }

    /// The branch name.
    pub fn name(&self) -> &str {
        &self.id
    }

    /// The validated identifier (cheap to clone, usable across handles).
    pub fn id(&self) -> &BranchId {
        &self.id
    }

    /// The branch's head commit.
    pub fn head(&self) -> CommitId {
        self.head
    }

    /// The content address of the head commit (Merkle over history).
    pub fn head_id(&self) -> ObjectId {
        self.store.commit_ids[self.head.index()]
    }

    /// The content address of the head state.
    pub fn state_id(&self) -> ObjectId {
        self.store.state_ids[self.head.index()]
    }

    /// The replica id minting timestamps for this branch.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// The head state (cheap `Arc` clone).
    pub fn state(&self) -> Arc<M> {
        self.store.graph.payload(self.head).clone()
    }

    /// Answers a pure query against the head state — commit-free: no
    /// commit, no timestamp, no backend write.
    pub fn read(&self, q: &M::Query) -> M::Output {
        self.store.graph.payload(self.head).query(q)
    }

    /// The commit history of this branch, newest first.
    pub fn history(&self) -> Vec<CommitId> {
        self.store.graph.history(self.head)
    }
}

impl<M: Mrdt, B: Backend> fmt::Debug for BranchRef<'_, M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BranchRef({:?} @ {:?})", &*self.id, self.head)
    }
}

/// A mutable handle to one branch of a [`BranchStore`].
///
/// Created by [`BranchStore::branch_mut`]. Mutating operations return
/// `Result` only for genuine failures (backend I/O, merging from a missing
/// source) — the branch itself was validated at handle creation.
pub struct BranchMut<'s, M: Mrdt, B: Backend> {
    store: &'s mut BranchStore<M, B>,
    id: BranchId,
}

impl<'s, M: Mrdt, B: Backend> BranchMut<'s, M, B> {
    pub(super) fn new(store: &'s mut BranchStore<M, B>, id: BranchId) -> Self {
        BranchMut { store, id }
    }

    /// The branch name.
    pub fn name(&self) -> &str {
        &self.id
    }

    /// The validated identifier (cheap to clone, usable across handles).
    pub fn id(&self) -> &BranchId {
        &self.id
    }

    fn info(&self) -> &BranchInfo {
        self.store
            .branches
            .get(&*self.id)
            .expect("handle id was validated at creation and branches are never deleted")
    }

    /// The branch's head commit.
    pub fn head(&self) -> CommitId {
        self.info().head
    }

    /// The head state (cheap `Arc` clone).
    pub fn state(&self) -> Arc<M> {
        self.store.graph.payload(self.head()).clone()
    }

    /// Answers a pure query against the head state — commit-free.
    pub fn read(&self, q: &M::Query) -> M::Output {
        self.store.graph.payload(self.head()).query(q)
    }

    /// The commit history of this branch, newest first.
    pub fn history(&self) -> Vec<CommitId> {
        self.store.graph.history(self.head())
    }

    /// Applies one update (`DO` of Fig. 3), committing the successor state
    /// and returning the operation's value.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if publishing to the backend fails.
    pub fn apply(&mut self, op: &M::Op) -> Result<M::Value, StoreError> {
        let id = self.id.clone();
        self.store.do_apply(&id, op)
    }

    /// Forks a new branch off this one (`CREATEBRANCH` of Fig. 3) and
    /// returns its validated identifier.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidBranchName`] for an illegal name;
    /// [`StoreError::BranchExists`] if `new` already exists;
    /// [`StoreError::Io`] if publishing the new ref fails.
    pub fn fork(&mut self, new: impl Into<String>) -> Result<BranchId, StoreError> {
        let id = self.id.clone();
        self.store.do_fork(new.into(), &id)
    }

    /// Merges `source` into this branch (`MERGE` of Fig. 3): runs the data
    /// type's three-way merge against the store-computed LCA and commits
    /// the result here. Merging a branch whose history is already contained
    /// in this one is a no-op. Accepts a name or a [`BranchId`].
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if `source` does not exist;
    /// [`StoreError::Io`] if publishing fails.
    pub fn merge_from(&mut self, source: impl AsRef<str>) -> Result<(), StoreError> {
        let id = self.id.clone();
        self.store.do_merge(&id, source.as_ref())
    }

    /// Begins a transaction: updates staged through it publish as **one**
    /// commit on [`Transaction::commit`]; dropping the transaction without
    /// committing rolls everything back.
    ///
    /// Prefer [`BranchMut::transaction`] unless you need early rollback or
    /// staged reads interleaved with other control flow.
    pub fn begin(&mut self) -> Transaction<'_, 's, M, B> {
        let info = self.info();
        let (base, replica) = (info.head, info.replica);
        let scratch = self.store.graph.payload(base).as_ref().clone();
        Transaction {
            branch: self,
            scratch,
            base,
            replica,
            ops: 0,
        }
    }

    /// Runs `f` inside a transaction and commits the batch: `N` staged
    /// updates publish exactly **one** commit and one backend write.
    ///
    /// If `f` panics, nothing is published — drop-means-rollback.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if publishing the batch fails.
    ///
    /// # Example
    ///
    /// ```
    /// use peepul_store::BranchStore;
    /// use peepul_types::counter::{Counter, CounterOp, CounterQuery};
    ///
    /// # fn main() -> Result<(), peepul_store::StoreError> {
    /// let mut store: BranchStore<Counter> = BranchStore::new("main");
    /// let before = store.commit_count();
    /// store.branch_mut("main")?.transaction(|tx| {
    ///     for _ in 0..10 {
    ///         tx.apply(&CounterOp::Increment);
    ///     }
    /// })?;
    /// assert_eq!(store.commit_count(), before + 1); // one commit for 10 ops
    /// assert_eq!(store.read("main", &CounterQuery::Value)?, 10);
    /// # Ok(())
    /// # }
    /// ```
    pub fn transaction<R>(
        &mut self,
        f: impl FnOnce(&mut Transaction<'_, 's, M, B>) -> R,
    ) -> Result<R, StoreError> {
        let mut tx = self.begin();
        let result = f(&mut tx);
        tx.commit()?;
        Ok(result)
    }
}

impl<M: Mrdt, B: Backend> fmt::Debug for BranchMut<'_, M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BranchMut({:?})", &*self.id)
    }
}

/// An in-flight batch of updates against one branch.
///
/// Created by [`BranchMut::begin`] / [`BranchMut::transaction`]. Staged
/// operations run against a scratch state; the store is untouched until
/// [`Transaction::commit`], which publishes the whole batch as a single
/// commit (one state object, one commit record, one ref update). Dropping
/// the transaction without committing discards the scratch state —
/// rollback is the default, not an action.
pub struct Transaction<'t, 's, M: Mrdt, B: Backend> {
    branch: &'t mut BranchMut<'s, M, B>,
    scratch: M,
    base: CommitId,
    /// Captured at `begin`: a branch's replica id never changes, so the
    /// batch path pays no per-op lookup for it.
    replica: ReplicaId,
    ops: usize,
}

impl<M: Mrdt, B: Backend> Transaction<'_, '_, M, B> {
    /// Stages one update against the scratch state and returns its value.
    ///
    /// Infallible: staging is pure; I/O happens once, at commit. The
    /// store-wide timestamp tick advances per staged op, so transactional
    /// and sequential histories mint identical timestamps.
    pub fn apply(&mut self, op: &M::Op) -> M::Value {
        self.branch.store.tick += 1;
        let t = Timestamp::new(self.branch.store.tick, self.replica);
        let (next, value) = self.scratch.apply(op, t);
        self.scratch = next;
        self.ops += 1;
        value
    }

    /// Answers a query against the **staged** state (earlier `apply`s in
    /// this transaction are visible, the store's published head is not).
    pub fn read(&self, q: &M::Query) -> M::Output {
        self.scratch.query(q)
    }

    /// Number of updates staged so far.
    pub fn op_count(&self) -> usize {
        self.ops
    }

    /// Discards the staged batch. Equivalent to dropping the transaction;
    /// provided for explicitness at call sites.
    pub fn rollback(self) {
        drop(self);
    }

    /// Publishes the staged batch as **one** commit and points the branch
    /// at it. A transaction with zero staged ops commits nothing at all.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if publishing fails. The branch is left on its
    /// previous head — observable state never moves partway. If the
    /// failure hit the final ref update, the already-published state and
    /// commit objects remain in the backend as unreferenced orphans
    /// (harmless in a content-addressed store, same as every other commit
    /// path here).
    pub fn commit(self) -> Result<(), StoreError> {
        if self.ops == 0 {
            return Ok(());
        }
        let id = self.branch.id.clone();
        let store = &mut *self.branch.store;
        let start = store.metrics().map(|_| std::time::Instant::now());
        // The batch's mint is its last staged timestamp: the store's tick
        // was advanced once per staged op under this exclusive borrow, so
        // `(store.tick, replica)` is exactly the final `apply`'s stamp —
        // unique per committed transaction.
        let mint = (store.tick, self.replica.as_u32());
        let new_head = store.commit(vec![self.base], Arc::new(self.scratch), mint)?;
        store.set_head(&id, new_head)?;
        store
            .branches
            .get_mut(&*id)
            .expect("transaction branch exists")
            .head = new_head;
        // However many ops were staged, the whole batch is one logical
        // commit: one durability point, at most one fsync.
        store.durability_point()?;
        if let (Some(m), Some(start)) = (store.metrics(), start) {
            let micros = start.elapsed().as_micros() as u64;
            m.commits_total.inc();
            m.txn_micros.observe(micros);
            m.trace("transaction", &id, micros);
        }
        Ok(())
    }
}

impl<M: Mrdt, B: Backend> fmt::Debug for Transaction<'_, '_, M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Transaction({:?}, {} staged ops)",
            &*self.branch.id, self.ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchStore;
    use peepul_types::counter::{Counter, CounterOp, CounterQuery};
    use peepul_types::or_set::{OrSet, OrSetOp, OrSetOutput, OrSetQuery};

    #[test]
    fn branch_id_validation() {
        assert!(BranchId::new("main").is_ok());
        assert!(BranchId::new("feature/x-1").is_ok());
        assert!(BranchId::new("").is_err());
        assert!(BranchId::new("a\tb").is_err());
        let id = BranchId::new("dev").unwrap();
        assert_eq!(id.as_str(), "dev");
        assert_eq!(&*id, "dev");
        assert_eq!(id.to_string(), "dev");
        assert_eq!(format!("{id:?}"), "BranchId(\"dev\")");
    }

    #[test]
    fn handles_expose_metadata() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        let r = s.branch("main").unwrap();
        assert_eq!(r.name(), "main");
        assert_eq!(r.id().as_str(), "main");
        assert_eq!(r.history().len(), 2);
        assert_eq!(r.state().count(), 1);
        assert_eq!(r.read(&CounterQuery::Value), 1);
        assert_eq!(r.head_id(), s.head_id("main").unwrap());
        assert_eq!(r.state_id(), s.state_id("main").unwrap());
        assert_eq!(r.replica(), s.replica_of("main").unwrap());
        assert!(format!("{r:?}").contains("main"));
    }

    #[test]
    fn many_read_handles_coexist() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        s.branch_mut("dev")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        let a = s.branch("main").unwrap();
        let b = s.branch("dev").unwrap();
        assert_eq!(a.read(&CounterQuery::Value), 0);
        assert_eq!(b.read(&CounterQuery::Value), 1);
    }

    #[test]
    fn transaction_batches_ops_into_one_commit() {
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("main");
        let before = s.commit_count();
        let last = s
            .branch_mut("main")
            .unwrap()
            .transaction(|tx| {
                for x in 0..10 {
                    tx.apply(&OrSetOp::Add(x));
                }
                tx.op_count()
            })
            .unwrap();
        assert_eq!(last, 10);
        assert_eq!(s.commit_count(), before + 1, "10 ops, exactly 1 commit");
        assert_eq!(
            s.read("main", &OrSetQuery::Read).unwrap(),
            OrSetOutput::Elements((0..10).collect())
        );
    }

    #[test]
    fn transaction_reads_see_staged_state() {
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .transaction(|tx| {
                assert_eq!(tx.read(&OrSetQuery::Lookup(7)), OrSetOutput::Present(false));
                tx.apply(&OrSetOp::Add(7));
                assert_eq!(tx.read(&OrSetQuery::Lookup(7)), OrSetOutput::Present(true));
            })
            .unwrap();
    }

    #[test]
    fn empty_transaction_commits_nothing() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        let before = s.commit_count();
        let head = s.head_id("main").unwrap();
        s.branch_mut("main").unwrap().transaction(|_| {}).unwrap();
        assert_eq!(s.commit_count(), before);
        assert_eq!(s.head_id("main").unwrap(), head);
    }

    #[test]
    fn dropped_transaction_rolls_back() {
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("main");
        s.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(1))
            .unwrap();
        let before = s.commit_count();
        let head = s.head_id("main").unwrap();
        {
            let mut b = s.branch_mut("main").unwrap();
            let mut tx = b.begin();
            tx.apply(&OrSetOp::Add(2));
            tx.apply(&OrSetOp::Remove(1));
            assert_eq!(tx.op_count(), 2);
            // Dropped without commit.
        }
        assert_eq!(s.commit_count(), before, "rollback publishes nothing");
        assert_eq!(s.head_id("main").unwrap(), head);
        assert_eq!(
            s.read("main", &OrSetQuery::Read).unwrap(),
            OrSetOutput::Elements(vec![1])
        );
    }

    #[test]
    fn explicit_rollback_matches_drop() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        let head = s.head_id("main").unwrap();
        {
            let mut b = s.branch_mut("main").unwrap();
            let mut tx = b.begin();
            tx.apply(&CounterOp::Increment);
            tx.rollback();
        }
        assert_eq!(s.head_id("main").unwrap(), head);
    }

    #[test]
    fn manual_begin_commit_works() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        let mut b = s.branch_mut("main").unwrap();
        let mut tx = b.begin();
        tx.apply(&CounterOp::Increment);
        tx.apply(&CounterOp::Increment);
        tx.commit().unwrap();
        assert_eq!(s.read("main", &CounterQuery::Value).unwrap(), 2);
    }

    #[test]
    fn transaction_timestamps_stay_unique_across_rollback() {
        // A rolled-back transaction consumes ticks; later ops must still
        // mint strictly larger timestamps (Ψ_ts uniqueness).
        let mut s: BranchStore<OrSet<u32>> = BranchStore::new("main");
        {
            let mut b = s.branch_mut("main").unwrap();
            let mut tx = b.begin();
            tx.apply(&OrSetOp::Add(1));
            // dropped
        }
        s.branch_mut("main")
            .unwrap()
            .apply(&OrSetOp::Add(2))
            .unwrap();
        s.branch_mut("main").unwrap().fork("dev").unwrap();
        s.branch_mut("dev")
            .unwrap()
            .apply(&OrSetOp::Add(3))
            .unwrap();
        s.branch_mut("main").unwrap().merge_from("dev").unwrap();
        assert_eq!(s.state("main").unwrap().pair_count(), 2);
    }

    #[test]
    fn transactional_and_sequential_histories_observably_agree() {
        let mut tx_store: BranchStore<OrSet<u32>> = BranchStore::new("main");
        let mut seq_store: BranchStore<OrSet<u32>> = BranchStore::new("main");
        let ops = [
            OrSetOp::Add(1),
            OrSetOp::Add(2),
            OrSetOp::Remove(1),
            OrSetOp::Add(3),
        ];
        tx_store
            .branch_mut("main")
            .unwrap()
            .transaction(|tx| {
                for op in &ops {
                    tx.apply(op);
                }
            })
            .unwrap();
        for op in &ops {
            seq_store.branch_mut("main").unwrap().apply(op).unwrap();
        }
        assert!(tx_store
            .state("main")
            .unwrap()
            .observably_equal(&seq_store.state("main").unwrap()));
        assert_eq!(tx_store.commit_count(), 2); // root + 1 batch
        assert_eq!(seq_store.commit_count(), 1 + ops.len());
    }

    #[test]
    fn merge_from_accepts_ids_and_names() {
        let mut s: BranchStore<Counter> = BranchStore::new("main");
        let dev = s.branch_mut("main").unwrap().fork("dev").unwrap();
        s.branch_mut("dev")
            .unwrap()
            .apply(&CounterOp::Increment)
            .unwrap();
        s.branch_mut("main").unwrap().merge_from(&dev).unwrap();
        s.branch_mut("main").unwrap().merge_from("dev").unwrap();
        assert_eq!(s.read("main", &CounterQuery::Value).unwrap(), 1);
        assert!(matches!(
            s.branch_mut("main").unwrap().merge_from("ghost"),
            Err(StoreError::UnknownBranch(_))
        ));
    }
}

//! Storage-engine observability: the [`StoreMetrics`] bundle a
//! [`BranchStore`](crate::BranchStore) updates when one is attached.
//!
//! Handles are resolved from the shared `peepul-obs` registry once, at
//! [`StoreMetrics::attach`] time; the hot paths then pay one `Option`
//! branch plus a few relaxed atomic operations per instrumented
//! operation — the cost `bench_obs` gates below 5 %. Facts that already
//! live elsewhere (merge-memo counters, the backend's
//! [`StorageInfo`](crate::StorageInfo)) are *pulled* into gauges by
//! [`BranchStore::publish_gauges`](crate::BranchStore::publish_gauges)
//! at exposition time instead of being pushed on every operation.

use peepul_obs::{Counter, EventRing, Gauge, Histogram, Obs, Registry, Subsystem, TraceLevel};
use std::sync::Arc;

/// Metric handles for one store, resolved from a registry.
///
/// All durations are microseconds. Field docs name the exposition
/// metric each handle feeds.
#[derive(Debug)]
pub struct StoreMetrics {
    /// `peepul_store_commits_total` — operation commits (`apply`).
    pub commits_total: Counter,
    /// `peepul_store_commit_micros` — `apply` latency.
    pub commit_micros: Histogram,
    /// `peepul_store_merges_total` — merge commits landed.
    pub merges_total: Counter,
    /// `peepul_store_merge_micros` — merge latency (LCA + 3-way + commit).
    pub merge_micros: Histogram,
    /// `peepul_store_txn_micros` — whole-transaction commit latency.
    pub txn_micros: Histogram,
    /// `peepul_store_reads_total` — commit-free queries answered.
    pub reads_total: Counter,
    /// `peepul_store_read_micros` — query latency.
    pub read_micros: Histogram,
    /// `peepul_store_ingest_packs_total` — packs ingested.
    pub ingest_packs_total: Counter,
    /// `peepul_store_ingest_commits_total` — fresh commits landed by ingest.
    pub ingest_commits_total: Counter,
    /// `peepul_store_ingest_states_total` — state objects packs carried.
    pub ingest_states_total: Counter,
    /// `peepul_store_gc_sweeps_total` — garbage collections run.
    pub gc_sweeps_total: Counter,
    /// `peepul_store_gc_dead_objects_total` — objects reclaimed by GC.
    pub gc_dead_objects_total: Counter,
    /// `peepul_store_gc_dead_bytes_total` — bytes reclaimed by GC.
    pub gc_dead_bytes_total: Counter,
    /// `peepul_store_gc_micros` — GC latency.
    pub gc_micros: Histogram,
    /// `peepul_store_compactions_total` — storage compactions run.
    pub compactions_total: Counter,
    /// `peepul_store_compact_bytes_total` — disk bytes released by
    /// compaction (pre-size minus post-size, when it shrank).
    pub compact_bytes_total: Counter,
    /// `peepul_store_commit_count` — commits in the DAG (gauge,
    /// published).
    pub commit_count: Gauge,
    /// `peepul_store_branches` — branches in the table (gauge, published).
    pub branches: Gauge,
    /// `peepul_store_objects` — objects in the backend (gauge, published).
    pub objects: Gauge,
    /// `peepul_store_memo_hits` / `peepul_store_memo_misses` — merge-memo
    /// counters (gauges, published from
    /// [`MergeCacheStats`](crate::MergeCacheStats)).
    pub memo_hits: Gauge,
    /// See [`StoreMetrics::memo_hits`].
    pub memo_misses: Gauge,
    /// `peepul_store_memo_hit_permille` — cache hit rate × 1000 (gauge,
    /// published; the registry is integer-valued).
    pub memo_hit_permille: Gauge,
    /// `peepul_store_fsyncs_total` — backend fsyncs (gauge, published
    /// from [`StorageInfo`](crate::StorageInfo); monotone but sourced
    /// externally).
    pub fsyncs: Gauge,
    /// `peepul_store_fsync_coalesce_permille` — fsyncs per 1000 commit
    /// boundaries (gauge, published): 1000 means one fsync per commit,
    /// lower means group commit is coalescing.
    pub fsync_coalesce_permille: Gauge,
    /// `peepul_store_disk_bytes` — bytes on disk (gauge, published).
    pub disk_bytes: Gauge,
    /// `peepul_store_segments` — storage files (gauge, published).
    pub segments: Gauge,
    /// `peepul_store_delta_states_total` — states persisted in delta
    /// form (the delta hit count; see
    /// [`StoreMetrics::full_states_total`] for the misses).
    pub delta_states_total: Counter,
    /// `peepul_store_full_states_total` — states persisted as full
    /// snapshots (interval boundaries, merge bases with no smaller
    /// delta, ingests without a held base).
    pub full_states_total: Counter,
    /// `peepul_store_delta_bytes_total` — bytes of delta records
    /// written.
    pub delta_bytes_total: Counter,
    /// `peepul_store_delta_saved_bytes_total` — bytes *not* written
    /// because a delta record replaced a full record.
    pub delta_saved_bytes_total: Counter,
    /// `peepul_store_delta_resolves_total` — reads that resolved a
    /// delta chain (≥ 1 link) to serve full canonical bytes.
    pub delta_resolves_total: Counter,
    /// `peepul_store_delta_chain_len` — chain length (links to the
    /// snapshot) of each delta record at write time.
    pub delta_chain_len: Histogram,
    /// `peepul_store_delta_states` — delta-stored states currently live
    /// (gauge, published; the GC retention index size).
    pub delta_states: Gauge,
    /// The trace ring commit/merge/GC events are recorded into.
    pub ring: Arc<EventRing>,
}

impl StoreMetrics {
    /// Resolves every handle from `registry`, recording trace events
    /// into `ring`.
    pub fn register(registry: &Registry, ring: Arc<EventRing>) -> Arc<StoreMetrics> {
        Arc::new(StoreMetrics {
            commits_total: registry.counter("peepul_store_commits_total"),
            commit_micros: registry.histogram("peepul_store_commit_micros"),
            merges_total: registry.counter("peepul_store_merges_total"),
            merge_micros: registry.histogram("peepul_store_merge_micros"),
            txn_micros: registry.histogram("peepul_store_txn_micros"),
            reads_total: registry.counter("peepul_store_reads_total"),
            read_micros: registry.histogram("peepul_store_read_micros"),
            ingest_packs_total: registry.counter("peepul_store_ingest_packs_total"),
            ingest_commits_total: registry.counter("peepul_store_ingest_commits_total"),
            ingest_states_total: registry.counter("peepul_store_ingest_states_total"),
            gc_sweeps_total: registry.counter("peepul_store_gc_sweeps_total"),
            gc_dead_objects_total: registry.counter("peepul_store_gc_dead_objects_total"),
            gc_dead_bytes_total: registry.counter("peepul_store_gc_dead_bytes_total"),
            gc_micros: registry.histogram("peepul_store_gc_micros"),
            compactions_total: registry.counter("peepul_store_compactions_total"),
            compact_bytes_total: registry.counter("peepul_store_compact_bytes_total"),
            commit_count: registry.gauge("peepul_store_commit_count"),
            branches: registry.gauge("peepul_store_branches"),
            objects: registry.gauge("peepul_store_objects"),
            memo_hits: registry.gauge("peepul_store_memo_hits"),
            memo_misses: registry.gauge("peepul_store_memo_misses"),
            memo_hit_permille: registry.gauge("peepul_store_memo_hit_permille"),
            fsyncs: registry.gauge("peepul_store_fsyncs_total"),
            fsync_coalesce_permille: registry.gauge("peepul_store_fsync_coalesce_permille"),
            disk_bytes: registry.gauge("peepul_store_disk_bytes"),
            segments: registry.gauge("peepul_store_segments"),
            delta_states_total: registry.counter("peepul_store_delta_states_total"),
            full_states_total: registry.counter("peepul_store_full_states_total"),
            delta_bytes_total: registry.counter("peepul_store_delta_bytes_total"),
            delta_saved_bytes_total: registry.counter("peepul_store_delta_saved_bytes_total"),
            delta_resolves_total: registry.counter("peepul_store_delta_resolves_total"),
            delta_chain_len: registry.histogram("peepul_store_delta_chain_len"),
            delta_states: registry.gauge("peepul_store_delta_states"),
            ring,
        })
    }

    /// Attaches to an [`Obs`] spine: `Some` handles when the spine is
    /// enabled, `None` (zero-cost hot paths) when it is
    /// [`disabled`](peepul_obs::ObsConfig::disabled).
    pub fn attach(obs: &Obs) -> Option<Arc<StoreMetrics>> {
        obs.enabled()
            .then(|| StoreMetrics::register(obs.registry(), Arc::clone(obs.ring())))
    }

    /// Records a store trace event at [`TraceLevel::Info`].
    #[inline]
    pub(crate) fn trace(&self, kind: &'static str, label: &str, value: u64) {
        self.ring
            .record(Subsystem::Store, TraceLevel::Info, kind, label, value);
    }
}

//! The store's labelled transition system `M_Dτ = (Φ, →)` (paper §3,
//! Fig. 3) — the *reference semantics* the verification harness drives.
//!
//! Each LTS state is `(φ, δ, t)`: per-branch **concrete** states (as the
//! data type implementation computes them), per-branch **abstract** states
//! (events + visibility, as `do#`/`merge#` compute them), and the global
//! timestamp counter. The three transitions are `CREATEBRANCH`, `DO` and
//! `MERGE`.
//!
//! Unlike [`BranchStore`](crate::BranchStore), this store keeps a
//! [`Snapshot`] (concrete *and* abstract state) at every commit, so a
//! `MERGE` can hand the verifier everything the proof obligations of
//! Table 2 mention — including the concrete LCA state `σ_lca`, which for
//! criss-cross histories is built by recursive virtual merging (the
//! abstract side of a virtual merge is `merge#`, whose event union over
//! all maximal common ancestors equals `lca#(I_a, I_b)` exactly).

use crate::dag::{CommitGraph, CommitId};
use crate::error::StoreError;
use peepul_core::{AbstractOf, Mrdt, ReplicaId, Timestamp};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One version: paired concrete and abstract states.
pub struct Snapshot<M: Mrdt> {
    /// The implementation state `σ`.
    pub concrete: Arc<M>,
    /// The abstract execution `I` of all events this version has observed.
    pub abstract_state: Arc<AbstractOf<M>>,
}

impl<M: Mrdt> Clone for Snapshot<M> {
    fn clone(&self) -> Self {
        Snapshot {
            concrete: self.concrete.clone(),
            abstract_state: self.abstract_state.clone(),
        }
    }
}

impl<M: Mrdt> fmt::Debug for Snapshot<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Snapshot(σ = {:?}, |I| = {})",
            self.concrete,
            self.abstract_state.len()
        )
    }
}

/// The result of a `DO` transition, carrying everything `Φ_do`/`Φ_spec`
/// quantify over.
#[derive(Debug)]
pub struct DoOutcome<M: Mrdt> {
    /// The store-minted timestamp of the event.
    pub timestamp: Timestamp,
    /// The return value computed by the implementation.
    pub value: M::Value,
    /// The branch state before the operation.
    pub pre: Snapshot<M>,
    /// The branch state after the operation.
    pub post: Snapshot<M>,
}

/// The result of a `MERGE` transition, carrying everything `Φ_merge`
/// quantifies over.
#[derive(Debug)]
pub struct MergeOutcome<M: Mrdt> {
    /// The LCA version supplied by the store (virtual for criss-cross
    /// histories).
    pub lca: Snapshot<M>,
    /// The target branch before the merge.
    pub pre_into: Snapshot<M>,
    /// The source branch (unchanged by the merge).
    pub pre_from: Snapshot<M>,
    /// The target branch after the merge.
    pub post: Snapshot<M>,
}

/// The labelled transition system of Fig. 3.
///
/// # Example
///
/// ```
/// use peepul_store::StoreLts;
/// use peepul_types::counter::{Counter, CounterOp, CounterQuery};
///
/// # fn main() -> Result<(), peepul_store::StoreError> {
/// let mut lts: StoreLts<Counter> = StoreLts::new("main");
/// lts.create_branch("dev", "main")?;
/// lts.do_op("main", &CounterOp::Increment)?;
/// lts.do_op("dev", &CounterOp::Increment)?;
/// let outcome = lts.merge("main", "dev")?;
/// assert_eq!(outcome.post.concrete.count(), 2);
/// assert_eq!(outcome.post.abstract_state.len(), 2);
/// // Queries observe without transitioning (no event, no tick).
/// assert_eq!(lts.query("main", &CounterQuery::Value)?, 2);
/// # Ok(())
/// # }
/// ```
pub struct StoreLts<M: Mrdt> {
    graph: CommitGraph<Snapshot<M>>,
    branches: BTreeMap<String, (CommitId, ReplicaId)>,
    tick: u64,
    next_replica: u32,
}

impl<M: Mrdt> StoreLts<M> {
    /// The initial LTS state `C⊥`: one branch holding `(σ0, I0)`.
    pub fn new(root_branch: impl Into<String>) -> Self {
        let mut graph = CommitGraph::new();
        let root = graph.add_root(Snapshot {
            concrete: Arc::new(M::initial()),
            abstract_state: Arc::new(AbstractOf::<M>::new()),
        });
        let mut branches = BTreeMap::new();
        branches.insert(root_branch.into(), (root, ReplicaId::new(0)));
        StoreLts {
            graph,
            branches,
            tick: 0,
            next_replica: 1,
        }
    }

    /// The branch names, sorted lexicographically (deterministic across
    /// runs, matching [`crate::BranchStore::branch_names`]).
    pub fn branch_names(&self) -> Vec<&str> {
        self.branches.keys().map(String::as_str).collect()
    }

    /// Answers a pure query against a branch's concrete head state.
    ///
    /// Queries are not transitions of `M_Dτ`: no event is minted, the
    /// timestamp counter does not advance, and the LTS state is untouched
    /// — mirroring the commit-free read path of the branch store.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn query(&self, branch: &str, q: &M::Query) -> Result<M::Output, StoreError> {
        let (head, _) = self.head(branch)?;
        Ok(self.graph.payload(head).concrete.query(q))
    }

    /// Number of branches.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// The current global timestamp counter `t`.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    fn head(&self, branch: &str) -> Result<(CommitId, ReplicaId), StoreError> {
        self.branches
            .get(branch)
            .copied()
            .ok_or_else(|| StoreError::UnknownBranch(branch.to_owned()))
    }

    /// The current snapshot of a branch.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn snapshot(&self, branch: &str) -> Result<Snapshot<M>, StoreError> {
        let (head, _) = self.head(branch)?;
        Ok(self.graph.payload(head).clone())
    }

    /// Iterates over all branches with their snapshots.
    pub fn snapshots(&self) -> impl Iterator<Item = (&str, Snapshot<M>)> {
        self.branches
            .iter()
            .map(|(name, (head, _))| (name.as_str(), self.graph.payload(*head).clone()))
    }

    /// `CREATEBRANCH(b1, b2)`: the new branch copies both the concrete and
    /// abstract state of the source.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] / [`StoreError::BranchExists`].
    pub fn create_branch(&mut self, new: impl Into<String>, from: &str) -> Result<(), StoreError> {
        let new = new.into();
        if self.branches.contains_key(&new) {
            return Err(StoreError::BranchExists(new));
        }
        let (head, _) = self.head(from)?;
        let replica = ReplicaId::new(self.next_replica);
        self.next_replica += 1;
        self.branches.insert(new, (head, replica));
        Ok(())
    }

    /// `DO(o, b)`: applies the operation concretely (`D_τ.do`) and
    /// abstractly (`do#`), advancing the global timestamp.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if the branch does not exist.
    pub fn do_op(&mut self, branch: &str, op: &M::Op) -> Result<DoOutcome<M>, StoreError> {
        let (head, replica) = self.head(branch)?;
        let pre = self.graph.payload(head).clone();

        self.tick += 1;
        let t = Timestamp::new(self.tick, replica);

        let (conc_next, value) = pre.concrete.apply(op, t);
        let abs_next = pre.abstract_state.perform(op.clone(), value.clone(), t);
        let post = Snapshot {
            concrete: Arc::new(conc_next),
            abstract_state: Arc::new(abs_next),
        };
        let new_head = self
            .graph
            .add_commit(vec![head], post.clone())
            .expect("head is a valid parent");
        self.branches
            .get_mut(branch)
            .expect("branch checked above")
            .0 = new_head;
        Ok(DoOutcome {
            timestamp: t,
            value,
            pre,
            post,
        })
    }

    /// The LCA snapshot of two branches, resolving criss-cross histories
    /// by recursive virtual merges.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] / [`StoreError::NoCommonAncestor`].
    pub fn lca(&mut self, b1: &str, b2: &str) -> Result<Snapshot<M>, StoreError> {
        let (c1, _) = self.head(b1)?;
        let (c2, _) = self.head(b2)?;
        let lca = self.lca_commit(c1, c2)?;
        Ok(self.graph.payload(lca).clone())
    }

    fn lca_commit(&mut self, c1: CommitId, c2: CommitId) -> Result<CommitId, StoreError> {
        let bases = self.graph.merge_bases(c1, c2);
        let Some((&first, rest)) = bases.split_first() else {
            return Err(StoreError::NoCommonAncestor);
        };
        let mut virt = first;
        for &base in rest {
            let sub_lca = self.lca_commit(virt, base)?;
            let sub = self.graph.payload(sub_lca).clone();
            let left = self.graph.payload(virt).clone();
            let right = self.graph.payload(base).clone();
            let snapshot = Snapshot {
                concrete: Arc::new(M::merge(&sub.concrete, &left.concrete, &right.concrete)),
                abstract_state: Arc::new(left.abstract_state.merged(&right.abstract_state)),
            };
            virt = self
                .graph
                .add_commit(vec![virt, base], snapshot)
                .expect("bases are valid parents");
        }
        Ok(virt)
    }

    /// `MERGE(b1, b2)`: merges `from` into `into`, concretely via
    /// `D_τ.merge(σ_lca, σ_into, σ_from)` and abstractly via `merge#`.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] / [`StoreError::NoCommonAncestor`].
    pub fn merge(&mut self, into: &str, from: &str) -> Result<MergeOutcome<M>, StoreError> {
        let (c_into, _) = self.head(into)?;
        let (c_from, _) = self.head(from)?;
        let lca_commit = self.lca_commit(c_into, c_from)?;
        let lca = self.graph.payload(lca_commit).clone();
        let pre_into = self.graph.payload(c_into).clone();
        let pre_from = self.graph.payload(c_from).clone();

        let merged_conc = M::merge(&lca.concrete, &pre_into.concrete, &pre_from.concrete);
        let merged_abs = pre_into.abstract_state.merged(&pre_from.abstract_state);
        let post = Snapshot {
            concrete: Arc::new(merged_conc),
            abstract_state: Arc::new(merged_abs),
        };
        let new_head = self
            .graph
            .add_commit(vec![c_into, c_from], post.clone())
            .expect("heads are valid parents");
        self.branches.get_mut(into).expect("branch checked above").0 = new_head;
        Ok(MergeOutcome {
            lca,
            pre_into,
            pre_from,
            post,
        })
    }

    /// Total number of commits (including virtual LCA commits).
    pub fn commit_count(&self) -> usize {
        self.graph.len()
    }
}

impl<M: Mrdt> Clone for StoreLts<M> {
    /// Cloning an LTS forks the whole world — used by the
    /// bounded-exhaustive checker to branch its depth-first search. Cheap:
    /// snapshots are `Arc`-shared.
    fn clone(&self) -> Self {
        StoreLts {
            graph: self.graph.clone(),
            branches: self.branches.clone(),
            tick: self.tick,
            next_replica: self.next_replica,
        }
    }
}

impl<M: Mrdt> fmt::Debug for StoreLts<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StoreLts({} branches, {} commits, t = {})",
            self.branches.len(),
            self.graph.len(),
            self.tick
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_types::g_set::{GSet, GSetOp};
    use peepul_types::or_set_space::{OrSetOp, OrSetSpace};

    #[test]
    fn do_advances_both_states_in_lockstep() {
        let mut lts: StoreLts<GSet<u32>> = StoreLts::new("main");
        let out = lts.do_op("main", &GSetOp::Add(1)).unwrap();
        assert_eq!(out.pre.abstract_state.len(), 0);
        assert_eq!(out.post.abstract_state.len(), 1);
        assert!(out.post.concrete.contains(&1));
        assert_eq!(out.timestamp.tick(), 1);
    }

    #[test]
    fn merge_unions_abstract_states() {
        let mut lts: StoreLts<GSet<u32>> = StoreLts::new("main");
        lts.create_branch("dev", "main").unwrap();
        lts.do_op("main", &GSetOp::Add(1)).unwrap();
        lts.do_op("dev", &GSetOp::Add(2)).unwrap();
        let out = lts.merge("main", "dev").unwrap();
        assert_eq!(out.lca.abstract_state.len(), 0);
        assert_eq!(out.post.abstract_state.len(), 2);
        assert!(out.post.concrete.contains(&1) && out.post.concrete.contains(&2));
    }

    #[test]
    fn lca_after_one_sided_merge_is_source_head() {
        let mut lts: StoreLts<GSet<u32>> = StoreLts::new("a");
        lts.create_branch("b", "a").unwrap();
        lts.do_op("a", &GSetOp::Add(1)).unwrap();
        lts.do_op("b", &GSetOp::Add(2)).unwrap();
        lts.merge("a", "b").unwrap();
        // Now b's history ⊆ a's: the LCA of (a, b) is b's head.
        let lca = lts.lca("a", "b").unwrap();
        let b_snap = lts.snapshot("b").unwrap();
        assert_eq!(*lca.abstract_state, *b_snap.abstract_state);
    }

    #[test]
    fn criss_cross_virtual_lca_has_union_of_bases() {
        let mut lts: StoreLts<OrSetSpace<u32>> = StoreLts::new("a");
        lts.do_op("a", &OrSetOp::Add(0)).unwrap();
        lts.create_branch("b", "a").unwrap();
        lts.do_op("a", &OrSetOp::Add(1)).unwrap();
        lts.do_op("b", &OrSetOp::Add(2)).unwrap();
        lts.merge("a", "b").unwrap();
        lts.merge("b", "a").unwrap();
        lts.do_op("a", &OrSetOp::Add(3)).unwrap();
        lts.do_op("b", &OrSetOp::Add(4)).unwrap();
        // merge_bases(a, b) = the two first-round merge commits; the
        // virtual LCA must contain events {0, 1, 2} — the intersection of
        // the two branches' abstract states.
        let lca = lts.lca("a", "b").unwrap();
        let ia = lts.snapshot("a").unwrap().abstract_state;
        let ib = lts.snapshot("b").unwrap().abstract_state;
        let expected = ia.lca(&ib);
        assert_eq!(*lca.abstract_state, expected);
        assert_eq!(lca.concrete.elements(), vec![0, 1, 2]);
        // And the subsequent merge integrates everything.
        let out = lts.merge("a", "b").unwrap();
        assert_eq!(out.post.concrete.elements(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn snapshots_lists_every_branch() {
        let mut lts: StoreLts<GSet<u32>> = StoreLts::new("main");
        lts.create_branch("x", "main").unwrap();
        lts.create_branch("y", "x").unwrap();
        let names: Vec<&str> = lts.snapshots().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["main", "x", "y"]);
    }

    #[test]
    fn timestamps_increase_across_branches() {
        let mut lts: StoreLts<GSet<u32>> = StoreLts::new("main");
        lts.create_branch("dev", "main").unwrap();
        let t1 = lts.do_op("main", &GSetOp::Add(1)).unwrap().timestamp;
        let t2 = lts.do_op("dev", &GSetOp::Add(2)).unwrap().timestamp;
        let t3 = lts.do_op("main", &GSetOp::Add(3)).unwrap().timestamp;
        assert!(t1 < t2 && t2 < t3);
    }
}

//! Content addressing: object identifiers and the interning object store.
//!
//! Like Irmin and Git, the branch store identifies immutable values by the
//! hash of their content. Any state implementing [`std::hash::Hash`] can be
//! content-addressed: its `Hash` byte stream is fed to SHA-256 through
//! [`Sha256Hasher`]. Identical states intern to the same [`ObjectId`] in an
//! [`ObjectStore`], giving Git-style structural sharing of repeated states
//! (e.g. the many identical heads produced by read-only operations).

use crate::sha256::Sha256;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A 256-bit content address.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId([u8; 32]);

impl ObjectId {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Abbreviated hex form (first 8 hex digits), like `git log --oneline`.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({})", self.short())
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// A [`std::hash::Hasher`] backed by SHA-256.
///
/// `finish()` returns the first 8 digest bytes (the `Hasher` contract);
/// [`Sha256Hasher::digest`] returns the full 256-bit [`ObjectId`].
#[derive(Clone, Debug, Default)]
pub struct Sha256Hasher {
    ctx: Sha256,
}

impl Sha256Hasher {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the hasher, producing the content address.
    pub fn digest(self) -> ObjectId {
        ObjectId(self.ctx.finalize())
    }
}

impl Hasher for Sha256Hasher {
    fn write(&mut self, bytes: &[u8]) {
        self.ctx.update(bytes);
    }

    fn finish(&self) -> u64 {
        let digest = self.ctx.clone().finalize();
        u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
    }
}

/// The content address of any hashable value.
///
/// # Example
///
/// ```
/// use peepul_store::object::content_id;
///
/// let a = content_id(&vec![1u32, 2, 3]);
/// let b = content_id(&vec![1u32, 2, 3]);
/// let c = content_id(&vec![3u32, 2, 1]);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn content_id<T: Hash>(value: &T) -> ObjectId {
    let mut hasher = Sha256Hasher::new();
    value.hash(&mut hasher);
    hasher.digest()
}

/// An interning, content-addressed store of immutable values.
///
/// Inserting a value returns its [`ObjectId`]; inserting an equal value
/// again returns the same id and the same shared allocation.
pub struct ObjectStore<T> {
    objects: HashMap<ObjectId, Arc<T>>,
    inserts: u64,
    hits: u64,
}

impl<T: Hash> ObjectStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore {
            objects: HashMap::new(),
            inserts: 0,
            hits: 0,
        }
    }

    /// Interns a value, returning its content address and shared handle.
    pub fn insert(&mut self, value: T) -> (ObjectId, Arc<T>) {
        self.inserts += 1;
        let id = content_id(&value);
        let arc = self
            .objects
            .entry(id)
            .or_insert_with(|| Arc::new(value))
            .clone();
        if Arc::strong_count(&arc) > 2 {
            // Entry existed before (store + returned handle + prior users).
            self.hits += 1;
        }
        (id, arc)
    }

    /// Fetches a value by content address.
    pub fn get(&self, id: ObjectId) -> Option<Arc<T>> {
        self.objects.get(&id).cloned()
    }

    /// Number of *distinct* objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// `(total inserts, distinct objects)` — the gap is the structural
    /// sharing the content addressing bought.
    pub fn dedup_stats(&self) -> (u64, usize) {
        (self.inserts, self.objects.len())
    }
}

impl<T: Hash> Default for ObjectStore<T> {
    fn default() -> Self {
        ObjectStore::new()
    }
}

impl<T> fmt::Debug for ObjectStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ObjectStore({} objects, {} inserts)",
            self.objects.len(),
            self.inserts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_id_is_deterministic_and_discriminating() {
        assert_eq!(content_id(&42u64), content_id(&42u64));
        assert_ne!(content_id(&42u64), content_id(&43u64));
        assert_ne!(content_id(&"a"), content_id(&"b"));
    }

    #[test]
    fn hasher_finish_is_prefix_of_digest() {
        let mut h = Sha256Hasher::new();
        h.write(b"hello");
        let short = h.finish();
        let full = h.digest();
        assert_eq!(
            short,
            u64::from_be_bytes(full.as_bytes()[..8].try_into().unwrap())
        );
    }

    #[test]
    fn object_store_interns_equal_values() {
        let mut store: ObjectStore<Vec<u32>> = ObjectStore::new();
        let (id1, a1) = store.insert(vec![1, 2, 3]);
        let (id2, a2) = store.insert(vec![1, 2, 3]);
        assert_eq!(id1, id2);
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(store.len(), 1);
        let (id3, _) = store.insert(vec![4]);
        assert_ne!(id1, id3);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn object_store_get_roundtrip() {
        let mut store: ObjectStore<String> = ObjectStore::new();
        let (id, _) = store.insert("state".to_owned());
        assert_eq!(store.get(id).as_deref(), Some(&"state".to_owned()));
    }

    #[test]
    fn display_and_short_forms() {
        let id = content_id(&1u8);
        assert_eq!(id.to_string().len(), 64);
        assert_eq!(id.short().len(), 8);
        assert!(id.to_string().starts_with(&id.short()));
    }
}

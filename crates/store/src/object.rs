//! Content addressing: object identifiers and the interning object store.
//!
//! Like Irmin and Git, the branch store identifies immutable values by the
//! hash of their content. Since the codec unification there is exactly
//! **one** canonical encoding: a value's [`Wire`] bytes
//! ([`canonical_bytes`]) are simultaneously what a backend persists, what
//! replication transfers, and the SHA-256 preimage of the value's
//! [`ObjectId`] ([`content_id`]). The same bytes decode back to the typed
//! value, which is what makes a cold store reopenable as typed state
//! (`BranchStore::open`) and lets every ingest verify an object with one
//! hash and one decode.
//!
//! Identical states intern to the same [`ObjectId`] in an
//! [`ObjectStore`], giving Git-style structural sharing of repeated
//! states (e.g. the many identical heads produced by convergent merges).

use crate::backend::{Backend, MemoryBackend};
use crate::sha256::Sha256;
use peepul_core::Wire;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Appends the lowercase hex rendering of `bytes` to `out` — one `String`
/// reservation, no per-byte formatting machinery.
pub(crate) fn push_hex(bytes: &[u8], out: &mut String) {
    out.reserve(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0x0f) as usize] as char);
    }
}

/// A 256-bit content address.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId([u8; 32]);

impl ObjectId {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Reconstructs an id from raw digest bytes (e.g. read back from a
    /// persistent backend's index).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        ObjectId(bytes)
    }

    /// Abbreviated hex form (first 8 hex digits), like `git log --oneline`.
    pub fn short(&self) -> String {
        let mut s = String::new();
        push_hex(&self.0[..4], &mut s);
        s
    }
}

impl Wire for ObjectId {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let bytes = peepul_core::wire::take(input, 32)?;
        Some(ObjectId(bytes.try_into().expect("exact size")))
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({})", self.short())
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One buffered write_str instead of 32 formatter round-trips.
        let mut s = String::new();
        push_hex(&self.0, &mut s);
        f.write_str(&s)
    }
}

/// The content address of any encodable value: the SHA-256 of its
/// [`canonical_bytes`].
///
/// # Example
///
/// ```
/// use peepul_store::object::content_id;
///
/// let a = content_id(&vec![1u32, 2, 3]);
/// let b = content_id(&vec![1u32, 2, 3]);
/// let c = content_id(&vec![3u32, 2, 1]);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn content_id<T: Wire>(value: &T) -> ObjectId {
    ObjectId(Sha256::digest(&canonical_bytes(value)))
}

/// The content address of already-encoded canonical bytes — what ingest
/// uses to verify a received object with one hash, no re-encode.
pub fn content_id_of_bytes(bytes: &[u8]) -> ObjectId {
    ObjectId(Sha256::digest(bytes))
}

/// The canonical byte encoding of a value: its [`Wire`] encoding.
///
/// This single encoding is the storage format (what backends persist and
/// [`BranchStore::open`](crate::BranchStore::open) decodes back), the wire
/// format (what replication transfers), and the preimage of the value's
/// content address: `sha256(canonical_bytes(v))` equals
/// [`content_id`]`(v)` by definition. The encoding is platform-independent
/// (little-endian, fixed widths), so segment files and wire frames are a
/// portable interchange format — see DESIGN.md §4.1.
pub fn canonical_bytes<T: Wire>(value: &T) -> Vec<u8> {
    value.to_wire()
}

/// Decodes a typed value back from its canonical bytes — the inverse of
/// [`canonical_bytes`], used by the typed reopen path and by replication
/// ingest. `None` when the bytes are not a canonical encoding of `T`.
pub fn decode_canonical<T: Wire>(bytes: &[u8]) -> Option<T> {
    T::from_wire(bytes)
}

/// An interning, content-addressed store of immutable *typed* values.
///
/// Inserting a value returns its [`ObjectId`]; inserting an equal value
/// again returns the same id and the same shared allocation. Since the
/// backend refactor this is a typed view over a byte-level
/// [`MemoryBackend`]: the value's [`canonical_bytes`] go to the backend
/// (which owns the dedup/interning accounting), while the typed `Arc<T>`
/// handles are kept here so reads need no decoding.
pub struct ObjectStore<T> {
    backend: MemoryBackend,
    typed: HashMap<ObjectId, Arc<T>>,
}

impl<T: Wire> ObjectStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore {
            backend: MemoryBackend::new(),
            typed: HashMap::new(),
        }
    }

    /// Interns a value, returning its content address and shared handle.
    pub fn insert(&mut self, value: T) -> (ObjectId, Arc<T>) {
        let id = self
            .backend
            .put(&canonical_bytes(&value))
            .expect("in-memory put is infallible");
        let arc = self.typed.entry(id).or_insert_with(|| Arc::new(value));
        (id, arc.clone())
    }

    /// Fetches a value by content address.
    pub fn get(&self, id: ObjectId) -> Option<Arc<T>> {
        self.typed.get(&id).cloned()
    }

    /// Number of *distinct* objects stored.
    pub fn len(&self) -> usize {
        self.typed.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.typed.is_empty()
    }

    /// `(total inserts, distinct objects)` — the gap is the structural
    /// sharing the content addressing bought.
    pub fn dedup_stats(&self) -> (u64, usize) {
        (self.backend.stats().puts, self.typed.len())
    }

    /// The underlying byte-level backend (canonical encodings + stats).
    pub fn backend(&self) -> &MemoryBackend {
        &self.backend
    }
}

impl<T: Wire> Default for ObjectStore<T> {
    fn default() -> Self {
        ObjectStore::new()
    }
}

impl<T> fmt::Debug for ObjectStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ObjectStore({} objects, {} inserts)",
            self.typed.len(),
            self.backend.stats().puts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_id_is_deterministic_and_discriminating() {
        assert_eq!(content_id(&42u64), content_id(&42u64));
        assert_ne!(content_id(&42u64), content_id(&43u64));
        assert_ne!(
            content_id(&String::from("a")),
            content_id(&String::from("b"))
        );
    }

    #[test]
    fn object_store_interns_equal_values() {
        let mut store: ObjectStore<Vec<u32>> = ObjectStore::new();
        let (id1, a1) = store.insert(vec![1, 2, 3]);
        let (id2, a2) = store.insert(vec![1, 2, 3]);
        assert_eq!(id1, id2);
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(store.len(), 1);
        let (id3, _) = store.insert(vec![4]);
        assert_ne!(id1, id3);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn object_store_get_roundtrip() {
        let mut store: ObjectStore<String> = ObjectStore::new();
        let (id, _) = store.insert("state".to_owned());
        assert_eq!(store.get(id).as_deref(), Some(&"state".to_owned()));
    }

    #[test]
    fn display_and_short_forms() {
        let id = content_id(&1u8);
        assert_eq!(id.to_string().len(), 64);
        assert_eq!(id.short().len(), 8);
        assert!(id.to_string().starts_with(&id.short()));
        assert!(id.to_string().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn canonical_bytes_hash_to_the_content_id() {
        // The invariant every backend and every ingest relies on: hashing
        // the canonical encoding equals addressing the value directly.
        let values = [vec![1u32, 2, 3], vec![], vec![u32::MAX; 9]];
        for v in &values {
            let bytes = canonical_bytes(v);
            assert_eq!(content_id_of_bytes(&bytes), content_id(v));
        }
    }

    #[test]
    fn canonical_bytes_decode_back_to_the_value() {
        // The other half of the single-codec invariant: the stored bytes
        // are not a one-way hash stream, they decode to the typed value.
        let v = vec![(1u64, String::from("a")), (2, "b".into())];
        let bytes = canonical_bytes(&v);
        let back: Vec<(u64, String)> = decode_canonical(&bytes).expect("canonical bytes decode");
        assert_eq!(back, v);
        assert_eq!(canonical_bytes(&back), bytes);
        assert_eq!(decode_canonical::<u64>(&bytes[..3]), None);
    }

    #[test]
    fn object_store_exposes_backend_bytes() {
        let mut store: ObjectStore<u64> = ObjectStore::new();
        let (id, _) = store.insert(7);
        let bytes = store.backend().get(id).unwrap().expect("stored");
        assert_eq!(bytes, canonical_bytes(&7u64));
        assert_eq!(decode_canonical::<u64>(&bytes), Some(7));
    }
}

//! Content addressing: object identifiers and the interning object store.
//!
//! Like Irmin and Git, the branch store identifies immutable values by the
//! hash of their content. Any state implementing [`std::hash::Hash`] can be
//! content-addressed: its `Hash` byte stream is fed to SHA-256 through
//! [`Sha256Hasher`]. Identical states intern to the same [`ObjectId`] in an
//! [`ObjectStore`], giving Git-style structural sharing of repeated states
//! (e.g. the many identical heads produced by read-only operations).

use crate::backend::{Backend, MemoryBackend};
use crate::sha256::Sha256;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Appends the lowercase hex rendering of `bytes` to `out` — one `String`
/// reservation, no per-byte formatting machinery.
pub(crate) fn push_hex(bytes: &[u8], out: &mut String) {
    out.reserve(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0x0f) as usize] as char);
    }
}

/// A 256-bit content address.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId([u8; 32]);

impl ObjectId {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Reconstructs an id from raw digest bytes (e.g. read back from a
    /// persistent backend's index).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        ObjectId(bytes)
    }

    /// Abbreviated hex form (first 8 hex digits), like `git log --oneline`.
    pub fn short(&self) -> String {
        let mut s = String::new();
        push_hex(&self.0[..4], &mut s);
        s
    }
}

impl peepul_core::Wire for ObjectId {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let bytes = peepul_core::wire::take(input, 32)?;
        Some(ObjectId(bytes.try_into().expect("exact size")))
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({})", self.short())
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One buffered write_str instead of 32 formatter round-trips.
        let mut s = String::new();
        push_hex(&self.0, &mut s);
        f.write_str(&s)
    }
}

/// A [`std::hash::Hasher`] backed by SHA-256.
///
/// `finish()` returns the first 8 digest bytes (the `Hasher` contract);
/// [`Sha256Hasher::digest`] returns the full 256-bit [`ObjectId`].
#[derive(Clone, Debug, Default)]
pub struct Sha256Hasher {
    ctx: Sha256,
}

impl Sha256Hasher {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the hasher, producing the content address.
    pub fn digest(self) -> ObjectId {
        ObjectId(self.ctx.finalize())
    }
}

impl Hasher for Sha256Hasher {
    fn write(&mut self, bytes: &[u8]) {
        self.ctx.update(bytes);
    }

    fn finish(&self) -> u64 {
        let digest = self.ctx.clone().finalize();
        u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
    }
}

/// The content address of any hashable value.
///
/// # Example
///
/// ```
/// use peepul_store::object::content_id;
///
/// let a = content_id(&vec![1u32, 2, 3]);
/// let b = content_id(&vec![1u32, 2, 3]);
/// let c = content_id(&vec![3u32, 2, 1]);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn content_id<T: Hash>(value: &T) -> ObjectId {
    let mut hasher = Sha256Hasher::new();
    value.hash(&mut hasher);
    hasher.digest()
}

/// A [`std::hash::Hasher`] that records the exact byte stream it is fed.
///
/// The recorded stream is the workspace's *canonical encoding* of a
/// hashable value: deterministic for a given value (the `Hash` contract
/// plus our ordered-container convention), and by construction it hashes
/// to the value's [`content_id`]. Persistent backends store these bytes,
/// which makes every stored object integrity-checkable against its id.
#[derive(Clone, Debug, Default)]
struct CaptureHasher {
    bytes: Vec<u8>,
}

impl Hasher for CaptureHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    fn finish(&self) -> u64 {
        0 // never used as an integer hash
    }
}

/// The canonical byte encoding of a value: its `Hash` stream.
///
/// Invariant (tested below): `sha256(canonical_bytes(v))` equals
/// [`content_id`]`(v)` — ids computed by streaming and by encoding agree,
/// so a backend can verify any stored object against its address.
///
/// The stream is deterministic for one build on one platform, which is
/// what the backend-equivalence suite relies on; std does not guarantee
/// it across architectures or Rust releases (native-endian length
/// prefixes), so segment files are not a portable interchange format —
/// see DESIGN.md §4.1.
pub fn canonical_bytes<T: Hash>(value: &T) -> Vec<u8> {
    let mut capture = CaptureHasher::default();
    value.hash(&mut capture);
    capture.bytes
}

/// An interning, content-addressed store of immutable *typed* values.
///
/// Inserting a value returns its [`ObjectId`]; inserting an equal value
/// again returns the same id and the same shared allocation. Since the
/// backend refactor this is a typed view over a byte-level
/// [`MemoryBackend`]: the value's [`canonical_bytes`] go to the backend
/// (which owns the dedup/interning accounting), while the typed `Arc<T>`
/// handles are kept here so reads need no decoding.
pub struct ObjectStore<T> {
    backend: MemoryBackend,
    typed: HashMap<ObjectId, Arc<T>>,
}

impl<T: Hash> ObjectStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore {
            backend: MemoryBackend::new(),
            typed: HashMap::new(),
        }
    }

    /// Interns a value, returning its content address and shared handle.
    pub fn insert(&mut self, value: T) -> (ObjectId, Arc<T>) {
        let id = self
            .backend
            .put(&canonical_bytes(&value))
            .expect("in-memory put is infallible");
        let arc = self.typed.entry(id).or_insert_with(|| Arc::new(value));
        (id, arc.clone())
    }

    /// Fetches a value by content address.
    pub fn get(&self, id: ObjectId) -> Option<Arc<T>> {
        self.typed.get(&id).cloned()
    }

    /// Number of *distinct* objects stored.
    pub fn len(&self) -> usize {
        self.typed.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.typed.is_empty()
    }

    /// `(total inserts, distinct objects)` — the gap is the structural
    /// sharing the content addressing bought.
    pub fn dedup_stats(&self) -> (u64, usize) {
        (self.backend.stats().puts, self.typed.len())
    }

    /// The underlying byte-level backend (canonical encodings + stats).
    pub fn backend(&self) -> &MemoryBackend {
        &self.backend
    }
}

impl<T: Hash> Default for ObjectStore<T> {
    fn default() -> Self {
        ObjectStore::new()
    }
}

impl<T> fmt::Debug for ObjectStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ObjectStore({} objects, {} inserts)",
            self.typed.len(),
            self.backend.stats().puts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_id_is_deterministic_and_discriminating() {
        assert_eq!(content_id(&42u64), content_id(&42u64));
        assert_ne!(content_id(&42u64), content_id(&43u64));
        assert_ne!(content_id(&"a"), content_id(&"b"));
    }

    #[test]
    fn hasher_finish_is_prefix_of_digest() {
        let mut h = Sha256Hasher::new();
        h.write(b"hello");
        let short = h.finish();
        let full = h.digest();
        assert_eq!(
            short,
            u64::from_be_bytes(full.as_bytes()[..8].try_into().unwrap())
        );
    }

    #[test]
    fn object_store_interns_equal_values() {
        let mut store: ObjectStore<Vec<u32>> = ObjectStore::new();
        let (id1, a1) = store.insert(vec![1, 2, 3]);
        let (id2, a2) = store.insert(vec![1, 2, 3]);
        assert_eq!(id1, id2);
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(store.len(), 1);
        let (id3, _) = store.insert(vec![4]);
        assert_ne!(id1, id3);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn object_store_get_roundtrip() {
        let mut store: ObjectStore<String> = ObjectStore::new();
        let (id, _) = store.insert("state".to_owned());
        assert_eq!(store.get(id).as_deref(), Some(&"state".to_owned()));
    }

    #[test]
    fn display_and_short_forms() {
        let id = content_id(&1u8);
        assert_eq!(id.to_string().len(), 64);
        assert_eq!(id.short().len(), 8);
        assert!(id.to_string().starts_with(&id.short()));
        assert!(id.to_string().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn canonical_bytes_hash_to_the_content_id() {
        // The invariant persistent backends rely on: encoding then hashing
        // equals hashing directly.
        let values = [vec![1u32, 2, 3], vec![], vec![u32::MAX; 9]];
        for v in &values {
            assert_eq!(ObjectId(Sha256::digest(&canonical_bytes(v))), content_id(v));
        }
    }

    #[test]
    fn object_store_exposes_backend_bytes() {
        let mut store: ObjectStore<u64> = ObjectStore::new();
        let (id, _) = store.insert(7);
        let bytes = store.backend().get(id).unwrap().expect("stored");
        assert_eq!(bytes, canonical_bytes(&7u64));
    }
}

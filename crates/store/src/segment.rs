//! The append-only on-disk segment backend.
//!
//! One log-structured file holds every record ever written — objects and
//! ref updates alike — in the order they were published, like a Git
//! packfile crossed with a write-ahead log:
//!
//! ```text
//! file   := MAGIC record*
//! MAGIC  := "PEEPULS1"                     (8 bytes)
//! record := kind:u8 len:u32le payload[len] check[8]
//! kind 1 := object  — payload is the object bytes; its address is
//!                     sha256(payload)
//! kind 2 := ref     — payload is name_len:u16le name[name_len] id[32]
//! check  := first 8 bytes of sha256(payload)
//! ```
//!
//! **Crash safety** is write → fsync → publish: a record is appended and
//! (in durable mode) fsynced *before* the in-memory offset index learns
//! about it, so a crash mid-write can only lose the unpublished tail.
//! [`SegmentBackend::open`] rebuilds the index by scanning the file and
//! stops at the first truncated or checksum-failing record, truncating
//! the file back to the last good byte — everything published before the
//! crash point is intact (`tests/crash_reopen.rs` tortures this by
//! truncating at every offset).
//!
//! Refs are recovered last-writer-wins by replay order. Objects are
//! deduplicated by the index: re-putting stored bytes writes nothing.

use crate::backend::{Backend, BackendStats};
use crate::error::StoreError;
use crate::object::ObjectId;
use crate::sha256::Sha256;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"PEEPULS1";
const KIND_OBJECT: u8 = 1;
const KIND_REF: u8 = 2;
/// kind + len prefix.
const HEADER_LEN: u64 = 1 + 4;
/// Truncated-sha256 payload checksum suffix.
const CHECK_LEN: u64 = 8;

/// Tuning knobs for a [`SegmentBackend`].
#[derive(Copy, Clone, Debug)]
pub struct SegmentOptions {
    /// Fsync after every record (write → fsync → publish). Disable only
    /// for tests/benchmarks where durability across power loss is not the
    /// point — the publish ordering itself is unaffected.
    pub durable: bool,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        SegmentOptions { durable: true }
    }
}

/// Append-only on-disk backend: a single segment file plus an in-memory
/// offset index rebuilt on open.
///
/// # Example
///
/// ```
/// use peepul_store::backend::Backend;
/// use peepul_store::segment::SegmentBackend;
///
/// let dir = std::env::temp_dir().join(format!("peepul-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let id = {
///     let mut b = SegmentBackend::open(&dir).unwrap();
///     b.put(b"durable bytes").unwrap()
/// };
/// // Reopen from disk: the object and its integrity survive.
/// let b = SegmentBackend::open(&dir).unwrap();
/// assert_eq!(b.get(id).unwrap().as_deref(), Some(&b"durable bytes"[..]));
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct SegmentBackend {
    file: File,
    path: PathBuf,
    /// Next append offset == number of valid bytes.
    end: u64,
    /// ObjectId → (payload offset, payload length).
    index: HashMap<ObjectId, (u64, u32)>,
    refs: BTreeMap<String, ObjectId>,
    options: SegmentOptions,
    stats: BackendStats,
}

impl SegmentBackend {
    /// Opens (or creates) the segment under directory `dir` with default
    /// (durable) options, scanning any existing records back into the
    /// index.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure; [`StoreError::Corrupt`]
    /// if the file exists but does not start with the segment magic.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, SegmentOptions::default())
    }

    /// [`SegmentBackend::open`] with explicit [`SegmentOptions`].
    ///
    /// # Errors
    ///
    /// As [`SegmentBackend::open`].
    pub fn open_with(dir: impl AsRef<Path>, options: SegmentOptions) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join("store.seg");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let file_len = file.metadata()?.len();

        let mut backend = SegmentBackend {
            file,
            path,
            end: MAGIC.len() as u64,
            index: HashMap::new(),
            refs: BTreeMap::new(),
            options,
            stats: BackendStats::default(),
        };

        if file_len == 0 {
            backend.file.write_all(MAGIC)?;
            if options.durable {
                backend.file.sync_data()?;
            }
        } else {
            let mut magic = [0u8; 8];
            backend.file.seek(SeekFrom::Start(0))?;
            backend.file.read_exact(&mut magic)?;
            if &magic != MAGIC {
                return Err(StoreError::Corrupt(format!(
                    "{} does not start with the segment magic",
                    backend.path.display()
                )));
            }
            backend.replay(file_len)?;
        }
        Ok(backend)
    }

    /// Scans records from just past the magic, publishing each valid one;
    /// stops at the first torn or corrupt record and truncates it away.
    fn replay(&mut self, file_len: u64) -> Result<(), StoreError> {
        let mut bytes = Vec::new();
        self.file.seek(SeekFrom::Start(MAGIC.len() as u64))?;
        self.file.read_to_end(&mut bytes)?;
        debug_assert_eq!(bytes.len() as u64, file_len - MAGIC.len() as u64);

        let mut pos = 0usize;
        let mut valid_end = MAGIC.len() as u64;
        while pos < bytes.len() {
            let Some(record) = parse_record(&bytes[pos..]) else {
                break; // torn or corrupt tail: everything after is dropped
            };
            let payload_offset = valid_end + HEADER_LEN;
            match record {
                Record::Object(payload) => {
                    let id = ObjectId::from_bytes(Sha256::digest(&payload));
                    self.index
                        .insert(id, (payload_offset, payload.len() as u32));
                }
                Record::Ref(name, id) => {
                    self.refs.insert(name, id);
                }
            }
            let record_len = HEADER_LEN + record_payload_len(&bytes[pos..]) as u64 + CHECK_LEN;
            pos += record_len as usize;
            valid_end += record_len;
        }
        if valid_end < file_len {
            // Drop the torn tail so future appends never interleave with
            // garbage.
            self.file.set_len(valid_end)?;
            if self.options.durable {
                self.file.sync_data()?;
            }
        }
        self.end = valid_end;
        Ok(())
    }

    /// Appends one framed record; returns the payload's file offset.
    /// Publishing (index/refs update) is the *caller's* job, after this
    /// returns — write → fsync → publish.
    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<u64, StoreError> {
        let payload_offset = self.end + HEADER_LEN;
        let mut record = Vec::with_capacity(payload.len() + (HEADER_LEN + CHECK_LEN) as usize);
        record.push(kind);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(payload);
        record.extend_from_slice(&Sha256::digest(payload)[..CHECK_LEN as usize]);
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&record)?;
        if self.options.durable {
            self.file.sync_data()?;
        }
        self.end += record.len() as u64;
        Ok(payload_offset)
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of valid (published) segment, including the magic.
    pub fn len_bytes(&self) -> u64 {
        self.end
    }
}

enum Record {
    Object(Vec<u8>),
    Ref(String, ObjectId),
}

/// Payload length claimed by the record header at `bytes[0..]`, assuming
/// at least a full header is present.
fn record_payload_len(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]])
}

/// Parses and checksum-verifies one record at `bytes[0..]`. `None` on a
/// torn (incomplete) or corrupt record.
fn parse_record(bytes: &[u8]) -> Option<Record> {
    if bytes.len() < (HEADER_LEN + CHECK_LEN) as usize {
        return None;
    }
    let kind = bytes[0];
    let len = record_payload_len(bytes) as usize;
    let payload_start = HEADER_LEN as usize;
    let check_start = payload_start.checked_add(len)?;
    let record_end = check_start.checked_add(CHECK_LEN as usize)?;
    if bytes.len() < record_end {
        return None;
    }
    let payload = &bytes[payload_start..check_start];
    if Sha256::digest(payload)[..CHECK_LEN as usize] != bytes[check_start..record_end] {
        return None;
    }
    match kind {
        KIND_OBJECT => Some(Record::Object(payload.to_vec())),
        KIND_REF => {
            if payload.len() < 2 {
                return None;
            }
            let name_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
            if payload.len() != 2 + name_len + 32 {
                return None;
            }
            let name = String::from_utf8(payload[2..2 + name_len].to_vec()).ok()?;
            let mut id = [0u8; 32];
            id.copy_from_slice(&payload[2 + name_len..]);
            Some(Record::Ref(name, ObjectId::from_bytes(id)))
        }
        _ => None,
    }
}

impl Backend for SegmentBackend {
    fn put(&mut self, bytes: &[u8]) -> Result<ObjectId, StoreError> {
        let id = ObjectId::from_bytes(Sha256::digest(bytes));
        self.put_known(id, bytes)?;
        Ok(id)
    }

    fn put_known(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(), StoreError> {
        debug_assert_eq!(
            id,
            ObjectId::from_bytes(Sha256::digest(bytes)),
            "put_known caller must pass sha256(bytes)"
        );
        self.stats.puts += 1;
        if self.index.contains_key(&id) {
            self.stats.dedup_hits += 1;
            return Ok(());
        }
        let offset = self.append(KIND_OBJECT, bytes)?;
        // Publish only after the write (and fsync) succeeded.
        self.index.insert(id, (offset, bytes.len() as u32));
        Ok(())
    }

    fn get(&self, id: ObjectId) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(&(offset, len)) = self.index.get(&id) else {
            return Ok(None);
        };
        let mut buf = vec![0u8; len as usize];
        // NB: `try_clone` shares one file cursor with `self.file` — this
        // read *does* move it. That is safe only because `append` always
        // seeks to `self.end` before writing; keep that invariant.
        let mut reader = self.file.try_clone()?;
        reader.seek(SeekFrom::Start(offset))?;
        reader.read_exact(&mut buf)?;
        if ObjectId::from_bytes(Sha256::digest(&buf)) != id {
            return Err(StoreError::Corrupt(format!(
                "object {id} bytes no longer hash to their address"
            )));
        }
        Ok(Some(buf))
    }

    fn contains(&self, id: ObjectId) -> Result<bool, StoreError> {
        Ok(self.index.contains_key(&id))
    }

    fn set_ref(&mut self, name: &str, id: ObjectId) -> Result<(), StoreError> {
        let mut payload = Vec::with_capacity(2 + name.len() + 32);
        payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
        payload.extend_from_slice(name.as_bytes());
        payload.extend_from_slice(id.as_bytes());
        self.append(KIND_REF, &payload)?;
        self.refs.insert(name.to_owned(), id);
        Ok(())
    }

    fn get_ref(&self, name: &str) -> Result<Option<ObjectId>, StoreError> {
        Ok(self.refs.get(name).copied())
    }

    fn refs(&self) -> Result<Vec<(String, ObjectId)>, StoreError> {
        Ok(self.refs.iter().map(|(n, i)| (n.clone(), *i)).collect())
    }

    fn object_count(&self) -> usize {
        self.index.len()
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "segment"
    }
}

impl fmt::Debug for SegmentBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SegmentBackend({} objects, {} refs, {} bytes, {})",
            self.index.len(),
            self.refs.len(),
            self.end,
            self.path.display()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("peepul-segment-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick() -> SegmentOptions {
        SegmentOptions { durable: false }
    }

    #[test]
    fn put_get_roundtrip_and_dedup() {
        let dir = scratch("roundtrip");
        let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
        let id = b.put(b"payload").unwrap();
        assert_eq!(b.put(b"payload").unwrap(), id);
        assert_eq!(b.object_count(), 1);
        assert_eq!(b.stats().dedup_hits, 1);
        assert_eq!(b.get(id).unwrap().as_deref(), Some(&b"payload"[..]));
        assert!(b.contains(id).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_restores_objects_and_refs() {
        let dir = scratch("reopen");
        let (id_a, id_b) = {
            let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
            let a = b.put(b"first").unwrap();
            let c = b.put(b"second").unwrap();
            b.set_ref("main", a).unwrap();
            b.set_ref("main", c).unwrap();
            b.set_ref("dev", a).unwrap();
            (a, c)
        };
        let b = SegmentBackend::open_with(&dir, quick()).unwrap();
        assert_eq!(b.get(id_a).unwrap().as_deref(), Some(&b"first"[..]));
        assert_eq!(b.get(id_b).unwrap().as_deref(), Some(&b"second"[..]));
        // Last writer wins across the replay.
        assert_eq!(b.get_ref("main").unwrap(), Some(id_b));
        assert_eq!(b.get_ref("dev").unwrap(), Some(id_a));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_on_reopen() {
        let dir = scratch("torn");
        let (id_good, file) = {
            let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
            let good = b.put(b"published before the crash").unwrap();
            b.put(b"the record a crash will tear").unwrap();
            (good, b.path().to_path_buf())
        };
        // Tear the last record: chop 3 bytes off its checksum.
        let len = std::fs::metadata(&file).unwrap().len();
        let f = OpenOptions::new().write(true).open(&file).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let b = SegmentBackend::open_with(&dir, quick()).unwrap();
        assert!(b.contains(id_good).unwrap());
        assert_eq!(b.object_count(), 1);
        // The file was truncated back to the last good record.
        assert_eq!(std::fs::metadata(&file).unwrap().len(), b.len_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_after_torn_reopen_are_clean() {
        let dir = scratch("torn-append");
        let id_good = {
            let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
            let good = b.put(b"keep me").unwrap();
            b.put(b"tear me").unwrap();
            good
        };
        let file = dir.join("store.seg");
        let len = std::fs::metadata(&file).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&file)
            .unwrap()
            .set_len(len - 1)
            .unwrap();

        let id_new = {
            let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
            b.put(b"written after recovery").unwrap()
        };
        let b = SegmentBackend::open_with(&dir, quick()).unwrap();
        assert!(b.contains(id_good).unwrap());
        assert!(b.contains(id_new).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let dir = scratch("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("store.seg"), b"NOTPEEPL extra").unwrap();
        assert!(matches!(
            SegmentBackend::open_with(&dir, quick()),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

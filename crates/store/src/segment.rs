//! The multi-segment on-disk storage engine.
//!
//! A data directory holds a **manifest** plus an ordered set of data
//! files — append-only *segments* and read-optimized *packs*:
//!
//! ```text
//! dir/
//!   manifest            the authoritative, atomically swapped file list
//!   pack-0007.pack      compacted cold data (≤1 per store)
//!   segment-0008.seg    sealed segment (append-only, full)
//!   segment-0009.seg    the ACTIVE segment — the only file ever written
//! ```
//!
//! **Segment format** (unchanged since the single-file engine):
//!
//! ```text
//! segment := MAGIC record*
//! MAGIC   := "PEEPULS1"                     (8 bytes)
//! record  := kind:u8 len:u32le payload[len] check[8]
//! kind 1  := object  — payload is the object bytes; its address is
//!                      sha256(payload)
//! kind 2  := ref     — payload is name_len:u16le name[name_len] id[32]
//! check   := first 8 bytes of sha256(payload)
//! ```
//!
//! **Pack format** — produced by compaction, never appended to. Object
//! payloads are stored back to back; a footer-addressed offset index is
//! loaded at open without touching (or hashing) a single payload byte,
//! so reopening a many-gigabyte pack costs O(index):
//!
//! ```text
//! pack   := "PEEPULP1" payload* index footer
//! index  := obj_count:u32le (id[32] offset:u64le len:u32le)*
//!           ref_count:u32le (name_len:u16le name id[32])*
//! footer := index_offset:u64le index_len:u64le check[8]
//!           (check = first 8 bytes of sha256(index))
//! ```
//!
//! # Lifecycle: rotation, compaction, GC
//!
//! Appends go to the active segment only. When it would exceed
//! [`SegmentOptions::max_segment_bytes`] it is **rotated**: fsynced,
//! sealed, and a fresh `segment-NNNN.seg` becomes active via a manifest
//! swap. **Compaction** folds every sealed file (segments and the
//! previous pack) into one new pack — optionally dropping objects not in
//! a caller-supplied live set, which is how
//! [`Backend::collect_garbage`] reclaims unreachable objects. Every
//! transition publishes by *atomic manifest swap* (write `manifest.tmp`,
//! fsync, rename): a crash at any intermediate point leaves either the
//! old or the new manifest, both of which describe a complete, valid
//! store. Data files not listed by the manifest are leftovers of an
//! interrupted rotation/compaction and are deleted at open.
//!
//! # Crash safety and group commit
//!
//! Within the active segment the contract is append-only + torn-tail
//! truncation: [`SegmentBackend::open`] replays records in order and
//! truncates at the first torn or corrupt one, so the surviving store is
//! always a *prefix* of the published history. Sealed files are fsynced
//! before the manifest lists them and are required to be fully valid.
//!
//! *When* bytes reach stable storage is governed by
//! [`SegmentOptions::flush`] ([`FlushPolicy`]): appends themselves never
//! fsync; the store signals logical commit boundaries through
//! [`Backend::commit_boundary`], so one transaction (or one ingested
//! pack) costs one fsync instead of one per record — and coalesced or
//! explicit policies amortise even that across commits. The prefix
//! property holds under every policy; the policy only bounds how much
//! acknowledged-but-unsynced tail a power loss may cost.

use crate::backend::{Backend, BackendStats, StorageInfo, SweepStats};
use crate::error::StoreError;
use crate::object::ObjectId;
use crate::sha256::Sha256;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const MAGIC: &[u8; 8] = b"PEEPULS1";
const PACK_MAGIC: &[u8; 8] = b"PEEPULP1";
const MANIFEST_MAGIC: &str = "PEEPULM1";
const MANIFEST: &str = "manifest";
const MANIFEST_TMP: &str = "manifest.tmp";
const PACK_TMP: &str = "pack.tmp";
const LEGACY_SEGMENT: &str = "store.seg";
const KIND_OBJECT: u8 = 1;
const KIND_REF: u8 = 2;
/// A keyed record ([`Backend::put_keyed`]): the payload is the advertised
/// 32-byte `ObjectId` followed by the caller's record bytes, which do
/// *not* hash to the id (the delta-storage envelope). Self-describing so
/// crash replay and pack compaction recover the address without help
/// from any index.
const KIND_KEYED: u8 = 3;
/// kind + len prefix.
const HEADER_LEN: u64 = 1 + 4;
/// Truncated-sha256 payload checksum suffix.
const CHECK_LEN: u64 = 8;
/// index_offset + index_len + check.
const PACK_FOOTER_LEN: u64 = 8 + 8 + 8;

/// When appended records are fsynced to stable storage.
///
/// Appends themselves never sync; the policy is consulted at every
/// logical commit boundary ([`Backend::commit_boundary`]). An explicit
/// [`Backend::flush`] always syncs, under every policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Fsync at every commit boundary: one sync per transaction/commit
    /// (never one per record). The durable default.
    PerCommit,
    /// Group commit: sync at a commit boundary only when `max_delay` has
    /// elapsed since the last sync, batching many commits into one fsync.
    /// A crash can lose at most the commits acknowledged within the
    /// window (their prefix ordering is still preserved).
    Coalesced {
        /// Upper bound on how long an acknowledged commit may stay
        /// unsynced before the next boundary forces a sync.
        max_delay: Duration,
    },
    /// Never sync at commit boundaries; only [`Backend::flush`] (and
    /// rotation/compaction, which always seal durably) write stable
    /// storage. For callers that schedule their own sync points.
    Explicit,
}

/// Tuning knobs for a [`SegmentBackend`].
#[derive(Copy, Clone, Debug)]
pub struct SegmentOptions {
    /// Master switch for fsync. With `false` no sync is ever issued
    /// (tests/benchmarks where durability across power loss is not the
    /// point — publish ordering and the on-disk layout are unaffected).
    pub durable: bool,
    /// When commit boundaries reach stable storage. Ignored when
    /// `durable` is `false`.
    pub flush: FlushPolicy,
    /// Rotate the active segment once it would exceed this many bytes. A
    /// single record larger than the cap still lands (in a fresh segment
    /// of its own).
    pub max_segment_bytes: u64,
    /// Delta-chain bound `K` surfaced through
    /// [`Backend::snapshot_interval`]: the branch store writes a full
    /// snapshot state at least every `K` commits and stores the rest as
    /// deltas against their parent. `0` stores every state full.
    pub snapshot_interval: u32,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        SegmentOptions {
            durable: true,
            flush: FlushPolicy::PerCommit,
            max_segment_bytes: 64 * 1024 * 1024,
            snapshot_interval: crate::backend::DEFAULT_SNAPSHOT_INTERVAL,
        }
    }
}

/// Crash points inside [`SegmentBackend::compact`], for fault-injection
/// tests (`tests/crash_reopen.rs`). After a faulted call the on-disk
/// state is exactly what a crash at that point would leave; the
/// in-memory backend is stale and must be dropped without further use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CompactionFault {
    /// Crash after writing `pack.tmp`, before renaming it into place.
    AfterTempWrite,
    /// Crash after the pack rename, before the manifest swap — the pack
    /// exists but no manifest lists it.
    AfterPackRename,
    /// Crash after the manifest swap, before the superseded files are
    /// deleted — the stale files linger unlisted.
    AfterManifestSwap,
}

/// Where an object's bytes live: data file slot + offset + length.
#[derive(Copy, Clone, Debug)]
struct Location {
    slot: u32,
    offset: u64,
    len: u32,
}

/// One manifest-listed data file.
#[derive(Debug)]
struct StoreFile {
    name: String,
    path: PathBuf,
    file: File,
    /// Valid data bytes: for a segment, the append cursor (everything
    /// before it is replayed-valid); for a pack, the full file length.
    len: u64,
}

/// The multi-segment on-disk backend: rotated append-only segments plus
/// compacted packs, described by an atomically swapped manifest, with an
/// in-memory offset index over all of them.
///
/// # Example
///
/// ```
/// use peepul_store::backend::Backend;
/// use peepul_store::segment::SegmentBackend;
///
/// let dir = std::env::temp_dir().join(format!("peepul-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let id = {
///     let mut b = SegmentBackend::open(&dir).unwrap();
///     b.put(b"durable bytes").unwrap()
/// };
/// // Reopen from disk: the object and its integrity survive.
/// let b = SegmentBackend::open(&dir).unwrap();
/// assert_eq!(b.get(id).unwrap().as_deref(), Some(&b"durable bytes"[..]));
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct SegmentBackend {
    dir: PathBuf,
    /// Manifest order; the last entry is always the active segment.
    files: Vec<StoreFile>,
    /// ObjectId → where its payload bytes live.
    index: HashMap<ObjectId, Location>,
    refs: BTreeMap<String, ObjectId>,
    options: SegmentOptions,
    stats: BackendStats,
    /// Next file number for `segment-NNNN.seg` / `pack-NNNN.pack`.
    seq: u32,
    fsyncs: u64,
    /// Unsynced appends exist in the active segment.
    dirty: bool,
    last_sync: Instant,
}

impl SegmentBackend {
    /// Opens (or creates) the store under directory `dir` with default
    /// (durable, per-commit) options.
    ///
    /// Reads the manifest, loads every listed pack's offset index,
    /// replays every listed segment (truncating a torn tail of the
    /// active segment only), and deletes unlisted leftover data files
    /// from interrupted rotations/compactions. A legacy single-file
    /// `store.seg` directory is migrated in place.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure; [`StoreError::Corrupt`]
    /// if the manifest or a sealed file is invalid.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, SegmentOptions::default())
    }

    /// [`SegmentBackend::open`] with explicit [`SegmentOptions`].
    ///
    /// # Errors
    ///
    /// As [`SegmentBackend::open`].
    pub fn open_with(dir: impl AsRef<Path>, options: SegmentOptions) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let mut backend = SegmentBackend {
            dir,
            files: Vec::new(),
            index: HashMap::new(),
            refs: BTreeMap::new(),
            options,
            stats: BackendStats::default(),
            seq: 0,
            fsyncs: 0,
            dirty: false,
            last_sync: Instant::now(),
        };

        let manifest_path = backend.dir.join(MANIFEST);
        if !manifest_path.exists() {
            backend.initialize()?;
        }
        let names = backend.read_manifest()?;
        let last = names.len().saturating_sub(1);
        for (slot, name) in names.iter().enumerate() {
            if name.ends_with(".pack") {
                if slot == last {
                    return Err(StoreError::Corrupt(
                        "manifest must end with the active segment, not a pack".into(),
                    ));
                }
                backend.load_pack(name)?;
            } else {
                backend.load_segment(name, slot == last)?;
            }
        }
        backend.seq = names
            .iter()
            .filter_map(|n| parse_file_seq(n))
            .max()
            .map_or(0, |n| n + 1);
        backend.remove_unlisted(&names);
        Ok(backend)
    }

    /// First open of a directory: migrate a legacy single-file store or
    /// create an empty segment, then publish the initial manifest.
    fn initialize(&mut self) -> Result<(), StoreError> {
        let first = segment_name(0);
        let legacy = self.dir.join(LEGACY_SEGMENT);
        if legacy.exists() {
            // Legacy layout: the old store.seg IS a valid segment file —
            // adopt it as segment-0000 and describe it with a manifest.
            std::fs::rename(&legacy, self.dir.join(&first))?;
        } else {
            let mut f = File::create(self.dir.join(&first))?;
            f.write_all(MAGIC)?;
            if self.options.durable {
                f.sync_all()?;
                self.fsyncs += 1;
            }
        }
        self.write_manifest(&[first])
    }

    /// Parses the manifest: magic line then one data-file name per line.
    fn read_manifest(&self) -> Result<Vec<String>, StoreError> {
        let text = std::fs::read_to_string(self.dir.join(MANIFEST))?;
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(StoreError::Corrupt(format!(
                "{} does not start with the manifest magic",
                self.dir.join(MANIFEST).display()
            )));
        }
        let names: Vec<String> = lines.filter(|l| !l.is_empty()).map(str::to_owned).collect();
        if names.is_empty() {
            return Err(StoreError::Corrupt("manifest lists no data files".into()));
        }
        for n in &names {
            if n.contains('/') || n.contains('\\') || !(n.ends_with(".seg") || n.ends_with(".pack"))
            {
                return Err(StoreError::Corrupt(format!(
                    "manifest lists illegal data file name {n:?}"
                )));
            }
        }
        Ok(names)
    }

    /// Atomically publishes a new file list: write `manifest.tmp`, fsync
    /// it, rename over `manifest`, fsync the directory. A crash leaves
    /// either the old or the new manifest, never a torn one.
    fn write_manifest(&mut self, names: &[String]) -> Result<(), StoreError> {
        let mut text = String::from(MANIFEST_MAGIC);
        for n in names {
            text.push('\n');
            text.push_str(n);
        }
        text.push('\n');
        let tmp = self.dir.join(MANIFEST_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            if self.options.durable {
                f.sync_all()?;
                self.fsyncs += 1;
            }
        }
        std::fs::rename(&tmp, self.dir.join(MANIFEST))?;
        self.sync_dir()
    }

    fn sync_dir(&mut self) -> Result<(), StoreError> {
        if self.options.durable {
            File::open(&self.dir)?.sync_all()?;
            self.fsyncs += 1;
        }
        Ok(())
    }

    /// Deletes data files the manifest does not list — leftovers of a
    /// rotation or compaction that crashed before its manifest swap (or
    /// after it, before the victim files were deleted). Best effort.
    fn remove_unlisted(&self, listed: &[String]) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = (name.ends_with(".seg") || name.ends_with(".pack") || name == PACK_TMP)
                && !listed.iter().any(|l| l == name);
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// Opens and replays one listed segment, publishing its records into
    /// the index/refs. Only the active (last-listed) segment may carry a
    /// torn tail — it is truncated away; a torn *sealed* segment was
    /// fsynced before the manifest listed it, so damage there is real
    /// corruption.
    fn load_segment(&mut self, name: &str, active: bool) -> Result<(), StoreError> {
        let path = self.dir.join(name);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(false)
            .open(&path)
            .map_err(|e| {
                StoreError::Corrupt(format!("manifest lists missing segment {name}: {e}"))
            })?;
        let file_len = file.metadata()?.len();
        let mut magic = [0u8; 8];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut magic)
            .map_err(|_| StoreError::Corrupt(format!("segment {name} shorter than its magic")))?;
        if &magic != MAGIC {
            return Err(StoreError::Corrupt(format!(
                "{} does not start with the segment magic",
                path.display()
            )));
        }

        let slot = self.files.len() as u32;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut pos = 0usize;
        let mut valid_end = MAGIC.len() as u64;
        while pos < bytes.len() {
            let Some(record) = parse_record(&bytes[pos..]) else {
                break; // torn or corrupt tail
            };
            let payload_offset = valid_end + HEADER_LEN;
            match record {
                Record::Object(payload) => {
                    let id = ObjectId::from_bytes(Sha256::digest(&payload));
                    self.index.entry(id).or_insert(Location {
                        slot,
                        offset: payload_offset,
                        len: payload.len() as u32,
                    });
                }
                Record::Keyed(payload) => {
                    // The advertised address leads the payload; the
                    // location spans the whole payload (id included) so a
                    // later read can re-derive which case it holds.
                    let mut id = [0u8; 32];
                    id.copy_from_slice(&payload[..32]);
                    self.index
                        .entry(ObjectId::from_bytes(id))
                        .or_insert(Location {
                            slot,
                            offset: payload_offset,
                            len: payload.len() as u32,
                        });
                }
                Record::Ref(name, id) => {
                    self.refs.insert(name, id);
                }
            }
            let record_len = HEADER_LEN + record_payload_len(&bytes[pos..]) as u64 + CHECK_LEN;
            pos += record_len as usize;
            valid_end += record_len;
        }
        if valid_end < file_len {
            if !active {
                return Err(StoreError::Corrupt(format!(
                    "sealed segment {name} has a torn tail at byte {valid_end}"
                )));
            }
            // Drop the active segment's torn tail so future appends never
            // interleave with garbage.
            file.set_len(valid_end)?;
            if self.options.durable {
                file.sync_data()?;
                self.fsyncs += 1;
            }
        }
        self.files.push(StoreFile {
            name: name.to_owned(),
            path,
            file,
            len: valid_end,
        });
        Ok(())
    }

    /// Opens one listed pack: reads the footer, loads and
    /// checksum-verifies the offset index, publishes its entries and ref
    /// table. No payload byte is read or hashed here.
    fn load_pack(&mut self, name: &str) -> Result<(), StoreError> {
        let path = self.dir.join(name);
        let mut file = File::open(&path)
            .map_err(|e| StoreError::Corrupt(format!("manifest lists missing pack {name}: {e}")))?;
        let file_len = file.metadata()?.len();
        if file_len < MAGIC.len() as u64 + PACK_FOOTER_LEN {
            return Err(StoreError::Corrupt(format!("pack {name} too short")));
        }
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != PACK_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "{} does not start with the pack magic",
                path.display()
            )));
        }
        let mut footer = [0u8; PACK_FOOTER_LEN as usize];
        file.seek(SeekFrom::Start(file_len - PACK_FOOTER_LEN))?;
        file.read_exact(&mut footer)?;
        let index_offset = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let index_len = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
        if index_offset < MAGIC.len() as u64
            || index_offset
                .checked_add(index_len)
                .is_none_or(|end| end != file_len - PACK_FOOTER_LEN)
        {
            return Err(StoreError::Corrupt(format!(
                "pack {name} footer describes an impossible index"
            )));
        }
        let mut ix = vec![0u8; index_len as usize];
        file.seek(SeekFrom::Start(index_offset))?;
        file.read_exact(&mut ix)?;
        if Sha256::digest(&ix)[..CHECK_LEN as usize] != footer[16..24] {
            return Err(StoreError::Corrupt(format!(
                "pack {name} index fails its checksum"
            )));
        }

        let slot = self.files.len() as u32;
        let mut cur = ix.as_slice();
        let obj_count = take_u32(&mut cur)
            .ok_or_else(|| StoreError::Corrupt(format!("pack {name} index truncated")))?;
        for _ in 0..obj_count {
            let (id, offset, len) = take_obj_entry(&mut cur)
                .ok_or_else(|| StoreError::Corrupt(format!("pack {name} index truncated")))?;
            if offset
                .checked_add(len as u64)
                .is_none_or(|end| end > index_offset)
            {
                return Err(StoreError::Corrupt(format!(
                    "pack {name} index entry points outside the payload area"
                )));
            }
            self.index
                .entry(id)
                .or_insert(Location { slot, offset, len });
        }
        let ref_count = take_u32(&mut cur)
            .ok_or_else(|| StoreError::Corrupt(format!("pack {name} index truncated")))?;
        for _ in 0..ref_count {
            let (ref_name, id) = take_ref_entry(&mut cur)
                .ok_or_else(|| StoreError::Corrupt(format!("pack {name} ref table truncated")))?;
            self.refs.insert(ref_name, id);
        }
        self.files.push(StoreFile {
            name: name.to_owned(),
            path,
            file,
            len: file_len,
        });
        Ok(())
    }

    fn active(&self) -> &StoreFile {
        self.files
            .last()
            .expect("a store always has an active segment")
    }

    fn active_mut(&mut self) -> &mut StoreFile {
        self.files
            .last_mut()
            .expect("a store always has an active segment")
    }

    /// Appends one framed record to the active segment (rotating first if
    /// it would overflow); returns the payload's file location. No fsync
    /// here — durability is scheduled by [`Backend::commit_boundary`] /
    /// [`Backend::flush`] per the [`FlushPolicy`].
    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<Location, StoreError> {
        let record_len = HEADER_LEN + payload.len() as u64 + CHECK_LEN;
        if self.active().len > MAGIC.len() as u64
            && self.active().len + record_len > self.options.max_segment_bytes
        {
            self.rotate()?;
        }
        let mut record = Vec::with_capacity(payload.len() + (HEADER_LEN + CHECK_LEN) as usize);
        record.push(kind);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(payload);
        record.extend_from_slice(&Sha256::digest(payload)[..CHECK_LEN as usize]);
        let slot = (self.files.len() - 1) as u32;
        let active = self.active_mut();
        let offset = active.len + HEADER_LEN;
        active.file.seek(SeekFrom::Start(active.len))?;
        active.file.write_all(&record)?;
        active.len += record_len;
        self.dirty = true;
        Ok(Location {
            slot,
            offset,
            len: payload.len() as u32,
        })
    }

    /// Fsyncs the active segment if it has unsynced appends (and the
    /// store is durable). The one place data syncs happen.
    fn sync_active(&mut self) -> Result<(), StoreError> {
        if !self.dirty {
            return Ok(());
        }
        if self.options.durable {
            self.active().file.sync_data()?;
            self.fsyncs += 1;
        }
        self.dirty = false;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Seals the active segment and opens a fresh one: fsync the old,
    /// create `segment-NNNN.seg`, publish the extended file list by
    /// manifest swap. A crash anywhere in between recovers to a valid
    /// store (the unlisted new file is deleted at open). No-op when the
    /// active segment is empty.
    ///
    /// Called automatically when an append would overflow
    /// [`SegmentOptions::max_segment_bytes`]; public for tests and
    /// benchmarks that want to force the multi-segment layout.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn rotate(&mut self) -> Result<(), StoreError> {
        if self.active().len <= MAGIC.len() as u64 {
            return Ok(());
        }
        self.rotate_inner(true)
    }

    fn rotate_inner(&mut self, publish: bool) -> Result<(), StoreError> {
        // Seal durably: everything in the old segment must be on disk
        // before the manifest promotes a successor.
        self.sync_active()?;
        let name = segment_name(self.seq);
        self.seq += 1;
        let path = self.dir.join(&name);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(MAGIC)?;
        if self.options.durable {
            file.sync_all()?;
            self.fsyncs += 1;
        }
        if !publish {
            return Ok(()); // fault injection: crash before the manifest swap
        }
        let mut names: Vec<String> = self.files.iter().map(|f| f.name.clone()).collect();
        names.push(name.clone());
        self.write_manifest(&names)?;
        self.files.push(StoreFile {
            name,
            path,
            file,
            len: MAGIC.len() as u64,
        });
        Ok(())
    }

    /// Fault injection for crash tests: performs the first half of a
    /// rotation (seal + create the successor segment) and then "crashes"
    /// before the manifest swap. The backend must be dropped afterwards.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    #[doc(hidden)]
    pub fn crash_mid_rotation(&mut self) -> Result<(), StoreError> {
        self.rotate_inner(false)
    }

    /// Compacts every sealed file into one pack, keeping only objects in
    /// `live` (or all of them when `None`), then publishes the new
    /// two-file list (pack + active segment) and deletes the victims.
    /// `fault` optionally aborts mid-way to simulate a crash.
    fn compact_inner(
        &mut self,
        live: Option<&HashSet<ObjectId>>,
        fault: Option<CompactionFault>,
    ) -> Result<(), StoreError> {
        if self.files.len() < 2 {
            return Ok(()); // only the active segment: nothing sealed to fold
        }
        // The pack bakes in the *current* ref table, which may point at
        // objects whose records sit unsynced in the active segment; seal
        // them first so a post-compaction crash cannot leave a pack ref
        // dangling.
        self.sync_active()?;

        let active_slot = (self.files.len() - 1) as u32;
        let mut survivors: Vec<(ObjectId, Location)> = self
            .index
            .iter()
            .filter(|(id, loc)| loc.slot != active_slot && live.is_none_or(|l| l.contains(*id)))
            .map(|(id, loc)| (*id, *loc))
            .collect();
        // Preserve write locality: keep the victims' physical order.
        survivors.sort_by_key(|(_, loc)| (loc.slot, loc.offset));

        // Write pack.tmp: payloads back to back, then the offset index +
        // ref table, then the footer. Fsynced before it can be published.
        let tmp = self.dir.join(PACK_TMP);
        let mut new_locations: Vec<(ObjectId, u64, u32)> = Vec::with_capacity(survivors.len());
        {
            let mut out = std::io::BufWriter::new(File::create(&tmp)?);
            out.write_all(PACK_MAGIC)?;
            let mut offset = MAGIC.len() as u64;
            for (id, loc) in &survivors {
                let bytes = self.read_location(*loc)?;
                out.write_all(&bytes)?;
                new_locations.push((*id, offset, loc.len));
                offset += loc.len as u64;
            }
            let mut ix = Vec::new();
            ix.extend_from_slice(&(new_locations.len() as u32).to_le_bytes());
            for (id, off, len) in &new_locations {
                ix.extend_from_slice(id.as_bytes());
                ix.extend_from_slice(&off.to_le_bytes());
                ix.extend_from_slice(&len.to_le_bytes());
            }
            ix.extend_from_slice(&(self.refs.len() as u32).to_le_bytes());
            for (name, id) in &self.refs {
                ix.extend_from_slice(&(name.len() as u16).to_le_bytes());
                ix.extend_from_slice(name.as_bytes());
                ix.extend_from_slice(id.as_bytes());
            }
            out.write_all(&ix)?;
            out.write_all(&offset.to_le_bytes())?;
            out.write_all(&(ix.len() as u64).to_le_bytes())?;
            out.write_all(&Sha256::digest(&ix)[..CHECK_LEN as usize])?;
            let f = out
                .into_inner()
                .map_err(|e| StoreError::Io(e.to_string()))?;
            if self.options.durable {
                f.sync_all()?;
                self.fsyncs += 1;
            }
        }
        if fault == Some(CompactionFault::AfterTempWrite) {
            return Ok(());
        }

        let pack_name = pack_name(self.seq);
        self.seq += 1;
        let pack_path = self.dir.join(&pack_name);
        std::fs::rename(&tmp, &pack_path)?;
        self.sync_dir()?;
        if fault == Some(CompactionFault::AfterPackRename) {
            return Ok(());
        }

        let active_name = self.active().name.clone();
        self.write_manifest(&[pack_name.clone(), active_name])?;
        if fault == Some(CompactionFault::AfterManifestSwap) {
            return Ok(());
        }

        // Published: the victims are garbage now.
        let active = self.files.pop().expect("active segment exists");
        for victim in self.files.drain(..) {
            let _ = std::fs::remove_file(&victim.path);
        }
        let pack_len = std::fs::metadata(&pack_path)?.len();
        self.files.push(StoreFile {
            name: pack_name,
            path: pack_path,
            file: File::open(self.files_pack_reopen_path())?,
            len: pack_len,
        });
        self.files.push(active);

        // Re-point the index: survivors now live in the pack (slot 0),
        // active-segment objects keep their offsets in slot 1, and
        // anything compaction dropped leaves the index entirely.
        let mut index = HashMap::with_capacity(new_locations.len());
        for (id, offset, len) in new_locations {
            index.insert(
                id,
                Location {
                    slot: 0,
                    offset,
                    len,
                },
            );
        }
        for (id, loc) in &self.index {
            if loc.slot == active_slot {
                index.insert(
                    *id,
                    Location {
                        slot: 1,
                        offset: loc.offset,
                        len: loc.len,
                    },
                );
            }
        }
        self.index = index;
        Ok(())
    }

    /// The freshly renamed pack's path (helper so `compact_inner` can
    /// reopen it after the rename without re-deriving the name).
    fn files_pack_reopen_path(&self) -> PathBuf {
        // The pack was renamed to pack_name(seq - 1) just above.
        self.dir.join(pack_name(self.seq - 1))
    }

    /// Fault injection for crash tests: runs compaction up to (and
    /// including) `fault`, then "crashes". The backend must be dropped
    /// afterwards — its in-memory state intentionally reflects the
    /// pre-crash process.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    #[doc(hidden)]
    pub fn compact_with_fault(&mut self, fault: CompactionFault) -> Result<(), StoreError> {
        self.compact_inner(None, Some(fault))
    }

    /// Reads payload bytes at a location (no hash verification — callers
    /// verify where the contract requires it).
    fn read_location(&self, loc: Location) -> Result<Vec<u8>, StoreError> {
        let store_file = &self.files[loc.slot as usize];
        let mut buf = vec![0u8; loc.len as usize];
        // NB: `try_clone` shares one file cursor — this read moves it.
        // Safe because `append` always seeks before writing (and only
        // ever writes the active segment).
        let mut reader = store_file.file.try_clone()?;
        reader.seek(SeekFrom::Start(loc.offset))?;
        reader.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active segment's file path (the only file appends touch) —
    /// what crash tests truncate.
    pub fn active_path(&self) -> PathBuf {
        self.active().path.clone()
    }

    /// The manifest-listed data file names, in replay order (packs
    /// first, active segment last).
    pub fn file_names(&self) -> Vec<String> {
        self.files.iter().map(|f| f.name.clone()).collect()
    }

    /// Total valid data bytes across every manifest-listed file — the
    /// numerator of disk amplification (bytes on disk / live bytes).
    pub fn disk_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.len).sum()
    }

    /// Number of fsync calls issued over this backend's lifetime (data,
    /// manifest and directory syncs alike). Always 0 when the store is
    /// not durable. The bench pipeline divides this by commits to gate
    /// group commit.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs
    }

    fn sweep_stats_inner(&self, live: &HashSet<ObjectId>) -> SweepStats {
        let mut stats = SweepStats::default();
        for (id, loc) in &self.index {
            if live.contains(id) {
                stats.live_objects += 1;
                stats.live_bytes += loc.len as u64;
            } else {
                stats.dead_objects += 1;
                stats.dead_bytes += loc.len as u64;
            }
        }
        stats
    }
}

impl Drop for SegmentBackend {
    /// Best-effort final sync so a clean shutdown under a coalesced or
    /// explicit [`FlushPolicy`] does not discard acknowledged commits.
    fn drop(&mut self) {
        let _ = self.sync_active();
    }
}

fn segment_name(seq: u32) -> String {
    format!("segment-{seq:04}.seg")
}

fn pack_name(seq: u32) -> String {
    format!("pack-{seq:04}.pack")
}

/// The NNNN out of `segment-NNNN.seg` / `pack-NNNN.pack`.
fn parse_file_seq(name: &str) -> Option<u32> {
    let digits = name
        .strip_prefix("segment-")
        .or_else(|| name.strip_prefix("pack-"))?;
    let digits = digits
        .strip_suffix(".seg")
        .or_else(|| digits.strip_suffix(".pack"))?;
    digits.parse().ok()
}

fn take_u32(cur: &mut &[u8]) -> Option<u32> {
    let (head, rest) = cur.split_first_chunk::<4>()?;
    *cur = rest;
    Some(u32::from_le_bytes(*head))
}

fn take_obj_entry(cur: &mut &[u8]) -> Option<(ObjectId, u64, u32)> {
    let (id, rest) = cur.split_first_chunk::<32>()?;
    let (off, rest) = rest.split_first_chunk::<8>()?;
    let (len, rest) = rest.split_first_chunk::<4>()?;
    *cur = rest;
    Some((
        ObjectId::from_bytes(*id),
        u64::from_le_bytes(*off),
        u32::from_le_bytes(*len),
    ))
}

fn take_ref_entry(cur: &mut &[u8]) -> Option<(String, ObjectId)> {
    let (len, rest) = cur.split_first_chunk::<2>()?;
    let name_len = u16::from_le_bytes(*len) as usize;
    if rest.len() < name_len + 32 {
        return None;
    }
    let name = String::from_utf8(rest[..name_len].to_vec()).ok()?;
    let (id, rest2) = rest[name_len..].split_first_chunk::<32>()?;
    *cur = rest2;
    Some((name, ObjectId::from_bytes(*id)))
}

enum Record {
    Object(Vec<u8>),
    /// Keyed payload: 32-byte advertised id ++ caller record bytes.
    Keyed(Vec<u8>),
    Ref(String, ObjectId),
}

/// Payload length claimed by the record header at `bytes[0..]`, assuming
/// at least a full header is present.
fn record_payload_len(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]])
}

/// Parses and checksum-verifies one record at `bytes[0..]`. `None` on a
/// torn (incomplete) or corrupt record.
fn parse_record(bytes: &[u8]) -> Option<Record> {
    if bytes.len() < (HEADER_LEN + CHECK_LEN) as usize {
        return None;
    }
    let kind = bytes[0];
    let len = record_payload_len(bytes) as usize;
    let payload_start = HEADER_LEN as usize;
    let check_start = payload_start.checked_add(len)?;
    let record_end = check_start.checked_add(CHECK_LEN as usize)?;
    if bytes.len() < record_end {
        return None;
    }
    let payload = &bytes[payload_start..check_start];
    if Sha256::digest(payload)[..CHECK_LEN as usize] != bytes[check_start..record_end] {
        return None;
    }
    match kind {
        KIND_OBJECT => Some(Record::Object(payload.to_vec())),
        KIND_KEYED => {
            if payload.len() < 32 {
                return None;
            }
            Some(Record::Keyed(payload.to_vec()))
        }
        KIND_REF => {
            if payload.len() < 2 {
                return None;
            }
            let name_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
            if payload.len() != 2 + name_len + 32 {
                return None;
            }
            let name = String::from_utf8(payload[2..2 + name_len].to_vec()).ok()?;
            let mut id = [0u8; 32];
            id.copy_from_slice(&payload[2 + name_len..]);
            Some(Record::Ref(name, ObjectId::from_bytes(id)))
        }
        _ => None,
    }
}

impl Backend for SegmentBackend {
    fn put(&mut self, bytes: &[u8]) -> Result<ObjectId, StoreError> {
        let id = ObjectId::from_bytes(Sha256::digest(bytes));
        self.put_known(id, bytes)?;
        Ok(id)
    }

    fn put_known(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(), StoreError> {
        debug_assert_eq!(
            id,
            ObjectId::from_bytes(Sha256::digest(bytes)),
            "put_known caller must pass sha256(bytes)"
        );
        self.stats.puts += 1;
        if self.index.contains_key(&id) {
            self.stats.dedup_hits += 1;
            return Ok(());
        }
        let loc = self.append(KIND_OBJECT, bytes)?;
        // Publish only after the write succeeded.
        self.index.insert(id, loc);
        Ok(())
    }

    fn put_keyed(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(), StoreError> {
        self.stats.puts += 1;
        if self.index.contains_key(&id) {
            self.stats.dedup_hits += 1;
            return Ok(());
        }
        let mut payload = Vec::with_capacity(32 + bytes.len());
        payload.extend_from_slice(id.as_bytes());
        payload.extend_from_slice(bytes);
        let loc = self.append(KIND_KEYED, &payload)?;
        self.index.insert(id, loc);
        Ok(())
    }

    fn snapshot_interval(&self) -> u32 {
        self.options.snapshot_interval
    }

    fn get(&self, id: ObjectId) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(&loc) = self.index.get(&id) else {
            return Ok(None);
        };
        let buf = self.read_location(loc)?;
        // Content-addressed object: the bytes hash to their address.
        if ObjectId::from_bytes(Sha256::digest(&buf)) == id {
            return Ok(Some(buf));
        }
        // Keyed record: the payload carries the advertised address up
        // front (a content collision here would require an object to
        // contain its own sha256 — not constructible).
        if buf.len() >= 32 && buf[..32] == *id.as_bytes() {
            return Ok(Some(buf[32..].to_vec()));
        }
        Err(StoreError::Corrupt(format!(
            "object {id} bytes neither hash to their address nor form a keyed record"
        )))
    }

    fn contains(&self, id: ObjectId) -> Result<bool, StoreError> {
        Ok(self.index.contains_key(&id))
    }

    fn set_ref(&mut self, name: &str, id: ObjectId) -> Result<(), StoreError> {
        let mut payload = Vec::with_capacity(2 + name.len() + 32);
        payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
        payload.extend_from_slice(name.as_bytes());
        payload.extend_from_slice(id.as_bytes());
        self.append(KIND_REF, &payload)?;
        self.refs.insert(name.to_owned(), id);
        Ok(())
    }

    fn get_ref(&self, name: &str) -> Result<Option<ObjectId>, StoreError> {
        Ok(self.refs.get(name).copied())
    }

    fn refs(&self) -> Result<Vec<(String, ObjectId)>, StoreError> {
        Ok(self.refs.iter().map(|(n, i)| (n.clone(), *i)).collect())
    }

    fn object_count(&self) -> usize {
        self.index.len()
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        self.sync_active()
    }

    fn commit_boundary(&mut self) -> Result<(), StoreError> {
        match self.options.flush {
            FlushPolicy::PerCommit => self.sync_active(),
            FlushPolicy::Coalesced { max_delay } => {
                if self.dirty && self.last_sync.elapsed() >= max_delay {
                    self.sync_active()
                } else {
                    Ok(())
                }
            }
            FlushPolicy::Explicit => Ok(()),
        }
    }

    fn sweep_stats(&self, live: &HashSet<ObjectId>) -> Result<SweepStats, StoreError> {
        Ok(self.sweep_stats_inner(live))
    }

    fn collect_garbage(&mut self, live: &HashSet<ObjectId>) -> Result<SweepStats, StoreError> {
        let stats = self.sweep_stats_inner(live);
        // Seal the active segment so *all* objects sit in sealed files,
        // then fold those into one pack keeping only the live set. The
        // dead bytes vanish with the victim files.
        self.rotate()?;
        self.compact_inner(Some(live), None)?;
        Ok(stats)
    }

    fn compact(&mut self) -> Result<(), StoreError> {
        self.compact_inner(None, None)
    }

    fn kind(&self) -> &'static str {
        "segment"
    }

    fn storage_info(&self) -> StorageInfo {
        let flush = if !self.options.durable {
            "none".to_string()
        } else {
            match self.options.flush {
                FlushPolicy::PerCommit => "per-commit".to_string(),
                FlushPolicy::Coalesced { max_delay } => {
                    format!("coalesced:{}ms", max_delay.as_millis())
                }
                FlushPolicy::Explicit => "explicit".to_string(),
            }
        };
        StorageInfo {
            disk_bytes: self.disk_bytes(),
            segments: self.files.len() as u64,
            fsyncs: self.fsyncs,
            flush,
        }
    }
}

impl fmt::Debug for SegmentBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SegmentBackend({} objects, {} refs, {} files, {} bytes, {})",
            self.index.len(),
            self.refs.len(),
            self.files.len(),
            self.disk_bytes(),
            self.dir.display()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("peepul-segment-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick() -> SegmentOptions {
        SegmentOptions {
            durable: false,
            ..SegmentOptions::default()
        }
    }

    /// Tiny cap so a handful of puts exercises rotation.
    fn tiny() -> SegmentOptions {
        SegmentOptions {
            durable: false,
            max_segment_bytes: 256,
            ..SegmentOptions::default()
        }
    }

    #[test]
    fn put_get_roundtrip_and_dedup() {
        let dir = scratch("roundtrip");
        let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
        let id = b.put(b"payload").unwrap();
        assert_eq!(b.put(b"payload").unwrap(), id);
        assert_eq!(b.object_count(), 1);
        assert_eq!(b.stats().dedup_hits, 1);
        assert_eq!(b.get(id).unwrap().as_deref(), Some(&b"payload"[..]));
        assert!(b.contains(id).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_restores_objects_and_refs() {
        let dir = scratch("reopen");
        let (id_a, id_b) = {
            let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
            let a = b.put(b"first").unwrap();
            let c = b.put(b"second").unwrap();
            b.set_ref("main", a).unwrap();
            b.set_ref("main", c).unwrap();
            b.set_ref("dev", a).unwrap();
            (a, c)
        };
        let b = SegmentBackend::open_with(&dir, quick()).unwrap();
        assert_eq!(b.get(id_a).unwrap().as_deref(), Some(&b"first"[..]));
        assert_eq!(b.get(id_b).unwrap().as_deref(), Some(&b"second"[..]));
        // Last writer wins across the replay.
        assert_eq!(b.get_ref("main").unwrap(), Some(id_b));
        assert_eq!(b.get_ref("dev").unwrap(), Some(id_a));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_on_reopen() {
        let dir = scratch("torn");
        let (id_good, file) = {
            let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
            let good = b.put(b"published before the crash").unwrap();
            b.put(b"the record a crash will tear").unwrap();
            (good, b.active_path())
        };
        // Tear the last record: chop 3 bytes off its checksum.
        let len = std::fs::metadata(&file).unwrap().len();
        let f = OpenOptions::new().write(true).open(&file).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let b = SegmentBackend::open_with(&dir, quick()).unwrap();
        assert!(b.contains(id_good).unwrap());
        assert_eq!(b.object_count(), 1);
        // The file was truncated back to the last good record.
        assert_eq!(std::fs::metadata(&file).unwrap().len(), b.disk_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_after_torn_reopen_are_clean() {
        let dir = scratch("torn-append");
        let (id_good, file) = {
            let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
            let good = b.put(b"keep me").unwrap();
            b.put(b"tear me").unwrap();
            (good, b.active_path())
        };
        let len = std::fs::metadata(&file).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&file)
            .unwrap()
            .set_len(len - 1)
            .unwrap();

        let id_new = {
            let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
            b.put(b"written after recovery").unwrap()
        };
        let b = SegmentBackend::open_with(&dir, quick()).unwrap();
        assert!(b.contains(id_good).unwrap());
        assert!(b.contains(id_new).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let dir = scratch("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("segment-0000.seg"), b"NOTPEEPL extra").unwrap();
        std::fs::write(dir.join(MANIFEST), "PEEPULM1\nsegment-0000.seg\n").unwrap();
        assert!(matches!(
            SegmentBackend::open_with(&dir, quick()),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_single_file_store_migrates_in_place() {
        let dir = scratch("legacy");
        // Build a store, then rewind it to the legacy layout by hand.
        let (id, seg0) = {
            let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
            let id = b.put(b"bytes from the single-file era").unwrap();
            b.set_ref("main", id).unwrap();
            (id, b.active_path())
        };
        std::fs::rename(&seg0, dir.join(LEGACY_SEGMENT)).unwrap();
        std::fs::remove_file(dir.join(MANIFEST)).unwrap();

        let b = SegmentBackend::open_with(&dir, quick()).unwrap();
        assert_eq!(
            b.get(id).unwrap().as_deref(),
            Some(&b"bytes from the single-file era"[..])
        );
        assert_eq!(b.get_ref("main").unwrap(), Some(id));
        assert!(!dir.join(LEGACY_SEGMENT).exists(), "migrated, not copied");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_rotate_at_the_size_cap_and_reopen_across_segments() {
        let dir = scratch("rotate");
        let mut ids = Vec::new();
        {
            let mut b = SegmentBackend::open_with(&dir, tiny()).unwrap();
            for i in 0..40u32 {
                ids.push(b.put(format!("object number {i:06}").as_bytes()).unwrap());
            }
            b.set_ref("main", ids[39]).unwrap();
            assert!(
                b.file_names().len() > 2,
                "40 records over a 256-byte cap must rotate: {:?}",
                b.file_names()
            );
        }
        let b = SegmentBackend::open_with(&dir, tiny()).unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                b.get(*id).unwrap().as_deref(),
                Some(format!("object number {i:06}").as_bytes()),
                "object {i} must survive rotation + reopen"
            );
        }
        assert_eq!(b.get_ref("main").unwrap(), Some(ids[39]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_sealed_segments_into_one_pack() {
        let dir = scratch("compact");
        let mut ids = Vec::new();
        {
            let mut b = SegmentBackend::open_with(&dir, tiny()).unwrap();
            for i in 0..30u32 {
                ids.push(b.put(format!("compactable {i:06}").as_bytes()).unwrap());
            }
            b.set_ref("main", ids[29]).unwrap();
            let before = b.file_names().len();
            assert!(before > 2);
            b.compact().unwrap();
            let names = b.file_names();
            assert_eq!(names.len(), 2, "pack + active: {names:?}");
            assert!(names[0].ends_with(".pack"));
            assert!(names[1].ends_with(".seg"));
            // Everything still readable through the pack.
            for (i, id) in ids.iter().enumerate() {
                assert_eq!(
                    b.get(*id).unwrap().as_deref(),
                    Some(format!("compactable {i:06}").as_bytes())
                );
            }
            // Writes continue to work after compaction.
            let extra = b.put(b"post-compaction append").unwrap();
            assert!(b.contains(extra).unwrap());
        }
        // And the pack index replays on reopen without a payload scan.
        let b = SegmentBackend::open_with(&dir, tiny()).unwrap();
        for id in &ids {
            assert!(b.contains(*id).unwrap());
        }
        assert_eq!(b.get_ref("main").unwrap(), Some(ids[29]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn collect_garbage_reclaims_dead_objects_and_bytes() {
        let dir = scratch("gc");
        let mut b = SegmentBackend::open_with(&dir, tiny()).unwrap();
        let live: Vec<ObjectId> = (0..10u32)
            .map(|i| b.put(format!("live object {i:04}").as_bytes()).unwrap())
            .collect();
        let dead: Vec<ObjectId> = (0..20u32)
            .map(|i| {
                b.put(format!("dead weight {i:04} {}", "x".repeat(64)).as_bytes())
                    .unwrap()
            })
            .collect();
        b.set_ref("main", live[9]).unwrap();
        let before = b.disk_bytes();

        let live_set: HashSet<ObjectId> = live.iter().copied().collect();
        let stats = b.collect_garbage(&live_set).unwrap();
        assert_eq!(stats.live_objects, 10);
        assert_eq!(stats.dead_objects, 20);
        assert!(stats.dead_bytes > stats.live_bytes);

        assert!(b.disk_bytes() < before, "GC must shrink the disk footprint");
        assert_eq!(b.object_count(), 10);
        for id in &live {
            assert!(b.contains(*id).unwrap());
        }
        for id in &dead {
            assert!(!b.contains(*id).unwrap());
            assert_eq!(b.get(*id).unwrap(), None);
        }
        assert_eq!(b.get_ref("main").unwrap(), Some(live[9]));

        // Survives reopen.
        drop(b);
        let b = SegmentBackend::open_with(&dir, tiny()).unwrap();
        assert_eq!(b.object_count(), 10);
        for id in &live {
            assert!(b.contains(*id).unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unlisted_leftover_files_are_swept_at_open() {
        let dir = scratch("leftovers");
        let id = {
            let mut b = SegmentBackend::open_with(&dir, quick()).unwrap();
            b.put(b"real data").unwrap()
        };
        // Fake crash debris: an orphan segment, an orphan pack, a tmp.
        std::fs::write(dir.join("segment-0099.seg"), MAGIC).unwrap();
        std::fs::write(dir.join("pack-0099.pack"), b"junk").unwrap();
        std::fs::write(dir.join(PACK_TMP), b"junk").unwrap();

        let b = SegmentBackend::open_with(&dir, quick()).unwrap();
        assert!(b.contains(id).unwrap());
        assert!(!dir.join("segment-0099.seg").exists());
        assert!(!dir.join("pack-0099.pack").exists());
        assert!(!dir.join(PACK_TMP).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explicit_policy_counts_no_data_fsyncs_until_flush() {
        let dir = scratch("explicit");
        let mut b = SegmentBackend::open_with(
            &dir,
            SegmentOptions {
                durable: true,
                flush: FlushPolicy::Explicit,
                ..SegmentOptions::default()
            },
        )
        .unwrap();
        let after_open = b.fsync_count();
        for i in 0..50u32 {
            b.put(format!("no sync yet {i}").as_bytes()).unwrap();
            b.commit_boundary().unwrap();
        }
        assert_eq!(
            b.fsync_count(),
            after_open,
            "explicit policy must not sync at commit boundaries"
        );
        b.flush().unwrap();
        assert_eq!(b.fsync_count(), after_open + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn per_commit_policy_syncs_once_per_boundary_not_per_record() {
        let dir = scratch("percommit");
        let mut b = SegmentBackend::open_with(
            &dir,
            SegmentOptions {
                durable: true,
                ..SegmentOptions::default()
            },
        )
        .unwrap();
        let base = b.fsync_count();
        // Three records, one boundary — the transaction shape.
        b.put(b"state bytes").unwrap();
        b.put(b"commit bytes").unwrap();
        let id = b.put(b"ref target").unwrap();
        b.set_ref("main", id).unwrap();
        b.commit_boundary().unwrap();
        assert_eq!(
            b.fsync_count(),
            base + 1,
            "group commit: 4 records, 1 fsync"
        );
        // An untouched boundary is free.
        b.commit_boundary().unwrap();
        assert_eq!(b.fsync_count(), base + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The commit DAG: history of versions with branching and merging.
//!
//! Every branch-store version is a commit; `DO` transitions append
//! single-parent commits and `MERGE` transitions append two-parent commits,
//! exactly like Git. The graph answers the one question the MRDT model
//! needs from its store: *what is the lowest common ancestor of two
//! versions?* ([`CommitGraph::merge_bases`]). Criss-cross histories can
//! have several maximal common ancestors; the branch store resolves those
//! with recursive virtual merges (see `branch`/`semantics`), the same
//! strategy as Git's `merge-recursive`.

use std::collections::{BTreeSet, BinaryHeap, HashSet};
use std::fmt;

/// Identifier of a commit within one [`CommitGraph`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommitId(u32);

impl CommitId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CommitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct CommitNode<P> {
    parents: Vec<CommitId>,
    /// Longest distance to a root; used to prune ancestor walks and to
    /// order merge-base candidates.
    generation: u64,
    payload: P,
}

/// An append-only commit DAG carrying a payload per commit.
///
/// # Example
///
/// ```
/// use peepul_store::dag::CommitGraph;
///
/// let mut g: CommitGraph<&str> = CommitGraph::new();
/// let root = g.add_root("v0");
/// let a = g.add_commit(vec![root], "a").unwrap();
/// let b = g.add_commit(vec![root], "b").unwrap();
/// let m = g.add_commit(vec![a, b], "merge").unwrap();
/// assert_eq!(g.merge_bases(a, b), vec![root]);
/// assert!(g.is_ancestor(root, m));
/// ```
#[derive(Clone, Debug)]
pub struct CommitGraph<P> {
    nodes: Vec<CommitNode<P>>,
}

impl<P> CommitGraph<P> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        CommitGraph { nodes: Vec::new() }
    }

    /// Number of commits (including any virtual merge-base commits).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no commits.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Appends a parentless root commit.
    pub fn add_root(&mut self, payload: P) -> CommitId {
        let id = CommitId(self.nodes.len() as u32);
        self.nodes.push(CommitNode {
            parents: Vec::new(),
            generation: 0,
            payload,
        });
        id
    }

    /// Appends a commit with the given parents.
    ///
    /// Returns `None` when `parents` is empty or contains an unknown id
    /// (use [`CommitGraph::add_root`] for roots).
    pub fn add_commit(&mut self, parents: Vec<CommitId>, payload: P) -> Option<CommitId> {
        if parents.is_empty() || parents.iter().any(|p| p.index() >= self.nodes.len()) {
            return None;
        }
        let generation = 1 + parents
            .iter()
            .map(|p| self.nodes[p.index()].generation)
            .max()
            .expect("parents non-empty");
        let id = CommitId(self.nodes.len() as u32);
        self.nodes.push(CommitNode {
            parents,
            generation,
            payload,
        });
        Some(id)
    }

    /// The payload of a commit.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn payload(&self, id: CommitId) -> &P {
        &self.nodes[id.index()].payload
    }

    /// The parents of a commit.
    pub fn parents(&self, id: CommitId) -> &[CommitId] {
        &self.nodes[id.index()].parents
    }

    /// The generation number (longest distance to a root).
    pub fn generation(&self, id: CommitId) -> u64 {
        self.nodes[id.index()].generation
    }

    /// All ancestors of `id`, including `id` itself.
    pub fn ancestors(&self, id: CommitId) -> BTreeSet<CommitId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            if seen.insert(c) {
                stack.extend(self.nodes[c.index()].parents.iter().copied());
            }
        }
        seen
    }

    /// Is `a` an ancestor of `b` (reflexively)?
    pub fn is_ancestor(&self, a: CommitId, b: CommitId) -> bool {
        if a == b {
            return true;
        }
        let ga = self.generation(a);
        let mut seen = HashSet::new();
        let mut stack = vec![b];
        while let Some(c) = stack.pop() {
            if c == a {
                return true;
            }
            if !seen.insert(c) {
                continue;
            }
            for &p in &self.nodes[c.index()].parents {
                // Ancestors can only have strictly smaller generations, so
                // anything below `a`'s generation cannot reach it.
                if self.generation(p) >= ga {
                    stack.push(p);
                }
            }
        }
        false
    }

    /// The *merge bases* of two commits: the maximal common ancestors
    /// (candidates for the three-way merge's LCA), in descending generation
    /// order.
    ///
    /// Linear histories and plain fork/merge topologies yield exactly one;
    /// criss-cross merges can yield several, which the store resolves by
    /// recursive virtual merging.
    pub fn merge_bases(&self, c1: CommitId, c2: CommitId) -> Vec<CommitId> {
        self.merge_bases_of(&[c1], &[c2])
    }

    /// The merge bases of two *virtual* commits, each given as its set of
    /// real leaf commits: the maximal elements of
    /// `ancestors(left) ∩ ancestors(right)`.
    ///
    /// A virtual merge commit (the recursive-merge strategy's intermediate
    /// ancestor) is fully described by the real commits it merges — it has
    /// no ancestors of its own beyond theirs, and it cannot itself be a
    /// common ancestor of anything older. This is what lets the branch
    /// store resolve criss-cross LCAs **without materialising virtual
    /// commits in the graph**, which in turn is what makes its read-only
    /// `lca_state` possible.
    pub fn merge_bases_of(&self, left: &[CommitId], right: &[CommitId]) -> Vec<CommitId> {
        let union_ancestors = |leaves: &[CommitId]| -> BTreeSet<CommitId> {
            let mut all = BTreeSet::new();
            for &leaf in leaves {
                all.extend(self.ancestors(leaf));
            }
            all
        };
        let common: BTreeSet<CommitId> = {
            let a1 = union_ancestors(left);
            let a2 = union_ancestors(right);
            a1.intersection(&a2).copied().collect()
        };
        if common.is_empty() {
            return Vec::new();
        }
        // Keep only the maximal elements: walk candidates from the highest
        // generation down; each new base dominates (excludes) its own
        // ancestors.
        let mut heap: BinaryHeap<(u64, CommitId)> =
            common.iter().map(|&c| (self.generation(c), c)).collect();
        let mut dominated: HashSet<CommitId> = HashSet::new();
        let mut bases = Vec::new();
        while let Some((_, c)) = heap.pop() {
            if dominated.contains(&c) {
                continue;
            }
            bases.push(c);
            for anc in self.ancestors(c) {
                if anc != c {
                    dominated.insert(anc);
                }
            }
        }
        bases
    }

    /// Iterates over every commit id in insertion order (ids are dense).
    pub fn ids(&self) -> impl Iterator<Item = CommitId> {
        (0..self.nodes.len() as u32).map(CommitId)
    }

    /// All ancestors of `id` (including itself) in reverse-topological
    /// order (children before parents) — a `git log`-style history walk.
    pub fn history(&self, id: CommitId) -> Vec<CommitId> {
        let mut commits: Vec<CommitId> = self.ancestors(id).into_iter().collect();
        commits.sort_by_key(|c| std::cmp::Reverse((self.generation(*c), *c)));
        commits
    }
}

impl<P> Default for CommitGraph<P> {
    fn default() -> Self {
        CommitGraph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root → x → a; x → b (fork at x).
    fn fork() -> (CommitGraph<&'static str>, CommitId, CommitId, CommitId) {
        let mut g = CommitGraph::new();
        let root = g.add_root("root");
        let x = g.add_commit(vec![root], "x").unwrap();
        let a = g.add_commit(vec![x], "a").unwrap();
        let b = g.add_commit(vec![x], "b").unwrap();
        (g, x, a, b)
    }

    #[test]
    fn generations_count_longest_path() {
        let (g, x, a, _) = fork();
        assert_eq!(g.generation(x), 1);
        assert_eq!(g.generation(a), 2);
    }

    #[test]
    fn add_commit_rejects_bad_parents() {
        let mut g: CommitGraph<()> = CommitGraph::new();
        assert!(g.add_commit(vec![], ()).is_none());
        let r = g.add_root(());
        assert!(g.add_commit(vec![r, CommitId(99)], ()).is_none());
    }

    #[test]
    fn ancestor_queries() {
        let (g, x, a, b) = fork();
        assert!(g.is_ancestor(x, a));
        assert!(g.is_ancestor(x, x));
        assert!(!g.is_ancestor(a, x));
        assert!(!g.is_ancestor(a, b));
    }

    #[test]
    fn single_merge_base_on_plain_fork() {
        let (g, x, a, b) = fork();
        assert_eq!(g.merge_bases(a, b), vec![x]);
    }

    #[test]
    fn merge_base_of_ancestor_pair_is_the_ancestor() {
        let (g, x, a, _) = fork();
        assert_eq!(g.merge_bases(x, a), vec![x]);
        assert_eq!(g.merge_bases(a, a), vec![a]);
    }

    #[test]
    fn criss_cross_has_two_merge_bases() {
        // The classic criss-cross:
        //   root → a1, b1 (fork); ma = merge(a1,b1); mb = merge(b1,a1);
        //   then a2 child of ma, b2 child of mb.
        //   merge_bases(a2, b2) = {ma? no — {a1? } …} = {a1, b1}? Let's see:
        //   ancestors(a2) = {a2, ma, a1, b1, root}
        //   ancestors(b2) = {b2, mb, a1, b1, root}
        //   common = {a1, b1, root}; maximal = {a1, b1}.
        let mut g: CommitGraph<&str> = CommitGraph::new();
        let root = g.add_root("root");
        let a1 = g.add_commit(vec![root], "a1").unwrap();
        let b1 = g.add_commit(vec![root], "b1").unwrap();
        let ma = g.add_commit(vec![a1, b1], "ma").unwrap();
        let mb = g.add_commit(vec![b1, a1], "mb").unwrap();
        let a2 = g.add_commit(vec![ma], "a2").unwrap();
        let b2 = g.add_commit(vec![mb], "b2").unwrap();
        let bases: BTreeSet<CommitId> = g.merge_bases(a2, b2).into_iter().collect();
        assert_eq!(bases, BTreeSet::from([a1, b1]));
    }

    #[test]
    fn merge_bases_of_leaf_sets_match_virtual_commits() {
        // Criss-cross as above; the virtual merge of {a1, b1} against root
        // must see the same bases as a materialised merge commit would.
        let mut g: CommitGraph<&str> = CommitGraph::new();
        let root = g.add_root("root");
        let a1 = g.add_commit(vec![root], "a1").unwrap();
        let b1 = g.add_commit(vec![root], "b1").unwrap();
        let c = g.add_commit(vec![a1], "c").unwrap();
        // Virtual merge of (a1, b1) vs. c: common ancestors are {a1, root};
        // maximal = {a1}. A real merge commit m(a1, b1) would answer the
        // same.
        assert_eq!(g.merge_bases_of(&[a1, b1], &[c]), vec![a1]);
        let m = g.add_commit(vec![a1, b1], "m").unwrap();
        assert_eq!(g.merge_bases(m, c), vec![a1]);
    }

    #[test]
    fn no_common_ancestor_between_disjoint_roots() {
        let mut g: CommitGraph<&str> = CommitGraph::new();
        let r1 = g.add_root("r1");
        let r2 = g.add_root("r2");
        assert!(g.merge_bases(r1, r2).is_empty());
    }

    #[test]
    fn history_is_reverse_topological() {
        let (g, x, a, _) = fork();
        let h = g.history(a);
        assert_eq!(h.first(), Some(&a));
        assert_eq!(h.last().map(|c| g.generation(*c)), Some(0));
        assert!(h.contains(&x));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a random DAG: each new commit picks 1–2 parents among the
    /// existing commits.
    fn random_dag(choices: &[(u8, u8)]) -> (CommitGraph<usize>, Vec<CommitId>) {
        let mut g = CommitGraph::new();
        let mut ids = vec![g.add_root(0)];
        for (i, (p1, p2)) in choices.iter().enumerate() {
            let a = ids[*p1 as usize % ids.len()];
            let b = ids[*p2 as usize % ids.len()];
            let parents = if a == b { vec![a] } else { vec![a, b] };
            ids.push(g.add_commit(parents, i + 1).expect("valid parents"));
        }
        (g, ids)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn merge_bases_are_maximal_common_ancestors(
            choices in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
            x in any::<u8>(),
            y in any::<u8>(),
        ) {
            let (g, ids) = random_dag(&choices);
            let c1 = ids[x as usize % ids.len()];
            let c2 = ids[y as usize % ids.len()];
            let bases = g.merge_bases(c1, c2);
            prop_assert!(!bases.is_empty(), "single root ⇒ common ancestor exists");
            for &b in &bases {
                // Each base is a common ancestor…
                prop_assert!(g.is_ancestor(b, c1));
                prop_assert!(g.is_ancestor(b, c2));
                // …and maximal: no other base dominates it.
                for &b2 in &bases {
                    if b != b2 {
                        prop_assert!(!g.is_ancestor(b, b2), "{b:?} dominated by {b2:?}");
                    }
                }
            }
            // Completeness: every common ancestor is dominated by a base.
            let common: Vec<CommitId> = g
                .ancestors(c1)
                .intersection(&g.ancestors(c2))
                .copied()
                .collect();
            for c in common {
                prop_assert!(
                    bases.iter().any(|&b| g.is_ancestor(c, b)),
                    "common ancestor {c:?} not covered by any base"
                );
            }
        }

        #[test]
        fn generations_bound_ancestry(
            choices in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
        ) {
            let (g, ids) = random_dag(&choices);
            for &c in &ids {
                for &p in g.parents(c) {
                    prop_assert!(g.generation(p) < g.generation(c));
                }
            }
        }

        #[test]
        fn history_is_topologically_sorted(
            choices in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
        ) {
            let (g, ids) = random_dag(&choices);
            let head = *ids.last().expect("non-empty");
            let h = g.history(head);
            // Children appear before parents.
            for (i, &c) in h.iter().enumerate() {
                for &p in g.parents(c) {
                    if let Some(pi) = h.iter().position(|&x| x == p) {
                        prop_assert!(pi > i, "parent {p:?} before child {c:?}");
                    }
                }
            }
        }
    }
}

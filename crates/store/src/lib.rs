//! A Git-like replicated branch store for MRDTs — the workspace's stand-in
//! for Irmin (the OCaml distributed database the paper runs Peepul on).
//!
//! The store realises the system model of the paper's §2.1 and §3:
//!
//! * versioned states in **branches** with explicit three-way **merges**
//!   ([`BranchStore`]), addressed through validated **typed handles**
//!   ([`BranchRef`], [`BranchMut`], [`BranchId`]) with a **commit-free
//!   query path** ([`BranchStore::read`]) and batched **transactions**
//!   ([`Transaction`]),
//! * a commit **DAG** with Git-style merge-base computation, including
//!   recursive virtual LCAs for criss-cross histories ([`dag`]),
//! * a **timestamp service** that is unique and happens-before consistent
//!   (the store property Ψ_ts) via Lamport clocks ([`clock`]),
//! * **content addressing** of states by SHA-256, implemented from scratch
//!   ([`sha256`], [`object`]),
//! * **pluggable persistence backends** behind the [`Backend`] trait —
//!   the interning in-memory store and a crash-safe multi-segment
//!   on-disk engine with rotation, compaction, group commit
//!   ([`FlushPolicy`]) and reference-tracing GC ([`backend`],
//!   [`segment`]) — every state/commit the branch store creates is
//!   published under its content address,
//! * **merge memoization** keyed by `(lca, left, right)` content-address
//!   triples, which recursive virtual merges on criss-cross histories
//!   repeatedly re-derive ([`memo`]),
//! * the paper's formal **labelled transition system** `M_Dτ` (Fig. 3),
//!   maintaining paired concrete/abstract states per branch — the
//!   reference semantics the `peepul-verify` harness drives
//!   ([`StoreLts`]),
//! * the **replication surface** the `peepul-net` sync protocol is built
//!   on: commit-graph walks for want/have negotiation
//!   ([`BranchStore::commits_between`]), hash-verified pack ingest
//!   ([`BranchStore::ingest_pack`] — one hash + one decode per object,
//!   verified bytes stored as received), tracking/fast-forward refs
//!   ([`BranchStore::track`]) and the Lamport receive rule
//!   ([`BranchStore::observe_tick`]).
//!
//! # Example
//!
//! ```
//! use peepul_store::BranchStore;
//! use peepul_types::or_set_space::{OrSetOp, OrSetOutput, OrSetQuery, OrSetSpace};
//!
//! # fn main() -> Result<(), peepul_store::StoreError> {
//! let mut store: BranchStore<OrSetSpace<String>> = BranchStore::new("main");
//! store.branch_mut("main")?.apply(&OrSetOp::Add("milk".into()))?;
//! let phone = store.branch_mut("main")?.fork("phone")?;
//! // The phone removes milk while the laptop re-adds it…
//! store.branch_mut(&phone)?.apply(&OrSetOp::Remove("milk".into()))?;
//! store.branch_mut("main")?.apply(&OrSetOp::Add("milk".into()))?;
//! store.branch_mut("main")?.merge_from(&phone)?;
//! // …and the add wins. The lookup is a commit-free read on `&store`.
//! let v = store.read("main", &OrSetQuery::Lookup("milk".into()))?;
//! assert_eq!(v, OrSetOutput::Present(true));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod branch;
pub mod clock;
pub mod dag;
pub mod dot;
pub mod error;
pub mod memo;
pub mod metrics;
pub mod object;
pub mod segment;
pub mod semantics;
pub mod sha256;

pub use backend::{
    Backend, BackendStats, MemoryBackend, StorageInfo, SweepStats, DEFAULT_SNAPSHOT_INTERVAL,
};
pub use branch::{
    commit_record, parse_commit_record, parse_state_record, state_record_delta, state_record_full,
    BranchId, BranchMut, BranchRef, BranchStore, CommitMeta, IngestReport, PackState, StateRecord,
    TrackOutcome, Transaction,
};
pub use clock::LamportClock;
pub use dag::{CommitGraph, CommitId};
pub use error::StoreError;
pub use memo::{MergeCacheStats, MergeMemo};
pub use metrics::StoreMetrics;
pub use object::{
    canonical_bytes, content_id, content_id_of_bytes, decode_canonical, ObjectId, ObjectStore,
};
pub use segment::{CompactionFault, FlushPolicy, SegmentBackend, SegmentOptions};
pub use semantics::{DoOutcome, MergeOutcome, Snapshot, StoreLts};

//! Errors of the branch store.

use std::error::Error;
use std::fmt;

/// Errors returned by [`BranchStore`](crate::BranchStore) and
/// [`StoreLts`](crate::StoreLts) operations.
#[derive(Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named branch does not exist.
    UnknownBranch(String),
    /// A branch with this name already exists.
    BranchExists(String),
    /// The two versions share no history (distinct roots); a three-way
    /// merge is impossible. Cannot occur for branches forked from one root.
    NoCommonAncestor,
}

impl fmt::Debug for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownBranch(b) => write!(f, "unknown branch {b:?}"),
            StoreError::BranchExists(b) => write!(f, "branch {b:?} already exists"),
            StoreError::NoCommonAncestor => write!(f, "versions share no common ancestor"),
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_branch() {
        assert!(StoreError::UnknownBranch("dev".into())
            .to_string()
            .contains("dev"));
        assert!(StoreError::BranchExists("main".into())
            .to_string()
            .contains("main"));
    }
}

//! Errors of the branch store.

use std::error::Error;
use std::fmt;

/// Errors returned by [`BranchStore`](crate::BranchStore) and
/// [`StoreLts`](crate::StoreLts) operations.
#[derive(Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named branch does not exist.
    UnknownBranch(String),
    /// A branch with this name already exists.
    BranchExists(String),
    /// The name is not a legal branch name (empty, or contains control
    /// characters). Rejected when a handle or branch is created, so typos
    /// and corrupted names surface at the edge of the API instead of deep
    /// inside a merge.
    InvalidBranchName(String),
    /// The two versions share no history (distinct roots); a three-way
    /// merge is impossible. Cannot occur for branches forked from one root.
    NoCommonAncestor,
    /// An I/O failure in a persistent backend (message carries the
    /// `std::io::Error` rendering; the error itself is not `Clone`).
    Io(String),
    /// A persistent backend record failed its integrity check — its bytes
    /// do not hash to the id it is indexed under, or its on-disk framing
    /// is malformed past the recoverable tail.
    Corrupt(String),
    /// An object received over a transport failed content verification:
    /// re-deriving its content address locally did not reproduce the id the
    /// sender advertised. Raised by the replication ingest path for every
    /// state and commit record it accepts — a corrupted, truncated or
    /// tampered transfer can never enter a store.
    CorruptObject {
        /// The content address the sender advertised.
        expected: crate::object::ObjectId,
        /// The content address the received bytes actually hash to.
        actual: crate::object::ObjectId,
    },
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl fmt::Debug for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownBranch(b) => write!(f, "unknown branch {b:?}"),
            StoreError::BranchExists(b) => write!(f, "branch {b:?} already exists"),
            StoreError::InvalidBranchName(b) => write!(f, "invalid branch name {b:?}"),
            StoreError::NoCommonAncestor => write!(f, "versions share no common ancestor"),
            StoreError::Io(msg) => write!(f, "backend i/o error: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "backend corruption: {msg}"),
            StoreError::CorruptObject { expected, actual } => write!(
                f,
                "received object corrupt: advertised as {expected} but hashes to {actual}"
            ),
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_object_names_both_ids() {
        let expected = crate::object::content_id(&1u8);
        let actual = crate::object::content_id(&2u8);
        let msg = StoreError::CorruptObject { expected, actual }.to_string();
        assert!(msg.contains(&expected.to_string()));
        assert!(msg.contains(&actual.to_string()));
    }

    #[test]
    fn messages_name_the_branch() {
        assert!(StoreError::UnknownBranch("dev".into())
            .to_string()
            .contains("dev"));
        assert!(StoreError::BranchExists("main".into())
            .to_string()
            .contains("main"));
    }
}

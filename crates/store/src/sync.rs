//! Multi-threaded replica simulation.
//!
//! The paper runs its MRDTs on Irmin with concurrently updating replicas.
//! [`Cluster`] reproduces that execution style in-process: each simulated
//! replica runs on its own OS thread, applies locally generated operations
//! to its own branch, and periodically gossip-merges a peer's branch. The
//! store itself is shared behind a [`parking_lot::Mutex`], so operations on
//! different replicas interleave nondeterministically — a stress test for
//! merge correctness that the deterministic harness cannot provide.

use crate::backend::{Backend, MemoryBackend};
use crate::branch::BranchStore;
use crate::error::StoreError;
use parking_lot::Mutex;
use peepul_core::Mrdt;
use std::fmt;
use std::sync::Arc;

/// A multi-threaded cluster of replicas over one [`BranchStore`].
///
/// Generic over the persistence [`Backend`] like the store itself:
/// [`Cluster::new`] runs in memory, [`Cluster::with_backend`] runs the
/// identical replica simulation over any backend (the convergence suite
/// drives it over the on-disk segment backend too).
///
/// # Example
///
/// ```
/// use peepul_store::sync::Cluster;
/// use peepul_types::counter::{Counter, CounterOp};
///
/// # fn main() -> Result<(), peepul_store::StoreError> {
/// let cluster: Cluster<Counter> = Cluster::new(4)?;
/// // Each of the 4 replicas increments 100 times, gossiping every 10 ops.
/// cluster.run(100, 10, |_replica, _round| CounterOp::Increment)?;
/// let final_states = cluster.converge()?;
/// assert!(final_states.iter().all(|s| s.count() == 400));
/// # Ok(())
/// # }
/// ```
pub struct Cluster<M: Mrdt, B: Backend = MemoryBackend> {
    store: Arc<Mutex<BranchStore<M, B>>>,
    replicas: usize,
}

fn replica_branch(i: usize) -> String {
    format!("replica-{i}")
}

impl<M: Mrdt + Send + Sync + 'static> Cluster<M> {
    /// Creates a cluster of `replicas` branches forked from a common root,
    /// stored in memory.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from branch creation (cannot occur for
    /// distinct generated names).
    pub fn new(replicas: usize) -> Result<Self, StoreError> {
        Self::with_backend(replicas, MemoryBackend::new())
    }
}

impl<M: Mrdt + Send + Sync + 'static, B: Backend + Send + 'static> Cluster<M, B> {
    /// Creates a cluster of `replicas` branches forked from a common root
    /// over an explicit backend.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from publishing or branch creation.
    pub fn with_backend(replicas: usize, backend: B) -> Result<Self, StoreError> {
        assert!(replicas >= 1, "a cluster needs at least one replica");
        let mut store = BranchStore::with_backend(replica_branch(0), backend)?;
        for i in 1..replicas {
            store
                .branch_mut(&replica_branch(0))?
                .fork(replica_branch(i))?;
        }
        Ok(Cluster {
            store: Arc::new(Mutex::new(store)),
            replicas,
        })
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Answers a pure query against one replica's current head — the
    /// commit-free read path, under the shared lock only long enough to
    /// reach the head state.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownBranch`] if `replica >= self.replicas()`.
    pub fn read(&self, replica: usize, q: &M::Query) -> Result<M::Output, StoreError> {
        self.store.lock().read(&replica_branch(replica), q)
    }

    /// Runs `ops_per_replica` operations on every replica concurrently.
    ///
    /// `op_of(replica, round)` generates the operation each replica applies
    /// at each round; every `gossip_every` rounds a replica merges from its
    /// ring neighbour. Returns when all replica threads have finished.
    ///
    /// # Errors
    ///
    /// Propagates the first [`StoreError`] any replica thread hit.
    pub fn run<F>(
        &self,
        ops_per_replica: usize,
        gossip_every: usize,
        op_of: F,
    ) -> Result<(), StoreError>
    where
        F: Fn(usize, usize) -> M::Op + Send + Sync,
    {
        let op_of = &op_of;
        let results: Vec<Result<(), StoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.replicas)
                .map(|i| {
                    let store = Arc::clone(&self.store);
                    scope.spawn(move || {
                        let me = replica_branch(i);
                        let peer = replica_branch((i + 1) % self.replicas);
                        for round in 0..ops_per_replica {
                            let op = op_of(i, round);
                            store.lock().branch_mut(&me)?.apply(&op)?;
                            if gossip_every > 0 && round % gossip_every == gossip_every - 1 {
                                store.lock().branch_mut(&me)?.merge_from(&peer)?;
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replica thread panicked"))
                .collect()
        });
        results.into_iter().collect()
    }

    /// Performs full pairwise merging until every replica holds the same
    /// history, then returns the per-replica final states.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from merging.
    pub fn converge(&self) -> Result<Vec<Arc<M>>, StoreError> {
        let mut store = self.store.lock();
        // Two rounds of ring merges in both directions reach a fixpoint:
        // first everyone's updates flow into replica 0, then back out.
        for i in 1..self.replicas {
            let (a, b) = (replica_branch(0), replica_branch(i));
            store.branch_mut(&a)?.merge_from(&b)?;
        }
        for i in 1..self.replicas {
            let (a, b) = (replica_branch(i), replica_branch(0));
            store.branch_mut(&a)?.merge_from(&b)?;
        }
        (0..self.replicas)
            .map(|i| store.state(&replica_branch(i)))
            .collect()
    }

    /// Runs `f` with the locked store (inspection/debugging).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut BranchStore<M, B>) -> R) -> R {
        f(&mut self.store.lock())
    }
}

impl<M: Mrdt, B: Backend> fmt::Debug for Cluster<M, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cluster({} replicas)", self.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_types::counter::{Counter, CounterOp};
    use peepul_types::or_set_space::{OrSetOp, OrSetSpace};
    use peepul_types::pn_counter::{PnCounter, PnCounterOp};

    #[test]
    fn counters_converge_to_total_increments() {
        let cluster: Cluster<Counter> = Cluster::new(4).unwrap();
        cluster.run(50, 7, |_, _| CounterOp::Increment).unwrap();
        let states = cluster.converge().unwrap();
        assert_eq!(states.len(), 4);
        for s in &states {
            assert_eq!(s.count(), 200);
        }
    }

    #[test]
    fn pn_counters_converge_with_mixed_ops() {
        let cluster: Cluster<PnCounter> = Cluster::new(3).unwrap();
        cluster
            .run(60, 5, |replica, round| {
                if (replica + round) % 3 == 0 {
                    PnCounterOp::Decrement
                } else {
                    PnCounterOp::Increment
                }
            })
            .unwrap();
        let states = cluster.converge().unwrap();
        let expected = states[0].value();
        for s in &states {
            assert_eq!(s.value(), expected);
        }
        // 60 ops × 3 replicas, one third decrements.
        assert_eq!(expected, (120 - 60) as i64);
    }

    #[test]
    fn or_sets_converge_observably() {
        let cluster: Cluster<OrSetSpace<u32>> = Cluster::new(3).unwrap();
        cluster
            .run(40, 8, |replica, round| {
                let x = ((replica * 31 + round * 7) % 16) as u32;
                if round % 4 == 3 {
                    OrSetOp::Remove(x)
                } else {
                    OrSetOp::Add(x)
                }
            })
            .unwrap();
        let states = cluster.converge().unwrap();
        for s in &states[1..] {
            assert!(
                states[0].observably_equal(s),
                "replicas disagree: {:?} vs {:?}",
                states[0],
                s
            );
        }
    }

    #[test]
    fn single_replica_cluster_is_fine() {
        let cluster: Cluster<Counter> = Cluster::new(1).unwrap();
        cluster.run(10, 3, |_, _| CounterOp::Increment).unwrap();
        let states = cluster.converge().unwrap();
        assert_eq!(states[0].count(), 10);
    }
}

//! Lamport clocks: the store's timestamp service.
//!
//! The paper's store promises (§2.1) that operation timestamps are unique
//! across branches and consistent with happens-before (Ψ_ts), and suggests
//! Lamport clocks paired with unique branch ids. [`LamportClock`] is that
//! construction: each replica strictly increases its own tick, and
//! [`LamportClock::observe`] advances the clock past any timestamp received
//! through a merge, so every later local event is stamped above everything
//! it causally follows. The replica id inside [`Timestamp`] breaks ties
//! between concurrent events on different replicas.

use peepul_core::{ReplicaId, Timestamp};

/// A per-replica Lamport clock.
///
/// # Example
///
/// ```
/// use peepul_core::ReplicaId;
/// use peepul_store::clock::LamportClock;
///
/// let mut a = LamportClock::new(ReplicaId::new(1));
/// let mut b = LamportClock::new(ReplicaId::new(2));
/// let t1 = a.tick();
/// let t2 = a.tick();
/// assert!(t1 < t2);
///
/// // b receives a's state in a merge and observes its latest timestamp:
/// b.observe(t2);
/// let t3 = b.tick();
/// assert!(t2 < t3); // causally after everything b has seen
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LamportClock {
    replica: ReplicaId,
    counter: u64,
}

impl LamportClock {
    /// Creates a clock for `replica`, starting below any minted timestamp.
    pub fn new(replica: ReplicaId) -> Self {
        LamportClock {
            replica,
            counter: 0,
        }
    }

    /// The replica this clock stamps for.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Mints the next timestamp: strictly greater than every timestamp this
    /// replica has minted or observed.
    pub fn tick(&mut self) -> Timestamp {
        self.counter += 1;
        Timestamp::new(self.counter, self.replica)
    }

    /// Advances the clock past a timestamp received from elsewhere (merge
    /// or message delivery).
    pub fn observe(&mut self, t: Timestamp) {
        self.counter = self.counter.max(t.tick());
    }

    /// The last tick issued or observed.
    pub fn now(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_strictly_increase() {
        let mut c = LamportClock::new(ReplicaId::new(0));
        let a = c.tick();
        let b = c.tick();
        assert!(a < b);
        assert_eq!(b.tick(), 2);
    }

    #[test]
    fn observe_only_moves_forward() {
        let mut c = LamportClock::new(ReplicaId::new(0));
        c.observe(Timestamp::new(10, ReplicaId::new(1)));
        assert_eq!(c.now(), 10);
        c.observe(Timestamp::new(3, ReplicaId::new(2)));
        assert_eq!(c.now(), 10);
        assert_eq!(c.tick().tick(), 11);
    }

    #[test]
    fn concurrent_replicas_never_collide() {
        let mut a = LamportClock::new(ReplicaId::new(1));
        let mut b = LamportClock::new(ReplicaId::new(2));
        let ta: Vec<Timestamp> = (0..10).map(|_| a.tick()).collect();
        let tb: Vec<Timestamp> = (0..10).map(|_| b.tick()).collect();
        for x in &ta {
            assert!(!tb.contains(x));
        }
    }

    #[test]
    fn merge_then_tick_dominates_both_histories() {
        let mut a = LamportClock::new(ReplicaId::new(1));
        let mut b = LamportClock::new(ReplicaId::new(2));
        for _ in 0..5 {
            a.tick();
        }
        let last_a = a.tick();
        let t_b = b.tick();
        b.observe(last_a);
        let after = b.tick();
        assert!(after > last_a);
        assert!(after > t_b);
    }
}

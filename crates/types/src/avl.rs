//! A persistent (immutable, structurally shared) AVL map.
//!
//! This is the balanced search tree underlying the OR-set-spacetime variant
//! (paper §7.1: *"a space- and time-optimized one which uses a binary
//! search tree for storing the elements … the merge function produces a
//! height balanced binary tree"*). Updates return new maps that share
//! unchanged subtrees with the original through [`Arc`]s, exactly like the
//! purely functional trees the paper extracts from F* to OCaml.
//!
//! Complexity: `get`/`insert`/`remove` are `O(log n)`;
//! [`AvlMap::from_sorted`] builds a perfectly balanced tree in `O(n)`;
//! in-order iteration is `O(n)`.
//!
//! Equality ([`PartialEq`]) is **structural** — two maps with the same
//! contents but different tree shapes compare unequal. That is deliberate:
//! it is what makes *convergence modulo observable behaviour* (paper,
//! Definition 3.5) observable in this workspace — replicas may converge to
//! differently shaped trees with identical contents.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

#[derive(Clone, PartialEq, Eq)]
struct Node<K, V> {
    key: K,
    val: V,
    left: Link<K, V>,
    right: Link<K, V>,
    height: u32,
    size: usize,
}

type Link<K, V> = Option<Arc<Node<K, V>>>;

fn height<K, V>(link: &Link<K, V>) -> u32 {
    link.as_ref().map_or(0, |n| n.height)
}

fn size<K, V>(link: &Link<K, V>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

fn mk<K, V>(key: K, val: V, left: Link<K, V>, right: Link<K, V>) -> Arc<Node<K, V>> {
    Arc::new(Node {
        height: 1 + height(&left).max(height(&right)),
        size: 1 + size(&left) + size(&right),
        key,
        val,
        left,
        right,
    })
}

/// Rebuilds a node from parts, restoring the AVL balance invariant with at
/// most two rotations. The parts are at most one insertion/removal away
/// from balanced, which is all standard AVL rebalancing requires.
fn rebalance<K: Clone, V: Clone>(
    key: K,
    val: V,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Arc<Node<K, V>> {
    let hl = height(&left) as i64;
    let hr = height(&right) as i64;
    if hl - hr > 1 {
        let l = left.expect("left height > 1 implies a left child");
        if height(&l.left) >= height(&l.right) {
            // Single right rotation.
            mk(
                l.key.clone(),
                l.val.clone(),
                l.left.clone(),
                Some(mk(key, val, l.right.clone(), right)),
            )
        } else {
            // Left-right double rotation.
            let lr = l.right.as_ref().expect("LR case has a left-right child");
            mk(
                lr.key.clone(),
                lr.val.clone(),
                Some(mk(
                    l.key.clone(),
                    l.val.clone(),
                    l.left.clone(),
                    lr.left.clone(),
                )),
                Some(mk(key, val, lr.right.clone(), right)),
            )
        }
    } else if hr - hl > 1 {
        let r = right.expect("right height > 1 implies a right child");
        if height(&r.right) >= height(&r.left) {
            // Single left rotation.
            mk(
                r.key.clone(),
                r.val.clone(),
                Some(mk(key, val, left, r.left.clone())),
                r.right.clone(),
            )
        } else {
            // Right-left double rotation.
            let rl = r.left.as_ref().expect("RL case has a right-left child");
            mk(
                rl.key.clone(),
                rl.val.clone(),
                Some(mk(key, val, left, rl.left.clone())),
                Some(mk(
                    r.key.clone(),
                    r.val.clone(),
                    rl.right.clone(),
                    r.right.clone(),
                )),
            )
        }
    } else {
        mk(key, val, left, right)
    }
}

/// A persistent AVL-balanced ordered map.
///
/// # Example
///
/// ```
/// use peepul_types::avl::AvlMap;
///
/// let m: AvlMap<u32, &str> = AvlMap::new();
/// let m1 = m.insert(2, "two").insert(1, "one").insert(3, "three");
/// assert_eq!(m1.get(&2), Some(&"two"));
/// assert_eq!(m1.len(), 3);
///
/// // Persistence: the original is untouched.
/// let m2 = m1.remove(&2);
/// assert_eq!(m1.len(), 3);
/// assert_eq!(m2.len(), 2);
/// assert!(!m2.contains_key(&2));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct AvlMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> AvlMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        AvlMap { root: None }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Height of the tree (0 for the empty map). Exposed for balance tests
    /// and space accounting.
    pub fn tree_height(&self) -> u32 {
        height(&self.root)
    }
}

impl<K: Ord, V> AvlMap<K, V> {
    /// Looks up a key in `O(log n)`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less => cur = &n.left,
                Ordering::Greater => cur = &n.right,
                Ordering::Equal => return Some(&n.val),
            }
        }
        None
    }

    /// Membership test in `O(log n)`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }
}

impl<K: Ord + Clone, V: Clone> AvlMap<K, V> {
    /// Returns a new map with `key` bound to `val` (replacing any previous
    /// binding). `O(log n)`; the original map is unchanged.
    #[must_use]
    pub fn insert(&self, key: K, val: V) -> Self {
        fn go<K: Ord + Clone, V: Clone>(link: &Link<K, V>, key: K, val: V) -> Arc<Node<K, V>> {
            match link {
                None => mk(key, val, None, None),
                Some(n) => match key.cmp(&n.key) {
                    Ordering::Equal => mk(key, val, n.left.clone(), n.right.clone()),
                    Ordering::Less => rebalance(
                        n.key.clone(),
                        n.val.clone(),
                        Some(go(&n.left, key, val)),
                        n.right.clone(),
                    ),
                    Ordering::Greater => rebalance(
                        n.key.clone(),
                        n.val.clone(),
                        n.left.clone(),
                        Some(go(&n.right, key, val)),
                    ),
                },
            }
        }
        AvlMap {
            root: Some(go(&self.root, key, val)),
        }
    }

    /// Returns a new map without `key` (unchanged if absent). `O(log n)`.
    #[must_use]
    pub fn remove(&self, key: &K) -> Self {
        /// Removes the minimum entry of a non-empty subtree, returning it
        /// and the remainder.
        fn take_min<K: Ord + Clone, V: Clone>(n: &Arc<Node<K, V>>) -> ((K, V), Link<K, V>) {
            match &n.left {
                None => ((n.key.clone(), n.val.clone()), n.right.clone()),
                Some(l) => {
                    let (kv, rest) = take_min(l);
                    (
                        kv,
                        Some(rebalance(
                            n.key.clone(),
                            n.val.clone(),
                            rest,
                            n.right.clone(),
                        )),
                    )
                }
            }
        }

        fn go<K: Ord + Clone, V: Clone>(link: &Link<K, V>, key: &K) -> (Link<K, V>, bool) {
            match link {
                None => (None, false),
                Some(n) => match key.cmp(&n.key) {
                    Ordering::Less => {
                        let (nl, changed) = go(&n.left, key);
                        if changed {
                            (
                                Some(rebalance(n.key.clone(), n.val.clone(), nl, n.right.clone())),
                                true,
                            )
                        } else {
                            (link.clone(), false)
                        }
                    }
                    Ordering::Greater => {
                        let (nr, changed) = go(&n.right, key);
                        if changed {
                            (
                                Some(rebalance(n.key.clone(), n.val.clone(), n.left.clone(), nr)),
                                true,
                            )
                        } else {
                            (link.clone(), false)
                        }
                    }
                    Ordering::Equal => match (&n.left, &n.right) {
                        (None, r) => (r.clone(), true),
                        (l, None) => (l.clone(), true),
                        (Some(_), Some(r)) => {
                            let ((k, v), rest) = take_min(r);
                            (Some(rebalance(k, v, n.left.clone(), rest)), true)
                        }
                    },
                },
            }
        }

        let (root, _) = go(&self.root, key);
        AvlMap { root }
    }

    /// Builds a perfectly balanced map from entries **sorted by key with no
    /// duplicates**, in `O(n)`. Used by the OR-set-spacetime merge, which
    /// produces its result as a sorted sequence.
    ///
    /// # Panics
    ///
    /// Debug builds assert the input is strictly sorted.
    pub fn from_sorted(entries: Vec<(K, V)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted requires strictly ascending keys"
        );
        fn build<K: Clone, V: Clone>(s: &[(K, V)]) -> Link<K, V> {
            if s.is_empty() {
                return None;
            }
            let mid = s.len() / 2;
            let (k, v) = s[mid].clone();
            Some(mk(k, v, build(&s[..mid]), build(&s[mid + 1..])))
        }
        AvlMap {
            root: build(&entries),
        }
    }

    /// The entries in ascending key order.
    pub fn to_sorted_vec(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        fn walk<K: Clone, V: Clone>(link: &Link<K, V>, out: &mut Vec<(K, V)>) {
            if let Some(n) = link {
                walk(&n.left, out);
                out.push((n.key.clone(), n.val.clone()));
                walk(&n.right, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }
}

impl<K: Ord, V> AvlMap<K, V> {
    /// Iterates over the entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut it = Iter { stack: Vec::new() };
        it.push_left(&self.root);
        it
    }

    /// Verifies the BST ordering, AVL balance, and cached height/size
    /// fields. Intended for tests; `O(n)`.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn go<K: Ord, V>(
            link: &Link<K, V>,
            lo: Option<&K>,
            hi: Option<&K>,
        ) -> Result<(u32, usize), String> {
            let Some(n) = link else {
                return Ok((0, 0));
            };
            if let Some(lo) = lo {
                if n.key <= *lo {
                    return Err("BST order violated (left bound)".into());
                }
            }
            if let Some(hi) = hi {
                if n.key >= *hi {
                    return Err("BST order violated (right bound)".into());
                }
            }
            let (hl, sl) = go(&n.left, lo, Some(&n.key))?;
            let (hr, sr) = go(&n.right, Some(&n.key), hi)?;
            if (hl as i64 - hr as i64).abs() > 1 {
                return Err("AVL balance violated".into());
            }
            let h = 1 + hl.max(hr);
            let s = 1 + sl + sr;
            if h != n.height {
                return Err(format!("cached height {} but actual {h}", n.height));
            }
            if s != n.size {
                return Err(format!("cached size {} but actual {s}", n.size));
            }
            Ok((h, s))
        }
        go(&self.root, None, None).map(|_| ())
    }
}

impl<K, V> Default for AvlMap<K, V> {
    fn default() -> Self {
        AvlMap::new()
    }
}

/// The canonical codec encodes the in-order **contents**, not the tree
/// shape: a length prefix followed by the `(key, value)` entries in
/// ascending key order. Maps with equal contents but different shapes
/// therefore encode to identical bytes — and to one content address —
/// which is exactly the representation freedom *convergence modulo
/// observable behaviour* (paper, Definition 3.5) grants the tree.
/// Decoding rebuilds the canonical perfectly balanced shape via
/// [`AvlMap::from_sorted`]; non-canonical input (unsorted or duplicate
/// keys) is rejected, so one byte string denotes one logical map.
impl<K, V> peepul_core::Wire for AvlMap<K, V>
where
    K: peepul_core::Wire + Ord + Clone,
    V: peepul_core::Wire + Clone,
{
    fn encode(&self, out: &mut Vec<u8>) {
        peepul_core::wire::encode_len(self.len(), out);
        for (k, v) in self.iter() {
            k.encode(out);
            v.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = peepul_core::wire::decode_len(input)?;
        let mut entries: Vec<(K, V)> = Vec::with_capacity(len);
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            if let Some((last, _)) = entries.last() {
                // Strictly ascending keys are the canonical form; anything
                // else is malformed input, not data to normalise.
                if *last >= k {
                    return None;
                }
            }
            entries.push((k, v));
        }
        Some(AvlMap::from_sorted(entries))
    }

    fn max_tick(&self) -> u64 {
        self.iter()
            .map(|(k, v)| k.max_tick().max(v.max_tick()))
            .max()
            .unwrap_or(0)
    }
}

impl<K: fmt::Debug + Ord, V: fmt::Debug> fmt::Debug for AvlMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for AvlMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        iter.into_iter()
            .fold(AvlMap::new(), |m, (k, v)| m.insert(k, v))
    }
}

/// In-order borrowing iterator over an [`AvlMap`], produced by
/// [`AvlMap::iter`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<K, V> fmt::Debug for Iter<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "avl::Iter({} frames)", self.stack.len())
    }
}

impl<'a, K, V> Iter<'a, K, V> {
    fn push_left(&mut self, mut link: &'a Link<K, V>) {
        while let Some(n) = link {
            self.stack.push(n);
            link = &n.left;
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left(&n.right);
        Some((&n.key, &n.val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_map_basics() {
        let m: AvlMap<u32, u32> = AvlMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.tree_height(), 0);
        assert_eq!(m.get(&1), None);
        m.check_invariants().unwrap();
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut m: AvlMap<u32, u32> = AvlMap::new();
        for i in 0..100 {
            m = m.insert(i, i * 10);
        }
        for i in 0..100 {
            assert_eq!(m.get(&i), Some(&(i * 10)));
        }
        assert_eq!(m.len(), 100);
        m.check_invariants().unwrap();
    }

    #[test]
    fn ascending_insertion_stays_balanced() {
        let mut m: AvlMap<u32, ()> = AvlMap::new();
        for i in 0..1024 {
            m = m.insert(i, ());
        }
        // A balanced tree over 1024 keys has height ~10–12; a degenerate
        // list would have height 1024.
        assert!(m.tree_height() <= 15, "height {}", m.tree_height());
        m.check_invariants().unwrap();
    }

    #[test]
    fn insert_replaces_existing_value() {
        let m: AvlMap<u32, &str> = AvlMap::new().insert(1, "a").insert(1, "b");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&1), Some(&"b"));
    }

    #[test]
    fn remove_absent_key_is_noop() {
        let m: AvlMap<u32, ()> = AvlMap::new().insert(1, ());
        let m2 = m.remove(&9);
        assert_eq!(m, m2);
    }

    #[test]
    fn remove_interior_node_preserves_order() {
        let m: AvlMap<u32, ()> = (0..50).map(|i| (i, ())).collect();
        let m = m.remove(&25);
        assert!(!m.contains_key(&25));
        assert_eq!(m.len(), 49);
        let keys: Vec<u32> = m.iter().map(|(k, _)| *k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        m.check_invariants().unwrap();
    }

    #[test]
    fn persistence_shares_and_preserves() {
        let m1: AvlMap<u32, u32> = (0..10).map(|i| (i, i)).collect();
        let m2 = m1.insert(100, 100);
        let m3 = m1.remove(&5);
        assert_eq!(m1.len(), 10);
        assert_eq!(m2.len(), 11);
        assert_eq!(m3.len(), 9);
        assert!(m1.contains_key(&5));
    }

    #[test]
    fn from_sorted_builds_balanced_tree() {
        let entries: Vec<(u32, u32)> = (0..1000).map(|i| (i, i)).collect();
        let m = AvlMap::from_sorted(entries.clone());
        assert_eq!(m.to_sorted_vec(), entries);
        assert!(m.tree_height() <= 10, "height {}", m.tree_height());
        m.check_invariants().unwrap();
    }

    #[test]
    fn same_contents_different_shapes_are_structurally_unequal() {
        // Insertion order vs. balanced build can produce different shapes.
        let by_insert: AvlMap<u32, ()> = (0..6).map(|i| (i, ())).collect();
        let by_build = AvlMap::from_sorted((0..6).map(|i| (i, ())).collect());
        assert_eq!(by_insert.to_sorted_vec(), by_build.to_sorted_vec());
        // Shapes differ (this is what convergence-modulo-observable-
        // behaviour is about). Height 6-entry insert-order AVL: the exact
        // shape depends on rotations; compare structurally.
        if by_insert != by_build {
            // Expected in general; nothing more to assert.
        }
    }

    #[test]
    fn wire_codec_is_canonical_over_contents() {
        use peepul_core::Wire;
        // Same contents via different construction orders ⇒ same bytes.
        let by_insert: AvlMap<u32, u64> = (0..64).rev().map(|i| (i, u64::from(i) * 3)).collect();
        let by_build = AvlMap::from_sorted((0u32..64).map(|i| (i, u64::from(i) * 3)).collect());
        assert_eq!(by_insert.to_wire(), by_build.to_wire());
        // Decode rebuilds a valid balanced tree with identical contents and
        // byte-identical re-encoding.
        let decoded = AvlMap::<u32, u64>::from_wire(&by_insert.to_wire()).unwrap();
        decoded.check_invariants().unwrap();
        assert_eq!(decoded.to_sorted_vec(), by_insert.to_sorted_vec());
        assert_eq!(decoded.to_wire(), by_insert.to_wire());
        // Non-canonical input (descending keys) is rejected, not repaired.
        let mut bytes = Vec::new();
        peepul_core::wire::encode_len(2, &mut bytes);
        2u32.encode(&mut bytes);
        0u64.encode(&mut bytes);
        1u32.encode(&mut bytes);
        0u64.encode(&mut bytes);
        assert!(AvlMap::<u32, u64>::from_wire(&bytes).is_none());
        // Duplicate keys likewise.
        let mut dup = Vec::new();
        peepul_core::wire::encode_len(2, &mut dup);
        1u32.encode(&mut dup);
        0u64.encode(&mut dup);
        1u32.encode(&mut dup);
        0u64.encode(&mut dup);
        assert!(AvlMap::<u32, u64>::from_wire(&dup).is_none());
    }

    #[test]
    fn iterator_is_in_order_and_complete() {
        let m: AvlMap<i32, i32> = [(3, 30), (1, 10), (2, 20)].into_iter().collect();
        let items: Vec<(i32, i32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(items, vec![(1, 10), (2, 20), (3, 30)]);
    }

    proptest! {
        #[test]
        fn prop_invariants_hold_under_random_ops(ops in proptest::collection::vec((any::<u8>(), 0u32..64), 0..200)) {
            let mut m: AvlMap<u32, u32> = AvlMap::new();
            let mut reference = std::collections::BTreeMap::new();
            for (kind, key) in ops {
                if kind % 3 == 0 {
                    m = m.remove(&key);
                    reference.remove(&key);
                } else {
                    m = m.insert(key, key + 1);
                    reference.insert(key, key + 1);
                }
                prop_assert!(m.check_invariants().is_ok());
            }
            let got: Vec<(u32, u32)> = m.to_sorted_vec();
            let want: Vec<(u32, u32)> = reference.into_iter().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_height_is_logarithmic(n in 1usize..512) {
            let m: AvlMap<usize, ()> = (0..n).map(|i| (i, ())).collect();
            // AVL height bound: 1.44 * log2(n + 2).
            let bound = (1.45 * ((n + 2) as f64).log2()).ceil() as u32 + 1;
            prop_assert!(m.tree_height() <= bound, "n={} height={} bound={}", n, m.tree_height(), bound);
        }
    }
}

//! Space- **and** time-optimized observed-remove set MRDT (paper §7.1).
//!
//! Same conflict-resolution semantics as [`crate::or_set_space`] — one
//! timestamp-refreshed entry per element, add-wins — but stored in a
//! persistent height-balanced search tree ([`crate::avl::AvlMap`]) instead
//! of a list:
//!
//! * `add`, `remove`, `lookup` drop from `O(n)` to `O(log n)` — the source
//!   of the ≈5× speedup over OR-set-space in the paper's Fig. 14;
//! * `merge` walks the three trees' sorted entries in `O(n)` and rebuilds a
//!   perfectly balanced result.
//!
//! Because replicas may reach the same *contents* through different
//! insert/rebuild sequences, their tree **shapes** can differ while every
//! operation returns identical results. This is the paper's motivating
//! example for *convergence modulo observable behaviour* (Definition 3.5):
//! [`Mrdt::observably_equal`] compares contents, not shapes.

use crate::avl::AvlMap;
use crate::or_set::{live_adds, orset_query, OrSetSpec};
use crate::or_set_space::merge_spaced;
use peepul_core::{AbstractOf, Certified, Mrdt, SimulationRelation, Specification, Timestamp};
use std::collections::BTreeMap;
use std::fmt;

pub use crate::or_set::{OrSetOp, OrSetOutput, OrSetQuery};

/// Tree-backed OR-set state.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::or_set_spacetime::{OrSetSpacetime, OrSetOp};
///
/// let ts = |t, r| Timestamp::new(t, ReplicaId::new(r));
/// let (lca, _) = OrSetSpacetime::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
/// let (a, _) = lca.apply(&OrSetOp::Add(1), ts(2, 1));    // refresh
/// let (b, _) = lca.apply(&OrSetOp::Remove(1), ts(3, 2)); // concurrent remove
/// let m = OrSetSpacetime::merge(&lca, &a, &b);
/// assert!(m.contains(&1)); // add wins
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct OrSetSpacetime<T> {
    tree: AvlMap<T, Timestamp>,
}

/// The canonical codec delegates to the backing tree's contents-only
/// encoding: observably equal sets — even with differently shaped trees —
/// produce identical bytes and one content address, and decoding yields
/// the canonical balanced shape. This is the codec face of *convergence
/// modulo observable behaviour* (Definition 3.5): the store deduplicates
/// converged-but-differently-shaped states into one stored object.
impl<T: peepul_core::Wire + Ord + Clone> peepul_core::Wire for OrSetSpacetime<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tree.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(OrSetSpacetime {
            tree: peepul_core::Wire::decode(input)?,
        })
    }

    fn max_tick(&self) -> u64 {
        self.tree.max_tick()
    }
}

impl<T: Ord> OrSetSpacetime<T> {
    /// Number of stored entries (equals the number of distinct elements).
    pub fn pair_count(&self) -> usize {
        self.tree.len()
    }

    /// Number of distinct elements.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Membership test in `O(log n)` — this is where the variant earns its
    /// "time" suffix.
    pub fn contains(&self, x: &T) -> bool {
        self.tree.contains_key(x)
    }

    /// The timestamp currently recorded for `x`, if present.
    pub fn time_of(&self, x: &T) -> Option<Timestamp> {
        self.tree.get(x).copied()
    }

    /// Height of the backing tree (diagnostics / space accounting).
    pub fn tree_height(&self) -> u32 {
        self.tree.tree_height()
    }

    /// The distinct elements in ascending order.
    pub fn elements(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.tree.iter().map(|(k, _)| k.clone()).collect()
    }

    fn as_map(&self) -> BTreeMap<T, Timestamp>
    where
        T: Clone,
    {
        self.tree.iter().map(|(k, t)| (k.clone(), *t)).collect()
    }
}

impl<T: fmt::Debug + Ord> fmt::Debug for OrSetSpacetime<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OrSetSpacetime{:?}", self.tree)
    }
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Mrdt for OrSetSpacetime<T> {
    type Op = OrSetOp<T>;
    type Value = ();
    type Query = OrSetQuery<T>;
    type Output = OrSetOutput<T>;

    fn initial() -> Self {
        OrSetSpacetime {
            tree: AvlMap::new(),
        }
    }

    fn apply(&self, op: &OrSetOp<T>, t: Timestamp) -> (Self, ()) {
        match op {
            OrSetOp::Add(x) => (
                // Insert-or-refresh: one O(log n) path copy either way.
                OrSetSpacetime {
                    tree: self.tree.insert(x.clone(), t),
                },
                (),
            ),
            OrSetOp::Remove(x) => (
                OrSetSpacetime {
                    tree: self.tree.remove(x),
                },
                (),
            ),
        }
    }

    fn query(&self, q: &OrSetQuery<T>) -> OrSetOutput<T> {
        match q {
            OrSetQuery::Lookup(x) => OrSetOutput::Present(self.contains(x)),
            OrSetQuery::Read => OrSetOutput::Elements(self.elements()),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        // Same five-case semantics as OR-set-space (Fig. 2), computed on
        // the sorted entry sequences, then rebuilt as a perfectly balanced
        // tree: O(n) total.
        let merged = merge_spaced(&lca.as_map(), &a.as_map(), &b.as_map());
        OrSetSpacetime {
            tree: AvlMap::from_sorted(merged.into_iter().collect()),
        }
    }

    fn observably_equal(&self, other: &Self) -> bool {
        // Contents only: replicas may converge to different tree shapes
        // (Definition 3.5).
        self.as_map() == other.as_map()
    }
}

/// Simulation relation for the tree-backed OR-set — the same relation as
/// the space-efficient list variant (each entry is the greatest live add of
/// its element), stated over the tree's contents.
#[derive(Debug)]
pub struct OrSetSpacetimeSim;

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug>
    SimulationRelation<OrSetSpacetime<T>> for OrSetSpacetimeSim
{
    fn holds(abs: &AbstractOf<OrSetSpacetime<T>>, conc: &OrSetSpacetime<T>) -> bool {
        // The backing tree must also be a valid AVL tree: representation
        // invariants are part of the refinement.
        if conc.tree.check_invariants().is_err() {
            return false;
        }
        let mut greatest: BTreeMap<T, Timestamp> = BTreeMap::new();
        for (x, t) in live_adds(abs) {
            let slot = greatest.entry(x).or_insert(t);
            if t > *slot {
                *slot = t;
            }
        }
        conc.as_map() == greatest
    }

    fn explain_failure(
        abs: &AbstractOf<OrSetSpacetime<T>>,
        conc: &OrSetSpacetime<T>,
    ) -> Option<String> {
        if let Err(e) = conc.tree.check_invariants() {
            return Some(format!("backing tree invariant broken: {e}"));
        }
        if <Self as SimulationRelation<OrSetSpacetime<T>>>::holds(abs, conc) {
            None
        } else {
            Some(format!(
                "tree contents {:?} are not the greatest live adds per element",
                conc.as_map()
            ))
        }
    }
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Certified for OrSetSpacetime<T> {
    type Spec = OrSetSpec;
    type Sim = OrSetSpacetimeSim;
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Specification<OrSetSpacetime<T>>
    for OrSetSpec
{
    fn spec(_op: &OrSetOp<T>, _state: &AbstractOf<OrSetSpacetime<T>>) {}

    fn query(q: &OrSetQuery<T>, state: &AbstractOf<OrSetSpacetime<T>>) -> OrSetOutput<T> {
        orset_query(q, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    #[test]
    fn add_remove_lookup_roundtrip() {
        let s: OrSetSpacetime<u32> = OrSetSpacetime::initial();
        let (s, _) = s.apply(&OrSetOp::Add(5), ts(1, 0));
        assert!(s.contains(&5));
        let (s, _) = s.apply(&OrSetOp::Remove(5), ts(2, 0));
        assert!(!s.contains(&5));
    }

    #[test]
    fn duplicate_add_refreshes_timestamp() {
        let s: OrSetSpacetime<u32> = OrSetSpacetime::initial();
        let (s, _) = s.apply(&OrSetOp::Add(1), ts(1, 0));
        let (s, _) = s.apply(&OrSetOp::Add(1), ts(2, 0));
        assert_eq!(s.pair_count(), 1);
        assert_eq!(s.time_of(&1), Some(ts(2, 0)));
    }

    #[test]
    fn semantics_agree_with_list_variant() {
        use crate::or_set_space::OrSetSpace;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        // Drive both variants through the same random divergence + merge
        // and compare observable contents.
        let mut rng = StdRng::seed_from_u64(42);
        let mut tick = 0u64;
        let mut next = |r: u32| {
            tick += 1;
            ts(tick, r)
        };
        let mut lca_list = OrSetSpace::<u32>::initial();
        let mut lca_tree = OrSetSpacetime::<u32>::initial();
        for _ in 0..50 {
            let x = rng.gen_range(0..20);
            let t = next(0);
            lca_list = lca_list.apply(&OrSetOp::Add(x), t).0;
            lca_tree = lca_tree.apply(&OrSetOp::Add(x), t).0;
        }
        let (mut a_list, mut a_tree) = (lca_list.clone(), lca_tree.clone());
        let (mut b_list, mut b_tree) = (lca_list.clone(), lca_tree.clone());
        for _ in 0..100 {
            let x = rng.gen_range(0..20);
            let add = rng.gen_bool(0.5);
            let op = if add {
                OrSetOp::Add(x)
            } else {
                OrSetOp::Remove(x)
            };
            if rng.gen_bool(0.5) {
                let t = next(1);
                a_list = a_list.apply(&op, t).0;
                a_tree = a_tree.apply(&op, t).0;
            } else {
                let t = next(2);
                b_list = b_list.apply(&op, t).0;
                b_tree = b_tree.apply(&op, t).0;
            }
        }
        let m_list = OrSetSpace::merge(&lca_list, &a_list, &b_list);
        let m_tree = OrSetSpacetime::merge(&lca_tree, &a_tree, &b_tree);
        assert_eq!(m_list.elements(), m_tree.elements());
        for x in m_tree.elements() {
            assert_eq!(m_list.time_of(&x), m_tree.time_of(&x));
        }
    }

    #[test]
    fn merge_produces_balanced_tree() {
        let mut lca = OrSetSpacetime::<u32>::initial();
        let mut tick = 0;
        for i in 0..256 {
            tick += 1;
            lca = lca.apply(&OrSetOp::Add(i), ts(tick, 0)).0;
        }
        let mut a = lca.clone();
        for i in 256..512 {
            tick += 1;
            a = a.apply(&OrSetOp::Add(i), ts(tick, 1)).0;
        }
        let m = OrSetSpacetime::merge(&lca, &a, &lca);
        assert_eq!(m.len(), 512);
        assert!(m.tree_height() <= 10, "height {}", m.tree_height());
        m.tree.check_invariants().unwrap();
    }

    #[test]
    fn converges_modulo_observable_behaviour_not_structurally() {
        // Build the same contents by insertion vs. by merge-rebuild; the
        // contents agree even if the shapes do not.
        let mut by_insert = OrSetSpacetime::<u32>::initial();
        for i in 0..64 {
            by_insert = by_insert.apply(&OrSetOp::Add(i), ts(i as u64 + 1, 0)).0;
        }
        let by_merge = OrSetSpacetime::merge(
            &OrSetSpacetime::initial(),
            &by_insert,
            &OrSetSpacetime::initial(),
        );
        assert!(by_insert.observably_equal(&by_merge));
        // Both are valid AVL trees regardless of shape.
        by_insert.tree.check_invariants().unwrap();
        by_merge.tree.check_invariants().unwrap();
    }

    #[test]
    fn wire_roundtrip_is_observational_and_canonical() {
        use peepul_core::Wire;
        let mut s = OrSetSpacetime::<u32>::initial();
        for i in 0..32u64 {
            s = s.apply(&OrSetOp::Add((i % 7) as u32), ts(i + 1, 0)).0;
        }
        let bytes = s.to_wire();
        let decoded = OrSetSpacetime::<u32>::from_wire(&bytes).unwrap();
        assert!(decoded.observably_equal(&s));
        assert_eq!(decoded.to_wire(), bytes, "canonical re-encode");
        decoded.tree.check_invariants().unwrap();
        // The receive-rule hook reports the largest embedded tick.
        assert_eq!(s.max_tick(), 32);
    }

    #[test]
    fn simulation_rejects_unbalanced_or_stale_tree() {
        let i = AbstractOf::<OrSetSpacetime<u32>>::new().perform(OrSetOp::Add(1), (), ts(1, 0));
        let (good, _) = OrSetSpacetime::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
        assert!(OrSetSpacetimeSim::holds(&i, &good));
        assert!(!OrSetSpacetimeSim::holds(&i, &OrSetSpacetime::initial()));
    }
}

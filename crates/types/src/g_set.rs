//! Grow-only set MRDT (paper, Table 3).
//!
//! Elements can only be added; the three-way merge is plain union (the
//! paper's `(l ∩ a ∩ b) ∪ (a − l) ∪ (b − l)` collapses to `a ∪ b` because a
//! grow-only branch always contains its ancestor).

use peepul_core::{
    diff_item_lists, AbstractOf, Certified, Delta, Mrdt, SimulationRelation, Specification,
    Timestamp, Wire,
};
use std::collections::BTreeSet;
use std::fmt;

/// Operations of the grow-only set over elements `T`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GSetOp<T> {
    /// Insert an element.
    Add(T),
}

/// Queries of the grow-only set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GSetQuery<T> {
    /// Membership test. Answered by [`GSetOutput::Present`].
    Lookup(T),
    /// Observe the whole set. Answered by [`GSetOutput::Elements`].
    Read,
}

/// Query answers of the grow-only set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GSetOutput<T> {
    /// Result of a membership test.
    Present(bool),
    /// The observed contents, in element order.
    Elements(Vec<T>),
}

/// Grow-only set state.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::g_set::{GSet, GSetOp};
///
/// let ts = |t| Timestamp::new(t, ReplicaId::new(0));
/// let lca: GSet<u32> = GSet::initial();
/// let (a, _) = lca.apply(&GSetOp::Add(1), ts(1));
/// let (b, _) = lca.apply(&GSetOp::Add(2), ts(2));
/// let m = GSet::merge(&lca, &a, &b);
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct GSet<T> {
    elems: BTreeSet<T>,
}

impl<T: Ord> GSet<T> {
    /// Number of distinct elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, x: &T) -> bool {
        self.elems.contains(x)
    }

    /// Iterates over the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.elems.iter()
    }
}

impl<T: fmt::Debug> fmt::Debug for GSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(&self.elems).finish()
    }
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Mrdt for GSet<T> {
    type Op = GSetOp<T>;
    type Value = ();
    type Query = GSetQuery<T>;
    type Output = GSetOutput<T>;

    fn initial() -> Self {
        GSet {
            elems: BTreeSet::new(),
        }
    }

    fn apply(&self, op: &GSetOp<T>, _t: Timestamp) -> (Self, ()) {
        match op {
            GSetOp::Add(x) => {
                let mut next = self.clone();
                next.elems.insert(x.clone());
                (next, ())
            }
        }
    }

    fn query(&self, q: &GSetQuery<T>) -> GSetOutput<T> {
        match q {
            GSetQuery::Lookup(x) => GSetOutput::Present(self.contains(x)),
            GSetQuery::Read => GSetOutput::Elements(self.elems.iter().cloned().collect()),
        }
    }

    fn merge(_lca: &Self, a: &Self, b: &Self) -> Self {
        GSet {
            elems: a.elems.union(&b.elems).cloned().collect(),
        }
    }

    fn diff(&self, parent: &Self) -> Delta {
        // Structural diff over the set's encoded elements: an element
        // inserted anywhere in sort order copies every survivor instead of
        // re-inserting the tail the way a byte splice would.
        let items = |set: &BTreeSet<T>| set.iter().map(Wire::to_wire).collect::<Vec<_>>();
        diff_item_lists(&items(&parent.elems), &items(&self.elems))
    }
}

/// Specification `F_gset`: reads see exactly the elements with a visible
/// `add` event.
#[derive(Debug)]
pub struct GSetSpec;

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Specification<GSet<T>>
    for GSetSpec
{
    fn spec(_op: &GSetOp<T>, _state: &AbstractOf<GSet<T>>) {}

    fn query(q: &GSetQuery<T>, state: &AbstractOf<GSet<T>>) -> GSetOutput<T> {
        let added = || {
            state
                .events()
                .map(|e| match e.op() {
                    GSetOp::Add(x) => x.clone(),
                })
                .collect::<BTreeSet<_>>()
        };
        match q {
            GSetQuery::Lookup(x) => GSetOutput::Present(added().contains(x)),
            GSetQuery::Read => GSetOutput::Elements(added().into_iter().collect()),
        }
    }
}

/// Simulation relation: the concrete set is exactly the set of added
/// elements in the abstract execution.
#[derive(Debug)]
pub struct GSetSim;

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> SimulationRelation<GSet<T>>
    for GSetSim
{
    fn holds(abs: &AbstractOf<GSet<T>>, conc: &GSet<T>) -> bool {
        let added: BTreeSet<T> = abs
            .events()
            .map(|e| match e.op() {
                GSetOp::Add(x) => x.clone(),
            })
            .collect();
        conc.elems == added
    }
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Certified for GSet<T> {
    type Spec = GSetSpec;
    type Sim = GSetSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(0))
    }

    #[test]
    fn add_is_idempotent_in_effect() {
        let s: GSet<u32> = GSet::initial();
        let (s, _) = s.apply(&GSetOp::Add(1), ts(1));
        let (s, _) = s.apply(&GSetOp::Add(1), ts(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lookup_and_read_agree() {
        let s: GSet<u32> = GSet::initial();
        let (s, _) = s.apply(&GSetOp::Add(7), ts(1));
        assert_eq!(s.query(&GSetQuery::Lookup(7)), GSetOutput::Present(true));
        assert_eq!(s.query(&GSetQuery::Lookup(8)), GSetOutput::Present(false));
        assert_eq!(s.query(&GSetQuery::Read), GSetOutput::Elements(vec![7]));
    }

    #[test]
    fn merge_is_union() {
        let lca: GSet<u32> = GSet::initial();
        let (a, _) = lca.apply(&GSetOp::Add(1), ts(1));
        let (a, _) = a.apply(&GSetOp::Add(2), ts(2));
        let (b, _) = lca.apply(&GSetOp::Add(3), ts(3));
        let m = GSet::merge(&lca, &a, &b);
        assert_eq!(m.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let lca: GSet<u32> = GSet::initial();
        let (a, _) = lca.apply(&GSetOp::Add(1), ts(1));
        let (b, _) = lca.apply(&GSetOp::Add(2), ts(2));
        assert_eq!(GSet::merge(&lca, &a, &b), GSet::merge(&lca, &b, &a));
        assert_eq!(GSet::merge(&lca, &a, &a), a);
    }

    #[test]
    fn query_spec_collects_all_adds() {
        let i = AbstractOf::<GSet<u32>>::new()
            .perform(GSetOp::Add(2), (), ts(1))
            .perform(GSetOp::Add(1), (), ts(2));
        assert_eq!(
            GSetSpec::query(&GSetQuery::Read, &i),
            GSetOutput::Elements(vec![1, 2])
        );
        assert_eq!(
            GSetSpec::query(&GSetQuery::Lookup(2), &i),
            GSetOutput::Present(true)
        );
    }

    #[test]
    fn simulation_matches_adds() {
        let i = AbstractOf::<GSet<u32>>::new().perform(GSetOp::Add(5), (), ts(1));
        let (conc, _) = GSet::<u32>::initial().apply(&GSetOp::Add(5), ts(1));
        assert!(GSetSim::holds(&i, &conc));
        assert!(!GSetSim::holds(&i, &GSet::initial()));
    }
}

impl<T: peepul_core::Wire + Ord> peepul_core::Wire for GSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.elems.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(GSet {
            elems: peepul_core::Wire::decode(input)?,
        })
    }

    fn max_tick(&self) -> u64 {
        self.elems.max_tick()
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use peepul_core::Wire;

    #[test]
    fn g_set_wire_roundtrip() {
        let s = GSet {
            elems: [1u64, 2, 3].into_iter().collect(),
        };
        assert_eq!(GSet::from_wire(&s.to_wire()), Some(s));
    }
}

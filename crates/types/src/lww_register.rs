//! Last-writer-wins register MRDT (paper, Table 3).
//!
//! Stores one value; the write with the greatest timestamp wins, both
//! locally and across branches. Because store timestamps respect
//! happens-before (Ψ_ts), "latest timestamp" refines causal order and
//! breaks ties between concurrent writes deterministically.

use peepul_core::{AbstractOf, Certified, Mrdt, SimulationRelation, Specification, Timestamp};
use std::fmt;

/// Operations of the LWW register over values `T`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LwwOp<T> {
    /// Overwrite the register.
    Write(T),
}

/// Queries of the LWW register.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LwwQuery {
    /// Observe the contents (`None` when never written).
    Read,
}

/// Last-writer-wins register state.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::lww_register::{LwwRegister, LwwOp};
///
/// let lca: LwwRegister<String> = LwwRegister::initial();
/// let (a, _) = lca.apply(&LwwOp::Write("alpha".into()), Timestamp::new(1, ReplicaId::new(1)));
/// let (b, _) = lca.apply(&LwwOp::Write("beta".into()), Timestamp::new(2, ReplicaId::new(2)));
/// let m = LwwRegister::merge(&lca, &a, &b);
/// assert_eq!(m.get().map(String::as_str), Some("beta")); // later write wins
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LwwRegister<T> {
    value: Option<T>,
    time: Timestamp,
}

impl<T> LwwRegister<T> {
    /// The current contents, or `None` when never written.
    pub fn get(&self) -> Option<&T> {
        self.value.as_ref()
    }

    /// The timestamp of the winning write ([`Timestamp::MIN`] when never
    /// written).
    pub fn time(&self) -> Timestamp {
        self.time
    }
}

impl<T: fmt::Debug> fmt::Debug for LwwRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LwwRegister({:?} @ {})", self.value, self.time)
    }
}

impl<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug> Mrdt for LwwRegister<T> {
    type Op = LwwOp<T>;
    type Value = ();
    type Query = LwwQuery;
    type Output = Option<T>;

    fn initial() -> Self {
        LwwRegister {
            value: None,
            time: Timestamp::MIN,
        }
    }

    fn apply(&self, op: &LwwOp<T>, t: Timestamp) -> (Self, ()) {
        match op {
            LwwOp::Write(v) => (
                LwwRegister {
                    value: Some(v.clone()),
                    time: t,
                },
                (),
            ),
        }
    }

    fn query(&self, q: &LwwQuery) -> Option<T> {
        match q {
            LwwQuery::Read => self.value.clone(),
        }
    }

    fn merge(_lca: &Self, a: &Self, b: &Self) -> Self {
        // Local writes only move a branch's timestamp forward, so both
        // branches are at or past the ancestor; the later of the two wins.
        if a.time >= b.time {
            a.clone()
        } else {
            b.clone()
        }
    }
}

/// Specification `F_lww`: a read returns the value of the greatest-timestamp
/// write event (or `None` when no write is visible).
#[derive(Debug)]
pub struct LwwSpec;

impl<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug> Specification<LwwRegister<T>>
    for LwwSpec
{
    fn spec(_op: &LwwOp<T>, _state: &AbstractOf<LwwRegister<T>>) {}

    fn query(q: &LwwQuery, state: &AbstractOf<LwwRegister<T>>) -> Option<T> {
        match q {
            LwwQuery::Read => latest_write(state).map(|(_, v)| v),
        }
    }
}

fn latest_write<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug>(
    state: &AbstractOf<LwwRegister<T>>,
) -> Option<(Timestamp, T)> {
    state
        .events()
        .map(|e| match e.op() {
            LwwOp::Write(v) => (e.time(), v.clone()),
        })
        .max_by_key(|(t, _)| *t)
}

/// Simulation relation: the register holds exactly the greatest-timestamp
/// visible write (value *and* timestamp).
#[derive(Debug)]
pub struct LwwSim;

impl<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug> SimulationRelation<LwwRegister<T>>
    for LwwSim
{
    fn holds(abs: &AbstractOf<LwwRegister<T>>, conc: &LwwRegister<T>) -> bool {
        match latest_write(abs) {
            Some((t, v)) => conc.time == t && conc.value.as_ref() == Some(&v),
            None => conc.value.is_none() && conc.time == Timestamp::MIN,
        }
    }

    fn explain_failure(abs: &AbstractOf<LwwRegister<T>>, conc: &LwwRegister<T>) -> Option<String> {
        if <Self as SimulationRelation<LwwRegister<T>>>::holds(abs, conc) {
            None
        } else {
            Some(format!(
                "register {conc:?} does not hold the latest visible write {:?}",
                latest_write(abs)
            ))
        }
    }
}

impl<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug> Certified for LwwRegister<T> {
    type Spec = LwwSpec;
    type Sim = LwwSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    #[test]
    fn starts_unwritten() {
        let r: LwwRegister<u32> = LwwRegister::initial();
        assert_eq!(r.get(), None);
        assert_eq!(r.query(&LwwQuery::Read), None);
    }

    #[test]
    fn local_writes_overwrite() {
        let r: LwwRegister<u32> = LwwRegister::initial();
        let (r, _) = r.apply(&LwwOp::Write(1), ts(1, 0));
        let (r, _) = r.apply(&LwwOp::Write(2), ts(2, 0));
        assert_eq!(r.get(), Some(&2));
    }

    #[test]
    fn merge_prefers_greater_timestamp() {
        let lca: LwwRegister<u32> = LwwRegister::initial();
        let (a, _) = lca.apply(&LwwOp::Write(10), ts(5, 1));
        let (b, _) = lca.apply(&LwwOp::Write(20), ts(3, 2));
        let m = LwwRegister::merge(&lca, &a, &b);
        assert_eq!(m.get(), Some(&10));
        assert_eq!(
            LwwRegister::merge(&lca, &b, &a),
            m,
            "merge must be commutative"
        );
    }

    #[test]
    fn merge_with_unwritten_branch_keeps_written_value() {
        let lca: LwwRegister<u32> = LwwRegister::initial();
        let (a, _) = lca.apply(&LwwOp::Write(10), ts(1, 1));
        assert_eq!(LwwRegister::merge(&lca, &a, &lca).get(), Some(&10));
        assert_eq!(LwwRegister::merge(&lca, &lca, &a).get(), Some(&10));
    }

    #[test]
    fn replica_id_breaks_concurrent_tick_ties_deterministically() {
        let lca: LwwRegister<String> = LwwRegister::initial();
        let (a, _) = lca.apply(&LwwOp::Write("a".into()), ts(1, 1));
        let (b, _) = lca.apply(&LwwOp::Write("b".into()), ts(1, 2));
        let m1 = LwwRegister::merge(&lca, &a, &b);
        let m2 = LwwRegister::merge(&lca, &b, &a);
        assert_eq!(m1, m2);
        assert_eq!(m1.get().map(String::as_str), Some("b"));
    }

    #[test]
    fn query_spec_returns_latest_visible_write() {
        let i = AbstractOf::<LwwRegister<u32>>::new()
            .perform(LwwOp::Write(1), (), ts(1, 0))
            .perform(LwwOp::Write(2), (), ts(2, 0));
        assert_eq!(LwwSpec::query(&LwwQuery::Read, &i), Some(2));
    }

    #[test]
    fn simulation_checks_value_and_time() {
        let i = AbstractOf::<LwwRegister<u32>>::new().perform(LwwOp::Write(1), (), ts(1, 0));
        let (good, _) = LwwRegister::<u32>::initial().apply(&LwwOp::Write(1), ts(1, 0));
        assert!(LwwSim::holds(&i, &good));
        let (stale_time, _) = LwwRegister::<u32>::initial().apply(&LwwOp::Write(1), ts(9, 0));
        assert!(!LwwSim::holds(&i, &stale_time));
    }
}

impl<T: peepul_core::Wire> peepul_core::Wire for LwwRegister<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value.encode(out);
        self.time.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let value = peepul_core::Wire::decode(input)?;
        let time = peepul_core::Wire::decode(input)?;
        Some(LwwRegister { value, time })
    }

    fn max_tick(&self) -> u64 {
        self.time.tick()
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use peepul_core::{ReplicaId, Wire};

    #[test]
    fn lww_register_wire_roundtrip() {
        let r = LwwRegister {
            value: Some(String::from("v")),
            time: Timestamp::new(6, ReplicaId::new(2)),
        };
        assert_eq!(LwwRegister::from_wire(&r.to_wire()), Some(r.clone()));
        assert_eq!(r.max_tick(), 6);
        let empty: LwwRegister<String> = LwwRegister::initial();
        assert_eq!(LwwRegister::from_wire(&empty.to_wire()), Some(empty));
    }
}

//! Decentralised IRC-style chat MRDT (paper §5.1, Figs. 6 & 10).
//!
//! The motivating example for MRDT composition: a chat service with named
//! channels, each holding its messages in reverse chronological order.
//! Rather than implementing it from scratch, the chat is a thin wrapper
//! around an [`MrdtMap`] (α-map, §5.3) of [`MergeableLog`]s (§5.2) —
//! `send(ch, m)` is `set(ch, append(m))` and `read(ch)` is `get(ch, rd)`
//! (Fig. 10). Its specification and simulation relation delegate to the
//! composed ones, so certifying the map and the log certifies the chat.

use crate::log::{LogOp, LogQuery, MergeableLog};
use crate::map::{MapOp, MapQuery, MapSim, MapSpec, MrdtMap};
use peepul_core::{AbstractOf, Certified, Mrdt, SimulationRelation, Specification, Timestamp};
use std::fmt;

/// Update operations of the chat application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChatOp {
    /// Post a message to a channel (created on first use).
    Send(String, String),
}

/// Queries of the chat application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChatQuery {
    /// Read a channel's messages, most recent first (empty for unknown
    /// channels).
    Read(String),
}

/// The chat state: channels mapped to mergeable logs.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::chat::{Chat, ChatOp, ChatQuery};
///
/// let ts = |t, r| Timestamp::new(t, ReplicaId::new(r));
/// let lca = Chat::initial();
/// // Two users on different replicas post concurrently.
/// let (a, _) = lca.apply(&ChatOp::Send("#rust".into(), "hello from a".into()), ts(1, 1));
/// let (b, _) = lca.apply(&ChatOp::Send("#rust".into(), "hello from b".into()), ts(2, 2));
/// let m = Chat::merge(&lca, &a, &b);
/// let msgs = m.query(&ChatQuery::Read("#rust".into()));
/// assert_eq!(msgs.len(), 2);
/// assert_eq!(msgs[0].1, "hello from b"); // newest first
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Chat {
    inner: MrdtMap<MergeableLog<String>>,
}

/// The canonical codec delegates to the composed α-map-of-logs encoding —
/// the chat is storable, addressable and replicable because its parts are.
impl peepul_core::Wire for Chat {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inner.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Chat {
            inner: peepul_core::Wire::decode(input)?,
        })
    }

    fn max_tick(&self) -> u64 {
        self.inner.max_tick()
    }
}

impl Chat {
    /// The channels that exist, in name order.
    pub fn channels(&self) -> Vec<&str> {
        self.inner.keys().collect()
    }

    /// The messages of a channel, most recent first (empty for unknown
    /// channels).
    pub fn messages(&self, channel: &str) -> Vec<(Timestamp, String)> {
        self.inner
            .get(channel)
            .map(|log| log.iter().cloned().collect())
            .unwrap_or_default()
    }
}

impl fmt::Debug for Chat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chat{:?}", self.inner)
    }
}

/// Translates a chat update to the composed map-of-logs update (Fig. 10).
fn lower(op: &ChatOp) -> MapOp<MergeableLog<String>> {
    match op {
        ChatOp::Send(ch, m) => MapOp::Set(ch.clone(), LogOp::Append(m.clone())),
    }
}

/// Translates a chat query to the composed map-of-logs query (Fig. 10):
/// `read(ch)` is `get(ch, rd)`.
fn lower_query(q: &ChatQuery) -> MapQuery<MergeableLog<String>> {
    match q {
        ChatQuery::Read(ch) => MapQuery::Get(ch.clone(), LogQuery::Read),
    }
}

/// Translates a chat abstract execution to the composed one, so the map's
/// specification and simulation relation can run unchanged.
fn lower_abs(abs: &AbstractOf<Chat>) -> AbstractOf<MrdtMap<MergeableLog<String>>> {
    abs.filter_map(|e| Some((lower(e.op()), *e.rval())))
}

impl Mrdt for Chat {
    type Op = ChatOp;
    type Value = ();
    type Query = ChatQuery;
    type Output = Vec<(Timestamp, String)>;

    fn initial() -> Self {
        Chat {
            inner: MrdtMap::initial(),
        }
    }

    fn apply(&self, op: &ChatOp, t: Timestamp) -> (Self, ()) {
        let (inner, rval) = self.inner.apply(&lower(op), t);
        (Chat { inner }, rval)
    }

    fn query(&self, q: &ChatQuery) -> Vec<(Timestamp, String)> {
        self.inner.query(&lower_query(q))
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        Chat {
            inner: MrdtMap::merge(&lca.inner, &a.inner, &b.inner),
        }
    }

    fn observably_equal(&self, other: &Self) -> bool {
        self.inner.observably_equal(&other.inner)
    }
}

/// Chat specification (Fig. 6): delegated to the composed α-map-of-logs
/// specification, `F_chat(rd(ch), I) = F_log-map(get(ch, rd), I)`.
#[derive(Debug)]
pub struct ChatSpec;

impl Specification<Chat> for ChatSpec {
    fn spec(op: &ChatOp, state: &AbstractOf<Chat>) {
        MapSpec::spec(&lower(op), &lower_abs(state))
    }

    fn query(q: &ChatQuery, state: &AbstractOf<Chat>) -> Vec<(Timestamp, String)> {
        MapSpec::query(&lower_query(q), &lower_abs(state))
    }
}

/// Chat simulation relation: the composed α-map-of-logs relation on the
/// lowered execution.
#[derive(Debug)]
pub struct ChatSim;

impl SimulationRelation<Chat> for ChatSim {
    fn holds(abs: &AbstractOf<Chat>, conc: &Chat) -> bool {
        MapSim::holds(&lower_abs(abs), &conc.inner)
    }

    fn explain_failure(abs: &AbstractOf<Chat>, conc: &Chat) -> Option<String> {
        MapSim::explain_failure(&lower_abs(abs), &conc.inner)
    }
}

impl Certified for Chat {
    type Spec = ChatSpec;
    type Sim = ChatSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    fn send(ch: &str, m: &str) -> ChatOp {
        ChatOp::Send(ch.to_owned(), m.to_owned())
    }

    #[test]
    fn messages_arrive_newest_first() {
        let c = Chat::initial();
        let (c, _) = c.apply(&send("#general", "first"), ts(1, 0));
        let (c, _) = c.apply(&send("#general", "second"), ts(2, 0));
        let msgs = c.messages("#general");
        assert_eq!(msgs[0].1, "second");
        assert_eq!(msgs[1].1, "first");
    }

    #[test]
    fn channels_are_independent() {
        let c = Chat::initial();
        let (c, _) = c.apply(&send("#a", "in a"), ts(1, 0));
        let (c, _) = c.apply(&send("#b", "in b"), ts(2, 0));
        assert_eq!(c.channels(), vec!["#a", "#b"]);
        assert_eq!(c.messages("#a").len(), 1);
        assert_eq!(c.messages("#b").len(), 1);
        assert!(c.messages("#nope").is_empty());
    }

    #[test]
    fn merged_channels_interleave_by_timestamp() {
        let lca = Chat::initial();
        let (lca, _) = lca.apply(&send("#r", "base"), ts(1, 0));
        let (a, _) = lca.apply(&send("#r", "a1"), ts(2, 1));
        let (a, _) = a.apply(&send("#r", "a2"), ts(5, 1));
        let (b, _) = lca.apply(&send("#r", "b1"), ts(3, 2));
        let (b, _) = b.apply(&send("#r", "b2"), ts(4, 2));
        let m = Chat::merge(&lca, &a, &b);
        let msgs: Vec<String> = m.messages("#r").into_iter().map(|(_, s)| s).collect();
        assert_eq!(msgs, ["a2", "b2", "b1", "a1", "base"]);
    }

    #[test]
    fn merge_unions_channels() {
        let lca = Chat::initial();
        let (a, _) = lca.apply(&send("#a", "x"), ts(1, 1));
        let (b, _) = lca.apply(&send("#b", "y"), ts(2, 2));
        let m = Chat::merge(&lca, &a, &b);
        assert_eq!(m.channels(), vec!["#a", "#b"]);
    }

    #[test]
    fn read_returns_the_log() {
        let c = Chat::initial();
        let (c, _) = c.apply(&send("#x", "m"), ts(1, 0));
        assert_eq!(
            c.query(&ChatQuery::Read("#x".into())),
            vec![(ts(1, 0), "m".to_owned())]
        );
    }

    #[test]
    fn query_spec_reads_through_the_composition() {
        let i = AbstractOf::<Chat>::new()
            .perform(send("#x", "hello"), (), ts(1, 0))
            .perform(send("#y", "other"), (), ts(2, 0));
        assert_eq!(
            ChatSpec::query(&ChatQuery::Read("#x".into()), &i),
            vec![(ts(1, 0), "hello".to_owned())]
        );
    }

    #[test]
    fn simulation_delegates_to_composition() {
        let i = AbstractOf::<Chat>::new().perform(send("#x", "hello"), (), ts(1, 0));
        let (good, _) = Chat::initial().apply(&send("#x", "hello"), ts(1, 0));
        assert!(ChatSim::holds(&i, &good));
        assert!(!ChatSim::holds(&i, &Chat::initial()));
    }
}

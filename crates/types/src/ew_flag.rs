//! Enable-wins flag MRDTs (paper, Table 3).
//!
//! A replicated boolean where a concurrent `enable` beats a concurrent
//! `disable` — the flag analogue of the OR-set's add-wins policy. Two
//! implementations share one specification:
//!
//! * [`EwFlag`] — the straightforward *token set*: every enable leaves a
//!   timestamped token, disable clears the visible tokens, and merge keeps
//!   tokens that are new on either branch (mirrors the unoptimized OR-set
//!   of §2.1.1 specialised to a single element);
//! * [`EwFlagSpace`] — the space-efficient form holding at most **one**
//!   token (the latest), using the timestamp-refresh trick of the
//!   space-efficient OR-set (§2.1.2) so a re-enable still defeats a
//!   concurrent disable.

use peepul_core::{AbstractOf, Certified, Mrdt, SimulationRelation, Specification, Timestamp};
use std::collections::BTreeSet;

/// Update operations of the enable-wins flag.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EwFlagOp {
    /// Set the flag.
    Enable,
    /// Clear the flag.
    Disable,
}

/// Queries of the enable-wins flag.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EwFlagQuery {
    /// Observe the flag state.
    Read,
}

/// An enable event is *live* in `abs` when no disable event observed it.
/// The flag reads true iff a live enable exists; this is the shared
/// specification of both implementations.
fn live_enables(abs: &AbstractOf<EwFlag>) -> BTreeSet<Timestamp> {
    abs.events()
        .filter(|e| matches!(e.op(), EwFlagOp::Enable))
        .filter(|e| {
            !abs.events()
                .any(|d| matches!(d.op(), EwFlagOp::Disable) && abs.vis(e.id(), d.id()))
        })
        .map(|e| e.id())
        .collect()
}

// ---------------------------------------------------------------------------
// Token-set implementation
// ---------------------------------------------------------------------------

/// Enable-wins flag as a set of enable tokens.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::ew_flag::{EwFlag, EwFlagOp};
///
/// let ts = |t| Timestamp::new(t, ReplicaId::new(0));
/// let lca = {
///     let (f, _) = EwFlag::initial().apply(&EwFlagOp::Enable, ts(1));
///     f
/// };
/// // Concurrently: branch a disables, branch b re-enables.
/// let (a, _) = lca.apply(&EwFlagOp::Disable, ts(2));
/// let (b, _) = lca.apply(&EwFlagOp::Enable, ts(3));
/// let m = EwFlag::merge(&lca, &a, &b);
/// assert!(m.enabled()); // enable wins
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct EwFlag {
    tokens: BTreeSet<Timestamp>,
}

impl EwFlag {
    /// Whether the flag is currently set.
    pub fn enabled(&self) -> bool {
        !self.tokens.is_empty()
    }

    /// Number of live enable tokens held (diagnostic; the unoptimized
    /// representation can hold several).
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }
}

impl Mrdt for EwFlag {
    type Op = EwFlagOp;
    type Value = ();
    type Query = EwFlagQuery;
    type Output = bool;

    fn initial() -> Self {
        EwFlag::default()
    }

    fn apply(&self, op: &EwFlagOp, t: Timestamp) -> (Self, ()) {
        match op {
            EwFlagOp::Enable => {
                let mut next = self.clone();
                next.tokens.insert(t);
                (next, ())
            }
            EwFlagOp::Disable => (EwFlag::default(), ()),
        }
    }

    fn query(&self, q: &EwFlagQuery) -> bool {
        match q {
            EwFlagQuery::Read => self.enabled(),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        // (l ∩ a ∩ b) ∪ (a − l) ∪ (b − l): survivors plus new tokens.
        let mut tokens: BTreeSet<Timestamp> = lca
            .tokens
            .iter()
            .filter(|t| a.tokens.contains(t) && b.tokens.contains(t))
            .copied()
            .collect();
        tokens.extend(a.tokens.difference(&lca.tokens));
        tokens.extend(b.tokens.difference(&lca.tokens));
        EwFlag { tokens }
    }
}

/// Specification `F_flag`: a read returns true iff some enable event is not
/// visible to any disable event.
#[derive(Debug)]
pub struct EwFlagSpec;

impl Specification<EwFlag> for EwFlagSpec {
    fn spec(_op: &EwFlagOp, _state: &AbstractOf<EwFlag>) {}

    fn query(q: &EwFlagQuery, state: &AbstractOf<EwFlag>) -> bool {
        match q {
            EwFlagQuery::Read => !live_enables(state).is_empty(),
        }
    }
}

/// Simulation relation for [`EwFlag`]: the token set is exactly the set of
/// live enable timestamps.
#[derive(Debug)]
pub struct EwFlagSim;

impl SimulationRelation<EwFlag> for EwFlagSim {
    fn holds(abs: &AbstractOf<EwFlag>, conc: &EwFlag) -> bool {
        conc.tokens == live_enables(abs)
    }

    fn explain_failure(abs: &AbstractOf<EwFlag>, conc: &EwFlag) -> Option<String> {
        let live = live_enables(abs);
        (conc.tokens != live).then(|| {
            format!(
                "concrete tokens {:?} differ from live enables {:?}",
                conc.tokens, live
            )
        })
    }
}

impl Certified for EwFlag {
    type Spec = EwFlagSpec;
    type Sim = EwFlagSim;
}

// ---------------------------------------------------------------------------
// Space-efficient implementation
// ---------------------------------------------------------------------------

/// Space-efficient enable-wins flag holding at most one token.
///
/// `enable` *replaces* the current token with a fresh timestamp (like the
/// space-efficient OR-set's duplicate-refresh), which is what protects a
/// re-enable from a concurrent disable that only saw the old token.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct EwFlagSpace {
    token: Option<Timestamp>,
}

impl EwFlagSpace {
    /// Whether the flag is currently set.
    pub fn enabled(&self) -> bool {
        self.token.is_some()
    }

    /// The live token, if any.
    pub fn token(&self) -> Option<Timestamp> {
        self.token
    }
}

impl Mrdt for EwFlagSpace {
    type Op = EwFlagOp;
    type Value = ();
    type Query = EwFlagQuery;
    type Output = bool;

    fn initial() -> Self {
        EwFlagSpace::default()
    }

    fn apply(&self, op: &EwFlagOp, t: Timestamp) -> (Self, ()) {
        match op {
            EwFlagOp::Enable => (EwFlagSpace { token: Some(t) }, ()),
            EwFlagOp::Disable => (EwFlagSpace { token: None }, ()),
        }
    }

    fn query(&self, q: &EwFlagQuery) -> bool {
        match q {
            EwFlagQuery::Read => self.enabled(),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        // A token is *fresh* on a branch when the ancestor does not hold it.
        let fresh = |side: &Self| side.token.filter(|t| lca.token != Some(*t));
        // The ancestor token survives only if neither branch disabled or
        // replaced it.
        let kept = lca
            .token
            .filter(|t| a.token == Some(*t) && b.token == Some(*t));
        let token = match (fresh(a), fresh(b)) {
            // Both branches enabled concurrently: keep the later enable.
            (Some(ta), Some(tb)) => Some(ta.max(tb)),
            (Some(t), None) | (None, Some(t)) => Some(t),
            (None, None) => kept,
        };
        EwFlagSpace { token }
    }
}

/// Specification for [`EwFlagSpace`] — identical to [`EwFlagSpec`], with the
/// operation/value types re-stated for the space-efficient state type.
#[derive(Debug)]
pub struct EwFlagSpaceSpec;

impl Specification<EwFlagSpace> for EwFlagSpaceSpec {
    fn spec(_op: &EwFlagOp, _state: &AbstractOf<EwFlagSpace>) {}

    fn query(q: &EwFlagQuery, state: &AbstractOf<EwFlagSpace>) -> bool {
        match q {
            EwFlagQuery::Read => !live_enables_space(state).is_empty(),
        }
    }
}

fn live_enables_space(abs: &AbstractOf<EwFlagSpace>) -> BTreeSet<Timestamp> {
    abs.events()
        .filter(|e| matches!(e.op(), EwFlagOp::Enable))
        .filter(|e| {
            !abs.events()
                .any(|d| matches!(d.op(), EwFlagOp::Disable) && abs.vis(e.id(), d.id()))
        })
        .map(|e| e.id())
        .collect()
}

/// Simulation relation for [`EwFlagSpace`]: the token, when present, is the
/// **greatest** live enable timestamp; when absent there is no live enable.
#[derive(Debug)]
pub struct EwFlagSpaceSim;

impl SimulationRelation<EwFlagSpace> for EwFlagSpaceSim {
    fn holds(abs: &AbstractOf<EwFlagSpace>, conc: &EwFlagSpace) -> bool {
        let live = live_enables_space(abs);
        conc.token == live.last().copied()
    }

    fn explain_failure(abs: &AbstractOf<EwFlagSpace>, conc: &EwFlagSpace) -> Option<String> {
        let live = live_enables_space(abs);
        (conc.token != live.last().copied()).then(|| {
            format!(
                "concrete token {:?} but greatest live enable is {:?}",
                conc.token,
                live.last()
            )
        })
    }
}

impl Certified for EwFlagSpace {
    type Spec = EwFlagSpaceSpec;
    type Sim = EwFlagSpaceSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(0))
    }

    fn tsr(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    #[test]
    fn starts_disabled() {
        assert!(!EwFlag::initial().enabled());
        assert!(!EwFlagSpace::initial().enabled());
    }

    #[test]
    fn enable_then_disable_locally() {
        let (f, _) = EwFlag::initial().apply(&EwFlagOp::Enable, ts(1));
        assert!(f.enabled());
        let (f, _) = f.apply(&EwFlagOp::Disable, ts(2));
        assert!(!f.enabled());
    }

    #[test]
    fn concurrent_enable_beats_disable_token_form() {
        let (lca, _) = EwFlag::initial().apply(&EwFlagOp::Enable, ts(1));
        let (a, _) = lca.apply(&EwFlagOp::Disable, tsr(2, 1));
        let (b, _) = lca.apply(&EwFlagOp::Enable, tsr(3, 2));
        let m = EwFlag::merge(&lca, &a, &b);
        assert!(m.enabled());
        // The old (disabled) token is gone; only the fresh one survives.
        assert_eq!(m.token_count(), 1);
    }

    #[test]
    fn concurrent_enable_beats_disable_space_form() {
        let (lca, _) = EwFlagSpace::initial().apply(&EwFlagOp::Enable, ts(1));
        let (a, _) = lca.apply(&EwFlagOp::Disable, tsr(2, 1));
        let (b, _) = lca.apply(&EwFlagOp::Enable, tsr(3, 2));
        let m = EwFlagSpace::merge(&lca, &a, &b);
        assert!(m.enabled());
        assert_eq!(m.token(), Some(tsr(3, 2)));
    }

    #[test]
    fn refresh_enable_defeats_concurrent_disable() {
        // lca enabled at t1; a re-enables (refresh), b disables.
        let (lca, _) = EwFlagSpace::initial().apply(&EwFlagOp::Enable, ts(1));
        let (a, _) = lca.apply(&EwFlagOp::Enable, tsr(2, 1));
        let (b, _) = lca.apply(&EwFlagOp::Disable, tsr(3, 2));
        let m = EwFlagSpace::merge(&lca, &a, &b);
        assert!(m.enabled());
        assert_eq!(m.token(), Some(tsr(2, 1)));
    }

    #[test]
    fn disable_on_both_branches_wins_over_stale_token() {
        let (lca, _) = EwFlag::initial().apply(&EwFlagOp::Enable, ts(1));
        let (a, _) = lca.apply(&EwFlagOp::Disable, tsr(2, 1));
        let b = lca.clone(); // untouched
        let m = EwFlag::merge(&lca, &a, &b);
        assert!(!m.enabled());
        let (lca, _) = EwFlagSpace::initial().apply(&EwFlagOp::Enable, ts(1));
        let (a, _) = lca.apply(&EwFlagOp::Disable, tsr(2, 1));
        let m = EwFlagSpace::merge(&lca, &a, &lca);
        assert!(!m.enabled());
    }

    #[test]
    fn concurrent_enables_keep_latest_token_space_form() {
        let lca = EwFlagSpace::initial();
        let (a, _) = lca.apply(&EwFlagOp::Enable, tsr(1, 1));
        let (b, _) = lca.apply(&EwFlagOp::Enable, tsr(2, 2));
        let m = EwFlagSpace::merge(&lca, &a, &b);
        assert_eq!(m.token(), Some(tsr(2, 2)));
        assert_eq!(
            EwFlagSpace::merge(&lca, &b, &a).token(),
            Some(tsr(2, 2)),
            "merge must be commutative"
        );
    }

    #[test]
    fn query_spec_is_live_enable_existence() {
        let i = AbstractOf::<EwFlag>::new()
            .perform(EwFlagOp::Enable, (), ts(1))
            .perform(EwFlagOp::Disable, (), ts(2));
        assert!(!EwFlagSpec::query(&EwFlagQuery::Read, &i));
        let i = i.perform(EwFlagOp::Enable, (), ts(3));
        assert!(EwFlagSpec::query(&EwFlagQuery::Read, &i));
    }

    #[test]
    fn simulation_tracks_live_tokens() {
        let i = AbstractOf::<EwFlag>::new().perform(EwFlagOp::Enable, (), ts(1));
        let mut conc = EwFlag::default();
        conc.tokens.insert(ts(1));
        assert!(EwFlagSim::holds(&i, &conc));
        assert!(!EwFlagSim::holds(&i, &EwFlag::default()));
    }

    #[test]
    fn space_simulation_requires_greatest_live_token() {
        let i = AbstractOf::<EwFlagSpace>::new().perform(EwFlagOp::Enable, (), tsr(1, 1));
        let i = i.perform(EwFlagOp::Enable, (), tsr(2, 2));
        assert!(EwFlagSpaceSim::holds(
            &i,
            &EwFlagSpace {
                token: Some(tsr(2, 2))
            }
        ));
        assert!(!EwFlagSpaceSim::holds(
            &i,
            &EwFlagSpace {
                token: Some(tsr(1, 1))
            }
        ));
    }
}

impl peepul_core::Wire for EwFlag {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tokens.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(EwFlag {
            tokens: peepul_core::Wire::decode(input)?,
        })
    }

    fn max_tick(&self) -> u64 {
        self.tokens.max_tick()
    }
}

impl peepul_core::Wire for EwFlagSpace {
    fn encode(&self, out: &mut Vec<u8>) {
        self.token.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(EwFlagSpace {
            token: peepul_core::Wire::decode(input)?,
        })
    }

    fn max_tick(&self) -> u64 {
        self.token.max_tick()
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use peepul_core::{ReplicaId, Timestamp, Wire};

    #[test]
    fn flags_wire_roundtrip() {
        let ts = |t| Timestamp::new(t, ReplicaId::new(1));
        let f = EwFlag {
            tokens: [ts(1), ts(4)].into_iter().collect(),
        };
        assert_eq!(EwFlag::from_wire(&f.to_wire()), Some(f.clone()));
        assert_eq!(f.max_tick(), 4);
        let g = EwFlagSpace { token: Some(ts(9)) };
        assert_eq!(EwFlagSpace::from_wire(&g.to_wire()), Some(g));
        assert_eq!(g.max_tick(), 9);
    }
}

//! Space-efficient observed-remove set MRDT (paper §2.1.2, Fig. 2).
//!
//! Keeps **at most one** `(element, timestamp)` pair per element. Adding an
//! element that is already present does not insert a duplicate — it
//! *refreshes* the stored timestamp to the fresh one, which records the
//! effect of the duplicate add: a concurrent `remove`, which only observed
//! the old timestamp, can no longer delete the entry after merge.
//!
//! The merge (Fig. 2) combines five cases: pairs untouched everywhere;
//! pairs added on exactly one branch; and pairs added on both branches, of
//! which the one with the larger timestamp survives.

use crate::or_set::{live_adds, orset_query, OrSetSpec};
use peepul_core::{
    diff_item_lists, AbstractOf, Certified, Delta, Mrdt, SimulationRelation, Specification,
    Timestamp, Wire,
};
use std::collections::BTreeMap;
use std::fmt;

/// Space-efficient OR-set state: a duplicate-free association list of
/// `(element, latest-add-timestamp)` pairs.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::or_set_space::{OrSetSpace, OrSetOp};
///
/// let ts = |t, r| Timestamp::new(t, ReplicaId::new(r));
/// let (lca, _) = OrSetSpace::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
/// // Branch a re-adds 1 (timestamp refresh); branch b removes it.
/// let (a, _) = lca.apply(&OrSetOp::Add(1), ts(2, 1));
/// let (b, _) = lca.apply(&OrSetOp::Remove(1), ts(3, 2));
/// let m = OrSetSpace::merge(&lca, &a, &b);
/// assert!(m.contains(&1)); // the refreshed add survives the remove
/// assert_eq!(m.pair_count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct OrSetSpace<T> {
    /// One `(element, timestamp)` pair per element, in insertion order —
    /// the list representation the paper measures in Fig. 14.
    pairs: Vec<(T, Timestamp)>,
}

pub use crate::or_set::{OrSetOp, OrSetOutput, OrSetQuery};

impl<T: Ord> OrSetSpace<T> {
    /// Number of stored pairs (equals the number of distinct elements).
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of distinct elements.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test (`O(n)` list scan).
    pub fn contains(&self, x: &T) -> bool {
        self.pairs.iter().any(|(y, _)| y == x)
    }

    /// The timestamp currently recorded for `x`, if present.
    pub fn time_of(&self, x: &T) -> Option<Timestamp> {
        self.pairs.iter().find(|(y, _)| y == x).map(|(_, t)| *t)
    }

    /// The distinct elements in order.
    pub fn elements(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut v: Vec<T> = self.pairs.iter().map(|(x, _)| x.clone()).collect();
        v.sort();
        v
    }

    fn as_map(&self) -> BTreeMap<T, Timestamp>
    where
        T: Clone,
    {
        self.pairs.iter().cloned().collect()
    }
}

impl<T: fmt::Debug> fmt::Debug for OrSetSpace<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(&self.pairs).finish()
    }
}

/// The Fig. 2 merge expressed on element→timestamp maps; shared with the
/// tree-backed [`crate::or_set_spacetime::OrSetSpacetime`], which differs
/// only in its lookup structure.
pub(crate) fn merge_spaced<T: Ord + Clone>(
    l: &BTreeMap<T, Timestamp>,
    a: &BTreeMap<T, Timestamp>,
    b: &BTreeMap<T, Timestamp>,
) -> BTreeMap<T, Timestamp> {
    let mut out = BTreeMap::new();
    // Pairs present, untouched, in all three versions (Fig. 2, line 8).
    for (x, t) in l {
        if a.get(x) == Some(t) && b.get(x) == Some(t) {
            out.insert(x.clone(), *t);
        }
    }
    // Fresh pairs of one branch (lines 9–10) and the larger of two
    // concurrent fresh adds of the same element (lines 11–14).
    let fresh = |side: &BTreeMap<T, Timestamp>| {
        side.iter()
            .filter(|(x, t)| l.get(*x) != Some(*t))
            .map(|(x, t)| (x.clone(), *t))
            .collect::<BTreeMap<T, Timestamp>>()
    };
    let fa = fresh(a);
    let fb = fresh(b);
    for (x, ta) in &fa {
        match fb.get(x) {
            None => {
                out.insert(x.clone(), *ta);
            }
            Some(tb) => {
                out.insert(x.clone(), *ta.max(tb));
            }
        }
    }
    for (x, tb) in &fb {
        if !fa.contains_key(x) {
            out.insert(x.clone(), *tb);
        }
    }
    out
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Mrdt for OrSetSpace<T> {
    type Op = OrSetOp<T>;
    type Value = ();
    type Query = OrSetQuery<T>;
    type Output = OrSetOutput<T>;

    fn initial() -> Self {
        OrSetSpace { pairs: Vec::new() }
    }

    fn apply(&self, op: &OrSetOp<T>, t: Timestamp) -> (Self, ()) {
        match op {
            OrSetOp::Add(x) => {
                let mut next = self.clone();
                match next.pairs.iter_mut().find(|(y, _)| y == x) {
                    // Already present: refresh the timestamp in place.
                    Some(pair) => pair.1 = t,
                    None => next.pairs.push((x.clone(), t)),
                }
                (next, ())
            }
            OrSetOp::Remove(x) => {
                let next = OrSetSpace {
                    pairs: self.pairs.iter().filter(|(y, _)| y != x).cloned().collect(),
                };
                (next, ())
            }
        }
    }

    fn query(&self, q: &OrSetQuery<T>) -> OrSetOutput<T> {
        match q {
            OrSetQuery::Lookup(x) => OrSetOutput::Present(self.contains(x)),
            OrSetQuery::Read => OrSetOutput::Elements(self.elements()),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        let merged = merge_spaced(&lca.as_map(), &a.as_map(), &b.as_map());
        OrSetSpace {
            pairs: merged.into_iter().collect(),
        }
    }

    fn observably_equal(&self, other: &Self) -> bool {
        self.as_map() == other.as_map()
    }

    fn diff(&self, parent: &Self) -> Delta {
        // Structural diff over the encoded `(element, timestamp)` pairs: a
        // remove in the middle of the insertion-ordered vector copies every
        // surviving pair; only refreshed or new pairs are inserted.
        let items = |s: &Self| s.pairs.iter().map(Wire::to_wire).collect::<Vec<_>>();
        diff_item_lists(&items(parent), &items(self))
    }
}

/// Simulation relation for the space-efficient OR-set (paper, relation
/// (4)). Three conjuncts:
///
/// 1. every concrete pair `(x, t)` corresponds to a live `add(x)` event at
///    `t`,
/// 2. that `t` is the **greatest** timestamp among live adds of `x`, and
/// 3. every element with a live add appears in the concrete state.
///
/// Duplicate-freedom follows from (2) but is asserted explicitly as an
/// implementation invariant.
#[derive(Debug)]
pub struct OrSetSpaceSim;

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> SimulationRelation<OrSetSpace<T>>
    for OrSetSpaceSim
{
    fn holds(abs: &AbstractOf<OrSetSpace<T>>, conc: &OrSetSpace<T>) -> bool {
        // No duplicate elements in the concrete list.
        if conc.pairs.len() != conc.as_map().len() {
            return false;
        }
        let live = live_adds(abs);
        let mut greatest: BTreeMap<T, Timestamp> = BTreeMap::new();
        for (x, t) in live {
            let slot = greatest.entry(x).or_insert(t);
            if t > *slot {
                *slot = t;
            }
        }
        conc.as_map() == greatest
    }

    fn explain_failure(abs: &AbstractOf<OrSetSpace<T>>, conc: &OrSetSpace<T>) -> Option<String> {
        if <Self as SimulationRelation<OrSetSpace<T>>>::holds(abs, conc) {
            None
        } else {
            Some(format!(
                "concrete pairs {:?} are not the greatest live adds per element",
                conc.pairs
            ))
        }
    }
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Certified for OrSetSpace<T> {
    type Spec = OrSetSpec;
    type Sim = OrSetSpaceSim;
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Specification<OrSetSpace<T>>
    for OrSetSpec
{
    fn spec(_op: &OrSetOp<T>, _state: &AbstractOf<OrSetSpace<T>>) {}

    fn query(q: &OrSetQuery<T>, state: &AbstractOf<OrSetSpace<T>>) -> OrSetOutput<T> {
        orset_query(q, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    #[test]
    fn duplicate_add_refreshes_instead_of_duplicating() {
        let s: OrSetSpace<u32> = OrSetSpace::initial();
        let (s, _) = s.apply(&OrSetOp::Add(1), ts(1, 0));
        let (s, _) = s.apply(&OrSetOp::Add(1), ts(2, 0));
        assert_eq!(s.pair_count(), 1);
        assert_eq!(s.time_of(&1), Some(ts(2, 0)));
    }

    #[test]
    fn refresh_defeats_concurrent_remove() {
        let (lca, _) = OrSetSpace::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
        let (a, _) = lca.apply(&OrSetOp::Add(1), ts(2, 1)); // refresh
        let (b, _) = lca.apply(&OrSetOp::Remove(1), ts(3, 2));
        let m = OrSetSpace::merge(&lca, &a, &b);
        assert_eq!(m.time_of(&1), Some(ts(2, 1)));
    }

    #[test]
    fn plain_remove_still_removes() {
        let (lca, _) = OrSetSpace::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
        let (a, _) = lca.apply(&OrSetOp::Remove(1), ts(2, 1));
        let m = OrSetSpace::merge(&lca, &a, &lca);
        assert!(m.is_empty());
    }

    #[test]
    fn concurrent_adds_keep_larger_timestamp() {
        let lca = OrSetSpace::<u32>::initial();
        let (a, _) = lca.apply(&OrSetOp::Add(1), ts(1, 1));
        let (b, _) = lca.apply(&OrSetOp::Add(1), ts(2, 2));
        let m = OrSetSpace::merge(&lca, &a, &b);
        assert_eq!(m.pair_count(), 1);
        assert_eq!(m.time_of(&1), Some(ts(2, 2)));
        assert_eq!(
            OrSetSpace::merge(&lca, &b, &a).time_of(&1),
            Some(ts(2, 2)),
            "merge must be commutative"
        );
    }

    #[test]
    fn merge_never_produces_duplicates() {
        let (lca, _) = OrSetSpace::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
        let (a, _) = lca.apply(&OrSetOp::Add(1), ts(2, 1));
        let (b, _) = lca.apply(&OrSetOp::Add(1), ts(3, 2));
        let m = OrSetSpace::merge(&lca, &a, &b);
        assert_eq!(m.pair_count(), 1);
        assert_eq!(m.time_of(&1), Some(ts(3, 2)));
    }

    #[test]
    fn untouched_elements_survive_merge() {
        let (lca, _) = OrSetSpace::<u32>::initial().apply(&OrSetOp::Add(9), ts(1, 0));
        let (a, _) = lca.apply(&OrSetOp::Add(2), ts(2, 1));
        let (b, _) = lca.apply(&OrSetOp::Add(3), ts(3, 2));
        let m = OrSetSpace::merge(&lca, &a, &b);
        assert_eq!(m.elements(), vec![2, 3, 9]);
        assert_eq!(m.time_of(&9), Some(ts(1, 0)));
    }

    #[test]
    fn simulation_requires_greatest_live_timestamp() {
        // Two concurrent adds of 1; the concrete state must keep the later.
        let i0 = AbstractOf::<OrSetSpace<u32>>::new();
        let ia = i0.perform(OrSetOp::Add(1), (), ts(1, 1));
        let ib = i0.perform(OrSetOp::Add(1), (), ts(2, 2));
        let im = ia.merged(&ib);
        let good = OrSetSpace {
            pairs: vec![(1, ts(2, 2))],
        };
        let stale = OrSetSpace {
            pairs: vec![(1, ts(1, 1))],
        };
        assert!(OrSetSpaceSim::holds(&im, &good));
        assert!(!OrSetSpaceSim::holds(&im, &stale));
    }

    #[test]
    fn simulation_rejects_duplicates() {
        let i = AbstractOf::<OrSetSpace<u32>>::new()
            .perform(OrSetOp::Add(1), (), ts(1, 0))
            .perform(OrSetOp::Add(1), (), ts(2, 0));
        let dup = OrSetSpace {
            pairs: vec![(1, ts(1, 0)), (1, ts(2, 0))],
        };
        assert!(!OrSetSpaceSim::holds(&i, &dup));
    }

    #[test]
    fn query_spec_matches_implementation_on_read() {
        let i = AbstractOf::<OrSetSpace<u32>>::new()
            .perform(OrSetOp::Add(1), (), ts(1, 0))
            .perform(OrSetOp::Remove(1), (), ts(2, 0))
            .perform(OrSetOp::Add(2), (), ts(3, 0));
        assert_eq!(
            <OrSetSpec as Specification<OrSetSpace<u32>>>::query(&OrSetQuery::Read, &i),
            OrSetOutput::Elements(vec![2])
        );
    }
}

impl<T: peepul_core::Wire> peepul_core::Wire for OrSetSpace<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pairs.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(OrSetSpace {
            pairs: peepul_core::Wire::decode(input)?,
        })
    }

    fn max_tick(&self) -> u64 {
        self.pairs.max_tick()
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use peepul_core::{ReplicaId, Wire};

    #[test]
    fn or_set_space_wire_roundtrip() {
        let ts = |t, r| Timestamp::new(t, ReplicaId::new(r));
        let s = OrSetSpace {
            pairs: vec![(1u32, ts(3, 1)), (2, ts(8, 0))],
        };
        assert_eq!(OrSetSpace::from_wire(&s.to_wire()), Some(s.clone()));
        assert_eq!(s.max_tick(), 8);
    }
}

//! Unoptimized observed-remove set MRDT (paper §2.1.1, Fig. 1).
//!
//! The baseline Peepul OR-set: a list of `(element, timestamp)` pairs in
//! which the *same element may appear several times* with different
//! timestamps (once per `add`). `add` appends in `O(1)`; `remove` deletes
//! every occurrence in `O(n)`; the three-way merge is
//! `(l ∩ a ∩ b) ∪ (a − l) ∪ (b − l)` on pair sets. The unique timestamp
//! attached by each `add` is what makes add-win: a concurrent `remove` can
//! only delete the pairs it has *observed*.
//!
//! The duplicate pairs are pure overhead — they are why this variant loses
//! to [`crate::or_set_space`] and [`crate::or_set_spacetime`] in Figs. 14
//! and 15 of the paper.

use peepul_core::{AbstractOf, Certified, Mrdt, SimulationRelation, Specification, Timestamp};
use std::collections::BTreeSet;
use std::fmt;

/// Update operations shared by all three OR-set variants (and the Quark
/// baseline).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OrSetOp<T> {
    /// Add an element (add-wins on conflict).
    Add(T),
    /// Remove every observed occurrence of an element.
    Remove(T),
}

/// Queries shared by all three OR-set variants (and the Quark baseline).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OrSetQuery<T> {
    /// Membership test. Answered by [`OrSetOutput::Present`].
    Lookup(T),
    /// Observe the whole set. Answered by [`OrSetOutput::Elements`].
    Read,
}

/// Query answers shared by all three OR-set variants (and the Quark
/// baseline).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OrSetOutput<T> {
    /// Result of a membership test.
    Present(bool),
    /// The observed distinct elements, in element order.
    Elements(Vec<T>),
}

/// The shared OR-set specification `F_orset` (§2.2.1): a read returns every
/// element for which some `add` event is not visible to any `remove` event
/// of the same element.
#[derive(Debug)]
pub struct OrSetSpec;

/// The abstract-execution type shared by all three OR-set variants (they
/// have identical operation and return-value types).
pub(crate) type OrSetAbstract<T> = peepul_core::AbstractState<OrSetOp<T>, ()>;

/// Is the `add` event `add_id` of element `x` *live* (unseen by any
/// `remove(x)`)?
pub(crate) fn add_is_live<T: PartialEq>(abs: &OrSetAbstract<T>, add_id: Timestamp, x: &T) -> bool {
    !abs.events()
        .any(|r| matches!(r.op(), OrSetOp::Remove(y) if y == x) && abs.vis(add_id, r.id()))
}

/// All live `(element, add-timestamp)` pairs of an abstract OR-set
/// execution.
pub(crate) fn live_adds<T: Clone + PartialEq>(abs: &OrSetAbstract<T>) -> Vec<(T, Timestamp)> {
    abs.events()
        .filter_map(|e| match e.op() {
            OrSetOp::Add(x) if add_is_live(abs, e.id(), x) => Some((x.clone(), e.id())),
            _ => None,
        })
        .collect()
}

/// The specified answer of any OR-set query on abstract state `abs`.
pub(crate) fn orset_query<T: Ord + Clone + PartialEq>(
    q: &OrSetQuery<T>,
    abs: &OrSetAbstract<T>,
) -> OrSetOutput<T> {
    match q {
        OrSetQuery::Lookup(x) => OrSetOutput::Present(live_adds(abs).iter().any(|(y, _)| y == x)),
        OrSetQuery::Read => {
            let elems: BTreeSet<T> = live_adds(abs).into_iter().map(|(x, _)| x).collect();
            OrSetOutput::Elements(elems.into_iter().collect())
        }
    }
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Specification<OrSet<T>>
    for OrSetSpec
{
    fn spec(_op: &OrSetOp<T>, _state: &AbstractOf<OrSet<T>>) {}

    fn query(q: &OrSetQuery<T>, state: &AbstractOf<OrSet<T>>) -> OrSetOutput<T> {
        orset_query(q, state)
    }
}

/// Unoptimized OR-set state: `(element, timestamp)` pairs with duplicates.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::or_set::{OrSet, OrSetOp, OrSetOutput, OrSetQuery};
///
/// let ts = |t, r| Timestamp::new(t, ReplicaId::new(r));
/// let (lca, _) = OrSet::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
/// // Branch a removes 1; branch b re-adds it concurrently.
/// let (a, _) = lca.apply(&OrSetOp::Remove(1), ts(2, 1));
/// let (b, _) = lca.apply(&OrSetOp::Add(1), ts(3, 2));
/// let m = OrSet::merge(&lca, &a, &b);
/// assert_eq!(m.query(&OrSetQuery::Lookup(1)), OrSetOutput::Present(true)); // add wins
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct OrSet<T> {
    /// Append-ordered `(element, add-timestamp)` pairs; an element may occur
    /// several times with distinct timestamps.
    pairs: Vec<(T, Timestamp)>,
}

impl<T: Ord> OrSet<T> {
    /// Number of stored pairs **including duplicates** — the quantity Fig.
    /// 13/15 of the paper track.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of distinct elements.
    pub fn len(&self) -> usize {
        self.pairs
            .iter()
            .map(|(x, _)| x)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Whether the set is observably empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test (`O(n)` list scan).
    pub fn contains(&self, x: &T) -> bool {
        self.pairs.iter().any(|(y, _)| y == x)
    }

    /// The distinct elements in order.
    pub fn elements(&self) -> Vec<T>
    where
        T: Clone,
    {
        let set: BTreeSet<&T> = self.pairs.iter().map(|(x, _)| x).collect();
        set.into_iter().cloned().collect()
    }

    fn pair_set(&self) -> BTreeSet<(T, Timestamp)>
    where
        T: Clone,
    {
        self.pairs.iter().cloned().collect()
    }
}

impl<T: fmt::Debug> fmt::Debug for OrSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(&self.pairs).finish()
    }
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Mrdt for OrSet<T> {
    type Op = OrSetOp<T>;
    type Value = ();
    type Query = OrSetQuery<T>;
    type Output = OrSetOutput<T>;

    fn initial() -> Self {
        OrSet { pairs: Vec::new() }
    }

    fn apply(&self, op: &OrSetOp<T>, t: Timestamp) -> (Self, ()) {
        match op {
            OrSetOp::Add(x) => {
                let mut next = self.clone();
                next.pairs.push((x.clone(), t));
                (next, ())
            }
            OrSetOp::Remove(x) => {
                let next = OrSet {
                    pairs: self.pairs.iter().filter(|(y, _)| y != x).cloned().collect(),
                };
                (next, ())
            }
        }
    }

    fn query(&self, q: &OrSetQuery<T>) -> OrSetOutput<T> {
        match q {
            OrSetQuery::Lookup(x) => OrSetOutput::Present(self.contains(x)),
            OrSetQuery::Read => OrSetOutput::Elements(self.elements()),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        let l = lca.pair_set();
        let sa = a.pair_set();
        let sb = b.pair_set();
        // (l ∩ a ∩ b) ∪ (a − l) ∪ (b − l)
        let mut pairs: Vec<(T, Timestamp)> = l
            .iter()
            .filter(|p| sa.contains(p) && sb.contains(p))
            .cloned()
            .collect();
        pairs.extend(sa.difference(&l).cloned());
        pairs.extend(sb.difference(&l).cloned());
        pairs.sort_by_key(|(_, t)| *t);
        pairs.dedup();
        OrSet { pairs }
    }

    fn observably_equal(&self, other: &Self) -> bool {
        // The list order of pairs is internal; clients only observe the
        // pair (multi)set through reads and lookups.
        self.pair_set() == other.pair_set()
    }
}

/// Simulation relation for the unoptimized OR-set (paper, relation (3)):
/// `(x, t) ∈ σ` iff an `add(x)` event at `t` exists that no `remove(x)`
/// event observed.
#[derive(Debug)]
pub struct OrSetSim;

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> SimulationRelation<OrSet<T>>
    for OrSetSim
{
    fn holds(abs: &AbstractOf<OrSet<T>>, conc: &OrSet<T>) -> bool {
        let live: BTreeSet<(T, Timestamp)> = live_adds(abs).into_iter().collect();
        conc.pair_set() == live
    }

    fn explain_failure(abs: &AbstractOf<OrSet<T>>, conc: &OrSet<T>) -> Option<String> {
        let live: BTreeSet<(T, Timestamp)> = live_adds(abs).into_iter().collect();
        (conc.pair_set() != live).then(|| {
            format!(
                "concrete pairs {:?} differ from live adds {:?}",
                conc.pair_set(),
                live
            )
        })
    }
}

impl<T: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Certified for OrSet<T> {
    type Spec = OrSetSpec;
    type Sim = OrSetSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    #[test]
    fn duplicate_adds_accumulate_pairs() {
        let s: OrSet<u32> = OrSet::initial();
        let (s, _) = s.apply(&OrSetOp::Add(1), ts(1, 0));
        let (s, _) = s.apply(&OrSetOp::Add(1), ts(2, 0));
        assert_eq!(s.pair_count(), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_deletes_all_occurrences() {
        let s: OrSet<u32> = OrSet::initial();
        let (s, _) = s.apply(&OrSetOp::Add(1), ts(1, 0));
        let (s, _) = s.apply(&OrSetOp::Add(1), ts(2, 0));
        let (s, _) = s.apply(&OrSetOp::Remove(1), ts(3, 0));
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_add_remove_add_wins() {
        let (lca, _) = OrSet::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
        let (a, _) = lca.apply(&OrSetOp::Remove(1), ts(2, 1));
        let (b, _) = lca.apply(&OrSetOp::Add(1), ts(3, 2));
        let m = OrSet::merge(&lca, &a, &b);
        assert!(m.contains(&1));
        // Only the fresh pair survives: the observed pair was removed.
        assert_eq!(m.pair_count(), 1);
    }

    #[test]
    fn remove_on_both_branches_removes() {
        let (lca, _) = OrSet::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
        let (a, _) = lca.apply(&OrSetOp::Remove(1), ts(2, 1));
        let (b, _) = lca.apply(&OrSetOp::Remove(1), ts(3, 2));
        assert!(OrSet::merge(&lca, &a, &b).is_empty());
    }

    #[test]
    fn merge_keeps_untouched_common_pairs() {
        let (lca, _) = OrSet::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
        let (a, _) = lca.apply(&OrSetOp::Add(2), ts(2, 1));
        let (b, _) = lca.apply(&OrSetOp::Add(3), ts(3, 2));
        let m = OrSet::merge(&lca, &a, &b);
        assert_eq!(m.elements(), vec![1, 2, 3]);
    }

    #[test]
    fn merge_is_commutative_modulo_observation() {
        let (lca, _) = OrSet::<u32>::initial().apply(&OrSetOp::Add(1), ts(1, 0));
        let (a, _) = lca.apply(&OrSetOp::Add(2), ts(2, 1));
        let (b, _) = lca.apply(&OrSetOp::Remove(1), ts(3, 2));
        let m1 = OrSet::merge(&lca, &a, &b);
        let m2 = OrSet::merge(&lca, &b, &a);
        assert!(m1.observably_equal(&m2));
    }

    #[test]
    fn query_spec_add_wins_scenario() {
        let i = AbstractOf::<OrSet<u32>>::new().perform(OrSetOp::Add(1), (), ts(1, 0));
        // remove(1) sees the first add; a concurrent add(1) does not see the
        // remove.
        let ia = i.perform(OrSetOp::Remove(1), (), ts(2, 1));
        let ib = i.perform(OrSetOp::Add(1), (), ts(3, 2));
        let im = ia.merged(&ib);
        assert_eq!(
            <OrSetSpec as Specification<OrSet<u32>>>::query(&OrSetQuery::Read, &im),
            OrSetOutput::Elements(vec![1])
        );
        assert_eq!(
            <OrSetSpec as Specification<OrSet<u32>>>::query(&OrSetQuery::Lookup(1), &im),
            OrSetOutput::Present(true)
        );
    }

    #[test]
    fn simulation_matches_live_pairs() {
        let i = AbstractOf::<OrSet<u32>>::new()
            .perform(OrSetOp::Add(1), (), ts(1, 0))
            .perform(OrSetOp::Remove(1), (), ts(2, 0))
            .perform(OrSetOp::Add(2), (), ts(3, 0));
        let expect = OrSet {
            pairs: vec![(2, ts(3, 0))],
        };
        assert!(OrSetSim::holds(&i, &expect));
        let stale = OrSet {
            pairs: vec![(1, ts(1, 0)), (2, ts(3, 0))],
        };
        assert!(!OrSetSim::holds(&i, &stale));
        assert!(OrSetSim::explain_failure(&i, &stale).is_some());
    }

    #[test]
    fn observational_equality_ignores_pair_order() {
        let x = OrSet {
            pairs: vec![(1, ts(1, 0)), (2, ts(2, 0))],
        };
        let y = OrSet {
            pairs: vec![(2, ts(2, 0)), (1, ts(1, 0))],
        };
        assert!(x.observably_equal(&y));
        assert_ne!(x, y);
    }
}

impl<T: peepul_core::Wire> peepul_core::Wire for OrSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pairs.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(OrSet {
            pairs: peepul_core::Wire::decode(input)?,
        })
    }

    fn max_tick(&self) -> u64 {
        self.pairs.max_tick()
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use peepul_core::{ReplicaId, Wire};

    #[test]
    fn or_set_wire_roundtrip_preserves_pairs_and_ticks() {
        let ts = |t, r| Timestamp::new(t, ReplicaId::new(r));
        let s = OrSet {
            pairs: vec![(5u32, ts(9, 1)), (5, ts(2, 0)), (7, ts(4, 2))],
        };
        let back = OrSet::from_wire(&s.to_wire()).unwrap();
        assert_eq!(back, s);
        assert_eq!(s.max_tick(), 9);
    }
}

//! Generic MRDT map — the paper's `α-map` (§5.3) and grow-only map.
//!
//! [`MrdtMap<V>`] associates string keys with values that are themselves
//! MRDTs. Operations address one key and carry an operation of the nested
//! data type; the merge merges each key's value with the nested three-way
//! merge. Keys are never deleted (grow-only), so the paper's *G-map* is
//! this type as well (see [`crate::GMap`]).
//!
//! The interesting part is compositional certification (§5.4): the map's
//! specification and simulation relation *reuse* the nested type's, by
//! projecting the map's abstract execution onto the `set`-events of one key
//! ([`project`]). Certifying `MrdtMap<V>` therefore needs nothing beyond
//! `V`'s own certificate — plug in any [`Certified`] MRDT and the composite
//! is certified too, which is how the chat application of [`crate::chat`]
//! gets its proofs "for free".

use peepul_core::{
    diff_item_lists, AbstractOf, Certified, Delta, Mrdt, SimulationRelation, Specification,
    Timestamp, Wire,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Update operations of the α-map over a nested MRDT `V`.
///
/// `Set` fetches the value at the key (the nested initial state when the
/// key is absent), applies the nested update to it and stores the result,
/// returning the nested update's return value. Pure observations go through
/// [`MapQuery`] instead.
pub enum MapOp<V: Mrdt> {
    /// Apply a nested update at a key, storing the result.
    Set(String, V::Op),
}

impl<V: Mrdt> MapOp<V> {
    /// The addressed key.
    pub fn key(&self) -> &str {
        match self {
            MapOp::Set(k, _) => k,
        }
    }

    /// The nested operation.
    pub fn nested(&self) -> &V::Op {
        match self {
            MapOp::Set(_, o) => o,
        }
    }
}

// Manual impls: deriving would wrongly constrain `V` itself rather than
// `V::Op`.
impl<V: Mrdt> Clone for MapOp<V> {
    fn clone(&self) -> Self {
        match self {
            MapOp::Set(k, o) => MapOp::Set(k.clone(), o.clone()),
        }
    }
}

impl<V: Mrdt> fmt::Debug for MapOp<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapOp::Set(k, o) => write!(f, "set({k:?}, {o:?})"),
        }
    }
}

impl<V: Mrdt> PartialEq for MapOp<V>
where
    V::Op: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (MapOp::Set(k1, o1), MapOp::Set(k2, o2)) => k1 == k2 && o1 == o2,
        }
    }
}

/// Queries of the α-map: a nested query routed to one key.
///
/// The addressed key's value — or the nested initial state when the key is
/// absent — answers the nested query; the map itself is never changed.
pub enum MapQuery<V: Mrdt> {
    /// Ask a nested query at a key.
    Get(String, V::Query),
}

impl<V: Mrdt> MapQuery<V> {
    /// The addressed key.
    pub fn key(&self) -> &str {
        match self {
            MapQuery::Get(k, _) => k,
        }
    }

    /// The nested query.
    pub fn nested(&self) -> &V::Query {
        match self {
            MapQuery::Get(_, q) => q,
        }
    }
}

impl<V: Mrdt> Clone for MapQuery<V> {
    fn clone(&self) -> Self {
        match self {
            MapQuery::Get(k, q) => MapQuery::Get(k.clone(), q.clone()),
        }
    }
}

impl<V: Mrdt> fmt::Debug for MapQuery<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapQuery::Get(k, q) => write!(f, "get({k:?}, {q:?})"),
        }
    }
}

/// The α-map state: a grow-only association of keys to nested MRDT states.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::counter::{Counter, CounterOp, CounterQuery};
/// use peepul_types::map::{MapOp, MapQuery, MrdtMap};
///
/// let ts = |t| Timestamp::new(t, ReplicaId::new(0));
/// let m: MrdtMap<Counter> = MrdtMap::initial();
/// let (m, _) = m.apply(&MapOp::Set("hits".into(), CounterOp::Increment), ts(1));
/// assert_eq!(m.query(&MapQuery::Get("hits".into(), CounterQuery::Value)), 1);
/// ```
pub struct MrdtMap<V> {
    entries: BTreeMap<String, V>,
}

impl<V: Mrdt> MrdtMap<V> {
    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no key has ever been set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` has been set.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// The nested state at `key`, if set.
    pub fn get(&self, key: &str) -> Option<&V> {
        self.entries.get(key)
    }

    /// The keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// The paper's `δ(σ, k)`: the value bound at `key`, or the nested
    /// initial state when absent.
    pub fn value_or_initial(&self, key: &str) -> V {
        self.entries.get(key).cloned().unwrap_or_else(V::initial)
    }
}

impl<V: Clone> Clone for MrdtMap<V> {
    fn clone(&self) -> Self {
        MrdtMap {
            entries: self.entries.clone(),
        }
    }
}

impl<V: PartialEq> PartialEq for MrdtMap<V> {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

/// The canonical codec: a length prefix followed by `(key, nested state)`
/// entries in ascending key order, each nested state in its own canonical
/// encoding — so the α-map composes codecs exactly as it composes
/// specifications (§5.4): any `Wire`-capable nested MRDT makes the map
/// storable, addressable and replicable with no extra code.
impl<V: Mrdt> peepul_core::Wire for MrdtMap<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(MrdtMap {
            entries: peepul_core::Wire::decode(input)?,
        })
    }

    fn max_tick(&self) -> u64 {
        self.entries.max_tick()
    }
}

impl<V: fmt::Debug> fmt::Debug for MrdtMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.entries.iter()).finish()
    }
}

impl<V: Mrdt> Default for MrdtMap<V> {
    fn default() -> Self {
        MrdtMap {
            entries: BTreeMap::new(),
        }
    }
}

impl<V: Mrdt> Mrdt for MrdtMap<V> {
    type Op = MapOp<V>;
    type Value = V::Value;
    type Query = MapQuery<V>;
    type Output = V::Output;

    fn initial() -> Self {
        MrdtMap::default()
    }

    fn apply(&self, op: &MapOp<V>, t: Timestamp) -> (Self, V::Value) {
        let (nested_next, rval) = self.value_or_initial(op.key()).apply(op.nested(), t);
        match op {
            MapOp::Set(k, _) => {
                let mut next = self.clone();
                next.entries.insert(k.clone(), nested_next);
                (next, rval)
            }
        }
    }

    fn query(&self, q: &MapQuery<V>) -> V::Output {
        // `δ(σ, k)` answers: the bound value, or the nested initial state
        // for an absent key (so unknown keys report "empty", not an error).
        self.value_or_initial(q.key()).query(q.nested())
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        let keys: BTreeSet<&String> = lca
            .entries
            .keys()
            .chain(a.entries.keys())
            .chain(b.entries.keys())
            .collect();
        let entries = keys
            .into_iter()
            .map(|k| {
                let merged = V::merge(
                    &lca.value_or_initial(k),
                    &a.value_or_initial(k),
                    &b.value_or_initial(k),
                );
                (k.clone(), merged)
            })
            .collect();
        MrdtMap { entries }
    }

    fn observably_equal(&self, other: &Self) -> bool {
        // Same keys, and the nested values observationally equal per key.
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .all(|(k, v)| other.entries.get(k).is_some_and(|w| v.observably_equal(w)))
    }

    fn diff(&self, parent: &Self) -> Delta {
        // Structural diff over the encoded `(key, value)` entries: touching
        // one key re-encodes one entry, every untouched entry is copied
        // from the parent encoding wherever sort order moved it.
        let items = |map: &Self| {
            map.entries
                .iter()
                .map(|(k, v)| {
                    let mut buf = Vec::new();
                    k.encode(&mut buf);
                    v.encode(&mut buf);
                    buf
                })
                .collect::<Vec<_>>()
        };
        diff_item_lists(&items(parent), &items(self))
    }
}

/// The projection function of §5.4 (Fig. 9): reduces an α-map execution to
/// the nested-MRDT execution at one key, keeping exactly the `set(k, ·)`
/// events (with their nested operation, return value, timestamp, and the
/// restricted visibility relation).
pub fn project<V: Mrdt>(key: &str, abs: &AbstractOf<MrdtMap<V>>) -> AbstractOf<V> {
    abs.filter_map(|e| match e.op() {
        MapOp::Set(k, o) if k == key => Some((o.clone(), e.rval().clone())),
        MapOp::Set(_, _) => None,
    })
}

/// Specification of the α-map (§5.3): the answer at a key is the nested
/// specification evaluated on the projected execution,
/// `F_map(get/set(k, o), I) = F_V(o, project(k, I))`.
#[derive(Debug)]
pub struct MapSpec;

impl<V: Certified> Specification<MrdtMap<V>> for MapSpec {
    fn spec(op: &MapOp<V>, state: &AbstractOf<MrdtMap<V>>) -> V::Value {
        V::Spec::spec(op.nested(), &project(op.key(), state))
    }

    fn query(q: &MapQuery<V>, state: &AbstractOf<MrdtMap<V>>) -> V::Output {
        V::Spec::query(q.nested(), &project(q.key(), state))
    }
}

/// Simulation relation of the α-map (§5.3): a key is present iff some
/// `set` event addressed it, and the nested relation holds between each
/// key's projected execution and its stored value.
#[derive(Debug)]
pub struct MapSim;

impl<V: Certified> SimulationRelation<MrdtMap<V>> for MapSim {
    fn holds(abs: &AbstractOf<MrdtMap<V>>, conc: &MrdtMap<V>) -> bool {
        let set_keys: BTreeSet<String> = abs
            .events()
            .map(|e| match e.op() {
                MapOp::Set(k, _) => k.clone(),
            })
            .collect();
        if conc.entries.keys().cloned().collect::<BTreeSet<_>>() != set_keys {
            return false;
        }
        set_keys
            .iter()
            .all(|k| V::Sim::holds(&project(k, abs), &conc.value_or_initial(k)))
    }

    fn explain_failure(abs: &AbstractOf<MrdtMap<V>>, conc: &MrdtMap<V>) -> Option<String> {
        let set_keys: BTreeSet<String> = abs
            .events()
            .map(|e| match e.op() {
                MapOp::Set(k, _) => k.clone(),
            })
            .collect();
        let conc_keys: BTreeSet<String> = conc.entries.keys().cloned().collect();
        if conc_keys != set_keys {
            return Some(format!(
                "map domain {conc_keys:?} differs from set-event keys {set_keys:?}"
            ));
        }
        for k in &set_keys {
            if let Some(why) = V::Sim::explain_failure(&project(k, abs), &conc.value_or_initial(k))
            {
                return Some(format!("at key {k:?}: {why}"));
            }
        }
        None
    }
}

impl<V: Certified> Certified for MrdtMap<V>
where
    V::Op: PartialEq,
{
    type Spec = MapSpec;
    type Sim = MapSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{Counter, CounterOp, CounterQuery};
    use crate::g_set::{GSet, GSetOp, GSetOutput, GSetQuery};
    use peepul_core::ReplicaId;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    fn set(k: &str, o: CounterOp) -> MapOp<Counter> {
        MapOp::Set(k.to_owned(), o)
    }

    fn get(k: &str) -> MapQuery<Counter> {
        MapQuery::Get(k.to_owned(), CounterQuery::Value)
    }

    #[test]
    fn set_creates_key_get_does_not() {
        let m: MrdtMap<Counter> = MrdtMap::initial();
        assert_eq!(m.query(&get("a")), 0);
        assert!(!m.contains_key("a"));
        let (m, _) = m.apply(&set("a", CounterOp::Increment), ts(2, 0));
        assert!(m.contains_key("a"));
    }

    #[test]
    fn nested_operations_compose() {
        let m: MrdtMap<Counter> = MrdtMap::initial();
        let (m, _) = m.apply(&set("a", CounterOp::Increment), ts(1, 0));
        let (m, _) = m.apply(&set("a", CounterOp::Increment), ts(2, 0));
        let (m, _) = m.apply(&set("b", CounterOp::Increment), ts(3, 0));
        assert_eq!(m.query(&get("a")), 2);
        assert_eq!(m.query(&get("b")), 1);
    }

    #[test]
    fn merge_merges_values_per_key() {
        let lca: MrdtMap<Counter> = MrdtMap::initial();
        let (lca, _) = lca.apply(&set("shared", CounterOp::Increment), ts(1, 0));
        let (a, _) = lca.apply(&set("shared", CounterOp::Increment), ts(2, 1));
        let (a, _) = a.apply(&set("only-a", CounterOp::Increment), ts(3, 1));
        let (b, _) = lca.apply(&set("shared", CounterOp::Increment), ts(4, 2));
        let m = MrdtMap::merge(&lca, &a, &b);
        assert_eq!(m.get("shared").map(|c| c.count()), Some(3));
        assert_eq!(m.get("only-a").map(|c| c.count()), Some(1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn merge_is_commutative_for_counter_values() {
        let lca: MrdtMap<Counter> = MrdtMap::initial();
        let (a, _) = lca.apply(&set("x", CounterOp::Increment), ts(1, 1));
        let (b, _) = lca.apply(&set("y", CounterOp::Increment), ts(2, 2));
        assert_eq!(MrdtMap::merge(&lca, &a, &b), MrdtMap::merge(&lca, &b, &a));
    }

    #[test]
    fn works_with_set_values_too() {
        let m: MrdtMap<GSet<u32>> = MrdtMap::initial();
        let (m, _) = m.apply(&MapOp::Set("s".into(), GSetOp::Add(1)), ts(1, 0));
        assert_eq!(
            m.query(&MapQuery::Get("s".into(), GSetQuery::Read)),
            GSetOutput::Elements(vec![1])
        );
    }

    #[test]
    fn projection_keeps_only_set_events_of_the_key() {
        let i = AbstractOf::<MrdtMap<Counter>>::new()
            .perform(set("a", CounterOp::Increment), (), ts(1, 0))
            .perform(set("b", CounterOp::Increment), (), ts(2, 0))
            .perform(set("a", CounterOp::Increment), (), ts(4, 0));
        let pa = project::<Counter>("a", &i);
        assert_eq!(pa.len(), 2);
        // Visibility survives projection.
        assert!(pa.vis(ts(1, 0), ts(4, 0)));
        let pb = project::<Counter>("b", &i);
        assert_eq!(pb.len(), 1);
    }

    #[test]
    fn query_spec_delegates_to_nested_spec() {
        let i = AbstractOf::<MrdtMap<Counter>>::new()
            .perform(set("a", CounterOp::Increment), (), ts(1, 0))
            .perform(set("a", CounterOp::Increment), (), ts(2, 0));
        assert_eq!(MapSpec::query(&get("a"), &i), 2);
        assert_eq!(MapSpec::query(&get("zzz"), &i), 0);
    }

    #[test]
    fn simulation_composes_nested_relations() {
        let i = AbstractOf::<MrdtMap<Counter>>::new().perform(
            set("a", CounterOp::Increment),
            (),
            ts(1, 0),
        );
        let (good, _) =
            MrdtMap::<Counter>::initial().apply(&set("a", CounterOp::Increment), ts(1, 0));
        assert!(MapSim::holds(&i, &good));
        // Wrong domain.
        assert!(!MapSim::holds(&i, &MrdtMap::initial()));
        // Right domain, wrong nested state.
        let mut bad = MrdtMap::<Counter>::initial();
        bad.entries.insert("a".into(), Counter::initial());
        assert!(!MapSim::holds(&i, &bad));
        assert!(MapSim::explain_failure(&i, &bad).is_some());
    }
}

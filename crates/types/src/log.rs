//! Mergeable log MRDT (paper §5.2, Fig. 7).
//!
//! An append-only log that keeps its entries in **reverse chronological
//! order** (most recent first), so a UI can render the newest message
//! without scanning. Appends are `O(1)`; the three-way merge is the
//! timestamp-sorted union of the two versions — equivalent to the paper's
//! `sort((a − l) @ (b − l)) @ l` on once-diverged branch pairs, and still
//! correct on asymmetric repeated-merge histories where the paper's
//! concatenation would break the ordering invariant (see
//! [`Mrdt::merge`](MergeableLog) and `DESIGN.md` §6).
//!
//! The log is the value type of the IRC-style chat of §5.1 (one log per
//! channel inside an α-map; see [`crate::chat`]).

use peepul_core::{
    diff_item_lists, AbstractOf, Certified, Delta, Mrdt, SimulationRelation, Specification,
    Timestamp, Wire,
};
use std::collections::VecDeque;
use std::fmt;

/// Operations of the mergeable log over messages `M`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogOp<M> {
    /// Append a message.
    Append(M),
}

/// Queries of the mergeable log.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LogQuery {
    /// Observe the whole log, most recent first.
    Read,
}

/// Mergeable log state: `(timestamp, message)` entries, newest first.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::log::{MergeableLog, LogOp};
///
/// let lca: MergeableLog<String> = MergeableLog::initial();
/// let (a, _) = lca.apply(&LogOp::Append("from a".into()), Timestamp::new(1, ReplicaId::new(1)));
/// let (b, _) = lca.apply(&LogOp::Append("from b".into()), Timestamp::new(2, ReplicaId::new(2)));
/// let m = MergeableLog::merge(&lca, &a, &b);
/// let msgs: Vec<&str> = m.iter().map(|(_, msg)| msg.as_str()).collect();
/// assert_eq!(msgs, ["from b", "from a"]); // newest first
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct MergeableLog<M> {
    /// Newest-first entries; timestamps strictly decrease along the deque.
    entries: VecDeque<(Timestamp, M)>,
}

impl<M> MergeableLog<M> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates newest-first.
    pub fn iter(&self) -> impl Iterator<Item = &(Timestamp, M)> {
        self.entries.iter()
    }

    /// The most recent entry, if any.
    pub fn latest(&self) -> Option<&(Timestamp, M)> {
        self.entries.front()
    }
}

impl<M: fmt::Debug> fmt::Debug for MergeableLog<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(&self.entries).finish()
    }
}

impl<M: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Mrdt for MergeableLog<M> {
    type Op = LogOp<M>;
    type Value = ();
    type Query = LogQuery;
    type Output = Vec<(Timestamp, M)>;

    fn initial() -> Self {
        MergeableLog {
            entries: VecDeque::new(),
        }
    }

    fn apply(&self, op: &LogOp<M>, t: Timestamp) -> (Self, ()) {
        match op {
            LogOp::Append(m) => {
                debug_assert!(
                    self.entries.front().is_none_or(|(front, _)| *front < t),
                    "store timestamps must increase along a branch (Ψ_ts)"
                );
                let mut next = self.clone();
                next.entries.push_front((t, m.clone()));
                (next, ())
            }
        }
    }

    fn query(&self, q: &LogQuery) -> Vec<(Timestamp, M)> {
        match q {
            LogQuery::Read => self.entries.iter().cloned().collect(),
        }
    }

    fn merge(_lca: &Self, a: &Self, b: &Self) -> Self {
        // The log is append-only, so every ancestor entry is still present
        // on both branches and the merge is simply the timestamp-sorted
        // union of the two versions (entries are unique by timestamp;
        // entries that reached both branches through earlier merges dedup
        // on the timestamp key).
        //
        // The paper's §5.2 computes `sort((a − l) @ (b − l)) @ l` instead,
        // which additionally assumes every fresh entry outranks all of the
        // LCA (the strong Ψ_lca envelope); under asymmetric repeated
        // merges that assumption fails and the concatenation would break
        // the reverse-chronological invariant, so the general union form
        // is used here. The two agree on the paper's envelope.
        let mut entries: Vec<(Timestamp, M)> =
            a.entries.iter().chain(b.entries.iter()).cloned().collect();
        entries.sort_by(|(t1, _), (t2, _)| t2.cmp(t1));
        entries.dedup_by(|x, y| x.0 == y.0);
        MergeableLog {
            entries: entries.into(),
        }
    }

    fn diff(&self, parent: &Self) -> Delta {
        // Entries are newest-first, so an append prepends — the byte splice
        // would already share the whole tail, but a *merge* interleaves
        // fresh entries from both branches anywhere in timestamp order;
        // diffing per encoded entry copies every inherited entry and
        // inserts only the genuinely new ones.
        let items = |log: &Self| log.entries.iter().map(Wire::to_wire).collect::<Vec<_>>();
        diff_item_lists(&items(parent), &items(self))
    }
}

/// Specification `F_log` (Fig. 7): a read returns exactly the appended
/// `(timestamp, message)` pairs, in reverse chronological order.
#[derive(Debug)]
pub struct LogSpec;

impl<M: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Specification<MergeableLog<M>>
    for LogSpec
{
    fn spec(_op: &LogOp<M>, _state: &AbstractOf<MergeableLog<M>>) {}

    fn query(q: &LogQuery, state: &AbstractOf<MergeableLog<M>>) -> Vec<(Timestamp, M)> {
        match q {
            LogQuery::Read => {
                let mut entries: Vec<(Timestamp, M)> = state
                    .events()
                    .map(|e| match e.op() {
                        LogOp::Append(m) => (e.time(), m.clone()),
                    })
                    .collect();
                entries.sort_by(|(t1, _), (t2, _)| t2.cmp(t1));
                entries
            }
        }
    }
}

/// Simulation relation (Fig. 7): the concrete log contains exactly the
/// append events' `(timestamp, message)` pairs and is sorted newest-first.
#[derive(Debug)]
pub struct LogSim;

impl<M: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug>
    SimulationRelation<MergeableLog<M>> for LogSim
{
    fn holds(abs: &AbstractOf<MergeableLog<M>>, conc: &MergeableLog<M>) -> bool {
        let mut appended: Vec<(Timestamp, M)> = abs
            .events()
            .map(|e| match e.op() {
                LogOp::Append(m) => (e.time(), m.clone()),
            })
            .collect();
        appended.sort_by(|(t1, _), (t2, _)| t2.cmp(t1));
        conc.entries.iter().cloned().collect::<Vec<_>>() == appended
    }

    fn explain_failure(
        abs: &AbstractOf<MergeableLog<M>>,
        conc: &MergeableLog<M>,
    ) -> Option<String> {
        if <Self as SimulationRelation<MergeableLog<M>>>::holds(abs, conc) {
            None
        } else {
            Some(format!(
                "log {:?} is not the reverse-chronological sequence of append events",
                conc.entries
            ))
        }
    }
}

impl<M: Ord + Clone + PartialEq + peepul_core::Wire + fmt::Debug> Certified for MergeableLog<M> {
    type Spec = LogSpec;
    type Sim = LogSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    #[test]
    fn appends_accumulate_newest_first() {
        let l: MergeableLog<String> = MergeableLog::initial();
        let (l, _) = l.apply(&LogOp::Append("one".into()), ts(1, 0));
        let (l, _) = l.apply(&LogOp::Append("two".into()), ts(2, 0));
        assert_eq!(l.latest(), Some(&(ts(2, 0), "two".to_owned())));
        assert_eq!(
            l.query(&LogQuery::Read),
            vec![(ts(2, 0), "two".to_owned()), (ts(1, 0), "one".to_owned())]
        );
    }

    #[test]
    fn merge_interleaves_fresh_entries_by_timestamp() {
        let lca: MergeableLog<String> = MergeableLog::initial();
        let (lca, _) = lca.apply(&LogOp::Append("base".into()), ts(1, 0));
        let (a, _) = lca.apply(&LogOp::Append("a1".into()), ts(2, 1));
        let (a, _) = a.apply(&LogOp::Append("a2".into()), ts(5, 1));
        let (b, _) = lca.apply(&LogOp::Append("b1".into()), ts(3, 2));
        let (b, _) = b.apply(&LogOp::Append("b2".into()), ts(4, 2));
        let m = MergeableLog::merge(&lca, &a, &b);
        let msgs: Vec<&str> = m.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(msgs, ["a2", "b2", "b1", "a1", "base"]);
    }

    #[test]
    fn merge_is_commutative() {
        let lca: MergeableLog<String> = MergeableLog::initial();
        let (a, _) = lca.apply(&LogOp::Append("a".into()), ts(1, 1));
        let (b, _) = lca.apply(&LogOp::Append("b".into()), ts(2, 2));
        assert_eq!(
            MergeableLog::merge(&lca, &a, &b),
            MergeableLog::merge(&lca, &b, &a)
        );
    }

    #[test]
    fn merge_with_identical_branches_is_identity() {
        let lca: MergeableLog<String> = MergeableLog::initial();
        let (a, _) = lca.apply(&LogOp::Append("x".into()), ts(1, 0));
        assert_eq!(MergeableLog::merge(&lca, &a, &a), a);
    }

    #[test]
    fn timestamps_strictly_decrease_along_merged_log() {
        let lca: MergeableLog<u32> = MergeableLog::initial();
        let (lca, _) = lca.apply(&LogOp::Append(0), ts(1, 0));
        let (a, _) = lca.apply(&LogOp::Append(1), ts(2, 1));
        let (b, _) = lca.apply(&LogOp::Append(2), ts(3, 2));
        let m = MergeableLog::merge(&lca, &a, &b);
        let times: Vec<Timestamp> = m.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn query_spec_orders_all_appends() {
        let i = AbstractOf::<MergeableLog<String>>::new()
            .perform(LogOp::Append("x".into()), (), ts(1, 0))
            .perform(LogOp::Append("y".into()), (), ts(2, 0));
        assert_eq!(
            LogSpec::query(&LogQuery::Read, &i),
            vec![(ts(2, 0), "y".to_owned()), (ts(1, 0), "x".to_owned())]
        );
    }

    #[test]
    fn simulation_rejects_misordered_log() {
        let i = AbstractOf::<MergeableLog<String>>::new()
            .perform(LogOp::Append("x".into()), (), ts(1, 0))
            .perform(LogOp::Append("y".into()), (), ts(2, 0));
        let mut bad: MergeableLog<String> = MergeableLog::initial();
        bad.entries.push_back((ts(1, 0), "x".into()));
        bad.entries.push_back((ts(2, 0), "y".into())); // oldest-first: wrong
        assert!(!LogSim::holds(&i, &bad));
        let (good, _) = {
            let (l, _) =
                MergeableLog::<String>::initial().apply(&LogOp::Append("x".into()), ts(1, 0));
            l.apply(&LogOp::Append("y".into()), ts(2, 0))
        };
        assert!(LogSim::holds(&i, &good));
    }
}

impl<M: peepul_core::Wire> peepul_core::Wire for MergeableLog<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let entries: std::collections::VecDeque<(Timestamp, M)> = peepul_core::Wire::decode(input)?;
        // Reject encodings that violate the newest-first invariant: they
        // could never have come from a well-formed log.
        let sorted = entries
            .iter()
            .zip(entries.iter().skip(1))
            .all(|(a, b)| a.0 > b.0);
        sorted.then_some(MergeableLog { entries })
    }

    fn max_tick(&self) -> u64 {
        self.entries.max_tick()
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use peepul_core::{ReplicaId, Wire};

    #[test]
    fn log_wire_roundtrip_and_invariant_check() {
        let ts = |t| Timestamp::new(t, ReplicaId::new(0));
        let l = MergeableLog {
            entries: [(ts(3), 30u8), (ts(1), 10)].into(),
        };
        assert_eq!(MergeableLog::from_wire(&l.to_wire()), Some(l.clone()));
        assert_eq!(l.max_tick(), 3);
        let bad = MergeableLog {
            entries: [(ts(1), 10u8), (ts(3), 30)].into(),
        };
        assert_eq!(MergeableLog::<u8>::from_wire(&bad.to_wire()), None);
    }
}

//! Positive-negative counter MRDT (paper, Table 3).
//!
//! Tracks increments and decrements separately — the classic PN-counter
//! construction — so the three-way merge can add per-branch deltas without
//! conflating the two directions.

use peepul_core::{AbstractOf, Certified, Mrdt, SimulationRelation, Specification, Timestamp};

/// Operations of the PN counter.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PnCounterOp {
    /// Add one. Returns [`PnCounterValue::Ack`].
    Increment,
    /// Subtract one. Returns [`PnCounterValue::Ack`].
    Decrement,
    /// Query the current value. Returns [`PnCounterValue::Count`].
    Value,
}

/// Return values of the PN counter.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PnCounterValue {
    /// The unit reply `⊥` of an update.
    Ack,
    /// The observed value (may be negative).
    Count(i64),
}

/// PN-counter state: the totals of increments and decrements observed.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::pn_counter::{PnCounter, PnCounterOp, PnCounterValue};
///
/// let ts = |t| Timestamp::new(t, ReplicaId::new(0));
/// let lca = PnCounter::initial();
/// let (a, _) = lca.apply(&PnCounterOp::Increment, ts(1));
/// let (b, _) = lca.apply(&PnCounterOp::Decrement, ts(2));
/// let m = PnCounter::merge(&lca, &a, &b);
/// assert_eq!(m.value(), 0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct PnCounter {
    incs: u64,
    decs: u64,
}

impl PnCounter {
    /// The current value: increments minus decrements.
    pub fn value(self) -> i64 {
        self.incs as i64 - self.decs as i64
    }

    /// Total increments observed.
    pub fn increments(self) -> u64 {
        self.incs
    }

    /// Total decrements observed.
    pub fn decrements(self) -> u64 {
        self.decs
    }
}

impl Mrdt for PnCounter {
    type Op = PnCounterOp;
    type Value = PnCounterValue;

    fn initial() -> Self {
        PnCounter::default()
    }

    fn apply(&self, op: &PnCounterOp, _t: Timestamp) -> (Self, PnCounterValue) {
        match op {
            PnCounterOp::Increment => (
                PnCounter {
                    incs: self.incs + 1,
                    ..*self
                },
                PnCounterValue::Ack,
            ),
            PnCounterOp::Decrement => (
                PnCounter {
                    decs: self.decs + 1,
                    ..*self
                },
                PnCounterValue::Ack,
            ),
            PnCounterOp::Value => (*self, PnCounterValue::Count(self.value())),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        PnCounter {
            incs: a.incs + b.incs - lca.incs,
            decs: a.decs + b.decs - lca.decs,
        }
    }
}

/// Specification `F_pnctr`: a read returns visible increments minus visible
/// decrements.
#[derive(Debug)]
pub struct PnCounterSpec;

impl Specification<PnCounter> for PnCounterSpec {
    fn spec(op: &PnCounterOp, state: &AbstractOf<PnCounter>) -> PnCounterValue {
        match op {
            PnCounterOp::Increment | PnCounterOp::Decrement => PnCounterValue::Ack,
            PnCounterOp::Value => {
                let incs = state
                    .events()
                    .filter(|e| matches!(e.op(), PnCounterOp::Increment))
                    .count() as i64;
                let decs = state
                    .events()
                    .filter(|e| matches!(e.op(), PnCounterOp::Decrement))
                    .count() as i64;
                PnCounterValue::Count(incs - decs)
            }
        }
    }
}

/// Simulation relation: both components match the corresponding event
/// counts (strictly stronger than relating only the difference — relating
/// only `value()` would not be preserved by merge).
#[derive(Debug)]
pub struct PnCounterSim;

impl SimulationRelation<PnCounter> for PnCounterSim {
    fn holds(abs: &AbstractOf<PnCounter>, conc: &PnCounter) -> bool {
        let incs = abs
            .events()
            .filter(|e| matches!(e.op(), PnCounterOp::Increment))
            .count() as u64;
        let decs = abs
            .events()
            .filter(|e| matches!(e.op(), PnCounterOp::Decrement))
            .count() as u64;
        conc.incs == incs && conc.decs == decs
    }

    fn explain_failure(abs: &AbstractOf<PnCounter>, conc: &PnCounter) -> Option<String> {
        if Self::holds(abs, conc) {
            None
        } else {
            Some(format!(
                "concrete (incs={}, decs={}) does not match abstract event counts",
                conc.incs, conc.decs
            ))
        }
    }
}

impl Certified for PnCounter {
    type Spec = PnCounterSpec;
    type Sim = PnCounterSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(0))
    }

    #[test]
    fn value_can_go_negative() {
        let c = PnCounter::initial();
        let (c, _) = c.apply(&PnCounterOp::Decrement, ts(1));
        let (c, _) = c.apply(&PnCounterOp::Decrement, ts(2));
        let (c, _) = c.apply(&PnCounterOp::Increment, ts(3));
        assert_eq!(c.value(), -1);
        let (_, v) = c.apply(&PnCounterOp::Value, ts(4));
        assert_eq!(v, PnCounterValue::Count(-1));
    }

    #[test]
    fn merge_adds_both_directions_independently() {
        let lca = PnCounter { incs: 5, decs: 2 };
        let a = PnCounter { incs: 8, decs: 2 }; // +3 incs
        let b = PnCounter { incs: 5, decs: 6 }; // +4 decs
        let m = PnCounter::merge(&lca, &a, &b);
        assert_eq!(m, PnCounter { incs: 8, decs: 6 });
        assert_eq!(m.value(), 2);
    }

    #[test]
    fn merge_is_commutative() {
        let lca = PnCounter { incs: 1, decs: 1 };
        let a = PnCounter { incs: 4, decs: 1 };
        let b = PnCounter { incs: 1, decs: 3 };
        assert_eq!(
            PnCounter::merge(&lca, &a, &b),
            PnCounter::merge(&lca, &b, &a)
        );
    }

    #[test]
    fn concurrent_inc_dec_cancel_out() {
        let lca = PnCounter::initial();
        let (a, _) = lca.apply(&PnCounterOp::Increment, ts(1));
        let (b, _) = lca.apply(&PnCounterOp::Decrement, ts(2));
        assert_eq!(PnCounter::merge(&lca, &a, &b).value(), 0);
    }

    #[test]
    fn spec_is_difference_of_event_counts() {
        let i = AbstractOf::<PnCounter>::new()
            .perform(PnCounterOp::Increment, PnCounterValue::Ack, ts(1))
            .perform(PnCounterOp::Decrement, PnCounterValue::Ack, ts(2))
            .perform(PnCounterOp::Decrement, PnCounterValue::Ack, ts(3));
        assert_eq!(
            PnCounterSpec::spec(&PnCounterOp::Value, &i),
            PnCounterValue::Count(-1)
        );
    }

    #[test]
    fn simulation_requires_componentwise_match() {
        let i = AbstractOf::<PnCounter>::new()
            .perform(PnCounterOp::Increment, PnCounterValue::Ack, ts(1))
            .perform(PnCounterOp::Decrement, PnCounterValue::Ack, ts(2));
        assert!(PnCounterSim::holds(&i, &PnCounter { incs: 1, decs: 1 }));
        // Same difference, wrong components: the coarser relation would
        // wrongly accept this.
        assert!(!PnCounterSim::holds(&i, &PnCounter { incs: 2, decs: 2 }));
    }
}

//! Positive-negative counter MRDT (paper, Table 3).
//!
//! Tracks increments and decrements separately — the classic PN-counter
//! construction — so the three-way merge can add per-branch deltas without
//! conflating the two directions.

use peepul_core::{AbstractOf, Certified, Mrdt, SimulationRelation, Specification, Timestamp};

/// Operations of the PN counter.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PnCounterOp {
    /// Add one.
    Increment,
    /// Subtract one.
    Decrement,
}

/// Queries of the PN counter.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PnCounterQuery {
    /// Observe the current value (may be negative).
    Value,
}

/// PN-counter state: the totals of increments and decrements observed.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::pn_counter::{PnCounter, PnCounterOp};
///
/// let ts = |t| Timestamp::new(t, ReplicaId::new(0));
/// let lca = PnCounter::initial();
/// let (a, _) = lca.apply(&PnCounterOp::Increment, ts(1));
/// let (b, _) = lca.apply(&PnCounterOp::Decrement, ts(2));
/// let m = PnCounter::merge(&lca, &a, &b);
/// assert_eq!(m.value(), 0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct PnCounter {
    incs: u64,
    decs: u64,
}

impl PnCounter {
    /// The current value: increments minus decrements.
    pub fn value(self) -> i64 {
        self.incs as i64 - self.decs as i64
    }

    /// Total increments observed.
    pub fn increments(self) -> u64 {
        self.incs
    }

    /// Total decrements observed.
    pub fn decrements(self) -> u64 {
        self.decs
    }
}

impl Mrdt for PnCounter {
    type Op = PnCounterOp;
    type Value = ();
    type Query = PnCounterQuery;
    type Output = i64;

    fn initial() -> Self {
        PnCounter::default()
    }

    fn apply(&self, op: &PnCounterOp, _t: Timestamp) -> (Self, ()) {
        match op {
            PnCounterOp::Increment => (
                PnCounter {
                    incs: self.incs + 1,
                    ..*self
                },
                (),
            ),
            PnCounterOp::Decrement => (
                PnCounter {
                    decs: self.decs + 1,
                    ..*self
                },
                (),
            ),
        }
    }

    fn query(&self, q: &PnCounterQuery) -> i64 {
        match q {
            PnCounterQuery::Value => self.value(),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        PnCounter {
            incs: a.incs + b.incs - lca.incs,
            decs: a.decs + b.decs - lca.decs,
        }
    }
}

/// Specification `F_pnctr`: a value query returns visible increments minus
/// visible decrements.
#[derive(Debug)]
pub struct PnCounterSpec;

impl Specification<PnCounter> for PnCounterSpec {
    fn spec(_op: &PnCounterOp, _state: &AbstractOf<PnCounter>) {}

    fn query(q: &PnCounterQuery, state: &AbstractOf<PnCounter>) -> i64 {
        match q {
            PnCounterQuery::Value => {
                let incs = state
                    .events()
                    .filter(|e| matches!(e.op(), PnCounterOp::Increment))
                    .count() as i64;
                let decs = state
                    .events()
                    .filter(|e| matches!(e.op(), PnCounterOp::Decrement))
                    .count() as i64;
                incs - decs
            }
        }
    }
}

/// Simulation relation: both components match the corresponding event
/// counts (strictly stronger than relating only the difference — relating
/// only `value()` would not be preserved by merge).
#[derive(Debug)]
pub struct PnCounterSim;

impl SimulationRelation<PnCounter> for PnCounterSim {
    fn holds(abs: &AbstractOf<PnCounter>, conc: &PnCounter) -> bool {
        let incs = abs
            .events()
            .filter(|e| matches!(e.op(), PnCounterOp::Increment))
            .count() as u64;
        let decs = abs
            .events()
            .filter(|e| matches!(e.op(), PnCounterOp::Decrement))
            .count() as u64;
        conc.incs == incs && conc.decs == decs
    }

    fn explain_failure(abs: &AbstractOf<PnCounter>, conc: &PnCounter) -> Option<String> {
        if Self::holds(abs, conc) {
            None
        } else {
            Some(format!(
                "concrete (incs={}, decs={}) does not match abstract event counts",
                conc.incs, conc.decs
            ))
        }
    }
}

impl Certified for PnCounter {
    type Spec = PnCounterSpec;
    type Sim = PnCounterSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(0))
    }

    #[test]
    fn value_can_go_negative() {
        let c = PnCounter::initial();
        let (c, _) = c.apply(&PnCounterOp::Decrement, ts(1));
        let (c, _) = c.apply(&PnCounterOp::Decrement, ts(2));
        let (c, _) = c.apply(&PnCounterOp::Increment, ts(3));
        assert_eq!(c.value(), -1);
        assert_eq!(c.query(&PnCounterQuery::Value), -1);
    }

    #[test]
    fn merge_adds_both_directions_independently() {
        let lca = PnCounter { incs: 5, decs: 2 };
        let a = PnCounter { incs: 8, decs: 2 }; // +3 incs
        let b = PnCounter { incs: 5, decs: 6 }; // +4 decs
        let m = PnCounter::merge(&lca, &a, &b);
        assert_eq!(m, PnCounter { incs: 8, decs: 6 });
        assert_eq!(m.value(), 2);
    }

    #[test]
    fn merge_is_commutative() {
        let lca = PnCounter { incs: 1, decs: 1 };
        let a = PnCounter { incs: 4, decs: 1 };
        let b = PnCounter { incs: 1, decs: 3 };
        assert_eq!(
            PnCounter::merge(&lca, &a, &b),
            PnCounter::merge(&lca, &b, &a)
        );
    }

    #[test]
    fn concurrent_inc_dec_cancel_out() {
        let lca = PnCounter::initial();
        let (a, _) = lca.apply(&PnCounterOp::Increment, ts(1));
        let (b, _) = lca.apply(&PnCounterOp::Decrement, ts(2));
        assert_eq!(PnCounter::merge(&lca, &a, &b).value(), 0);
    }

    #[test]
    fn query_spec_is_difference_of_event_counts() {
        let i = AbstractOf::<PnCounter>::new()
            .perform(PnCounterOp::Increment, (), ts(1))
            .perform(PnCounterOp::Decrement, (), ts(2))
            .perform(PnCounterOp::Decrement, (), ts(3));
        assert_eq!(PnCounterSpec::query(&PnCounterQuery::Value, &i), -1);
    }

    #[test]
    fn simulation_requires_componentwise_match() {
        let i = AbstractOf::<PnCounter>::new()
            .perform(PnCounterOp::Increment, (), ts(1))
            .perform(PnCounterOp::Decrement, (), ts(2));
        assert!(PnCounterSim::holds(&i, &PnCounter { incs: 1, decs: 1 }));
        // Same difference, wrong components: the coarser relation would
        // wrongly accept this.
        assert!(!PnCounterSim::holds(&i, &PnCounter { incs: 2, decs: 2 }));
    }
}

impl peepul_core::Wire for PnCounter {
    fn encode(&self, out: &mut Vec<u8>) {
        peepul_core::Wire::encode(&self.incs, out);
        peepul_core::Wire::encode(&self.decs, out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let incs = peepul_core::Wire::decode(input)?;
        let decs = peepul_core::Wire::decode(input)?;
        Some(PnCounter { incs, decs })
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use peepul_core::Wire;

    #[test]
    fn pn_counter_wire_roundtrip() {
        let c = PnCounter { incs: 7, decs: 3 };
        assert_eq!(PnCounter::from_wire(&c.to_wire()), Some(c));
    }
}

//! The Peepul library of certified mergeable replicated data types.
//!
//! Every data type in this crate is an MRDT in the sense of
//! [`peepul_core::Mrdt`] — a purely functional data structure equipped with
//! a three-way merge — and is *certified*: it carries its declarative
//! specification (`F_τ`, [`peepul_core::Specification`]) and its
//! replication-aware simulation relation (`R_sim`,
//! [`peepul_core::SimulationRelation`]), wired together through
//! [`peepul_core::Certified`] so that the `peepul-verify` harness can check
//! the proof obligations of the paper's Table 2 on every data type
//! uniformly.
//!
//! # The menagerie (paper §7.1, Table 3)
//!
//! | Type | Module | Notes |
//! |---|---|---|
//! | Increment-only counter | [`counter`] | |
//! | PN counter | [`pn_counter`] | increments and decrements |
//! | Enable-wins flag | [`ew_flag`] | token-set and space-efficient forms |
//! | LWW register | [`lww_register`] | last writer wins |
//! | Grow-only set | [`g_set`] | |
//! | Grow-only map (α-map) | [`map`] | nests any other MRDT, §5.3 |
//! | Mergeable log | [`log`] | reverse-chronological, §5.2 |
//! | OR-set | [`or_set`] | unoptimized, duplicates, §2.1.1 |
//! | OR-set-space | [`or_set_space`] | duplicate-free, §2.1.2 |
//! | OR-set-spacetime | [`or_set_spacetime`] | balanced-tree backed, §7.1 |
//! | Replicated queue | [`queue`] | tombstone-free two-list queue, §6 |
//! | IRC-style chat | [`chat`] | α-map ∘ mergeable log, §5.1 |
//!
//! The [`avl`] module provides the persistent height-balanced search tree
//! underlying the OR-set-spacetime variant.
//!
//! # Example
//!
//! ```
//! use peepul_core::{Mrdt, ReplicaId, Timestamp};
//! use peepul_types::or_set_space::{OrSetSpace, OrSetOp, OrSetOutput, OrSetQuery};
//!
//! let ts = |tick| Timestamp::new(tick, ReplicaId::new(0));
//!
//! // Two branches diverge from an empty set.
//! let lca: OrSetSpace<String> = OrSetSpace::initial();
//! let (a, _) = lca.apply(&OrSetOp::Add("apple".into()), ts(1));
//! let (b, _) = lca.apply(&OrSetOp::Add("beet".into()), ts(2));
//!
//! let merged = OrSetSpace::merge(&lca, &a, &b);
//! let v = merged.query(&OrSetQuery::Read);
//! assert_eq!(
//!     v,
//!     OrSetOutput::Elements(vec!["apple".to_owned(), "beet".to_owned()])
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod avl;
pub mod chat;
pub mod counter;
pub mod ew_flag;
pub mod g_set;
pub mod log;
pub mod lww_register;
pub mod map;
pub mod or_set;
pub mod or_set_space;
pub mod or_set_spacetime;
pub mod pn_counter;
pub mod queue;

pub use avl::AvlMap;
pub use chat::Chat;
pub use counter::Counter;
pub use ew_flag::{EwFlag, EwFlagSpace};
pub use g_set::GSet;
pub use log::MergeableLog;
pub use lww_register::LwwRegister;
pub use map::MrdtMap;
pub use or_set::OrSet;
pub use or_set_space::OrSetSpace;
pub use or_set_spacetime::OrSetSpacetime;
pub use pn_counter::PnCounter;
pub use queue::Queue;

/// Convenience alias: a grow-only map (the paper's G-map) is the α-map —
/// keys are never deleted; values merge through their own MRDT merge.
pub type GMap<V> = map::MrdtMap<V>;

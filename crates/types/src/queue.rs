//! Tombstone-free replicated functional queue MRDT (paper §6, Appendix B).
//!
//! Okasaki's two-list batched queue promoted to an MRDT:
//!
//! * `enqueue` pushes onto the rear list — `O(1)`;
//! * `dequeue` pops the front list, reversing the rear into the front when
//!   the front runs dry — amortized `O(1)` (each element is reversed at
//!   most once);
//! * `merge` is `O(n)`, tombstone-free, and follows Appendix B exactly:
//!   convert the three versions to lists, take the longest common
//!   contiguous subsequence (`intersection` — the elements dequeued on
//!   *neither* branch), find each branch's newly enqueued suffix
//!   (`diff_s`), and append the timestamp-merged suffixes (`union`) to the
//!   common part.
//!
//! Elements are tagged with their enqueue timestamp (making every entry
//! unique), and the data type deliberately offers **at-least-once** dequeue
//! semantics: concurrent dequeues on different branches may both consume
//! the same element, as in Amazon SQS or RabbitMQ. The queue axioms of
//! §6.2 (`AddRem`, `Empty`, `FIFO_1`, `FIFO_2`) are provided executably in
//! [`axioms`].

use peepul_core::{AbstractOf, Certified, Mrdt, SimulationRelation, Specification, Timestamp};
use std::fmt;

/// One queue entry: the enqueue timestamp (unique tag) and the value.
pub type Entry<T> = (Timestamp, T);

/// Update operations of the replicated queue. Note that `dequeue` is an
/// *update with a return value* — it both consumes the head and reports it
/// — which is why it stays in the op alphabet while the pure `peek` moved
/// to [`QueueQuery`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueueOp<T> {
    /// Push a value at the tail. Returns [`QueueValue::Ack`].
    Enqueue(T),
    /// Pop the head. Returns [`QueueValue::Dequeued`] (with `None` when the
    /// queue is observed empty — the paper's `EMPTY`).
    Dequeue,
}

/// Queries of the replicated queue.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum QueueQuery {
    /// Observe the head without removing it (`None` when empty).
    Peek,
}

/// Return values of the replicated queue's updates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueueValue<T> {
    /// The unit reply `⊥` of an enqueue.
    Ack,
    /// The dequeued entry, or `None` when the queue was empty.
    Dequeued(Option<Entry<T>>),
}

/// Replicated two-list queue state.
///
/// Both lists hold entries so that the next element out sits at the **end**
/// of `front` (so `Vec::pop` dequeues) and the most recent enqueue sits at
/// the end of `rear` (so `Vec::push` enqueues).
///
/// # Example
///
/// The worked three-way merge of the paper's Fig. 11:
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::queue::{Queue, QueueOp, QueueValue};
///
/// let ts = |t, r| Timestamp::new(t, ReplicaId::new(r));
/// let mut lca: Queue<u32> = Queue::initial();
/// for v in 1..=5 {
///     lca = lca.apply(&QueueOp::Enqueue(v), ts(v as u64, 0)).0;
/// }
/// // Branch A: dequeue ×2, enqueue 8, 9 (enqueue timestamps = values,
/// // exactly as the figure assumes).
/// let a = lca.apply(&QueueOp::Dequeue, ts(5, 1)).0;
/// let a = a.apply(&QueueOp::Dequeue, ts(6, 1)).0;
/// let a = a.apply(&QueueOp::Enqueue(8), ts(8, 1)).0;
/// let a = a.apply(&QueueOp::Enqueue(9), ts(9, 1)).0;
/// // Branch B: dequeue, enqueue 6, 7.
/// let b = lca.apply(&QueueOp::Dequeue, ts(5, 2)).0;
/// let b = b.apply(&QueueOp::Enqueue(6), ts(6, 2)).0;
/// let b = b.apply(&QueueOp::Enqueue(7), ts(7, 2)).0;
///
/// let m = Queue::merge(&lca, &a, &b);
/// let values: Vec<u32> = m.to_list().into_iter().map(|(_, v)| v).collect();
/// assert_eq!(values, [3, 4, 5, 6, 7, 8, 9]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Queue<T> {
    /// Next-out at the end (popped); timestamps *descend* along the vec.
    front: Vec<Entry<T>>,
    /// Most recent enqueue at the end (pushed); timestamps ascend.
    rear: Vec<Entry<T>>,
}

impl<T: Clone> Queue<T> {
    /// Number of elements currently in the queue.
    pub fn len(&self) -> usize {
        self.front.len() + self.rear.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty() && self.rear.is_empty()
    }

    /// The entry that the next `dequeue` would return, if any.
    pub fn head(&self) -> Option<&Entry<T>> {
        self.front.last().or_else(|| self.rear.first())
    }

    /// The whole queue in dequeue order (`tolist` of Appendix B);
    /// timestamps ascend strictly.
    pub fn to_list(&self) -> Vec<Entry<T>> {
        let mut out: Vec<Entry<T>> = self.front.iter().rev().cloned().collect();
        out.extend(self.rear.iter().cloned());
        out
    }

    /// Rebuilds a queue from a dequeue-ordered list (all entries land in
    /// the front list, the canonical post-merge shape).
    fn from_list(list: Vec<Entry<T>>) -> Self {
        Queue {
            front: list.into_iter().rev().collect(),
            rear: Vec::new(),
        }
    }
}

/// `intersection` of Appendix B: the entries of `l` that survive (were
/// dequeued) on *neither* branch. All three lists are timestamp-ascending;
/// the surviving `l`-entries form a suffix of `l` and a prefix of each
/// branch, so one linear walk suffices.
fn intersection<T: Clone>(l: &[Entry<T>], a: &[Entry<T>], b: &[Entry<T>]) -> Vec<Entry<T>> {
    let mut out = Vec::new();
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < l.len() && j < a.len() && k < b.len() {
        if l[i].0 < a[j].0 || l[i].0 < b[k].0 {
            // l[i] was dequeued on at least one branch: drop it.
            i += 1;
        } else {
            out.push(l[i].clone());
            i += 1;
            j += 1;
            k += 1;
        }
    }
    out
}

/// `diff_s` of Appendix B: the suffix of branch list `a` that was enqueued
/// since the ancestor `l` (every fresh entry's timestamp exceeds all of
/// `l`'s, so the suffix is exactly the fresh part).
fn diff_s<T: Clone>(a: &[Entry<T>], l: &[Entry<T>]) -> Vec<Entry<T>> {
    let (mut j, mut i) = (0, 0);
    while j < a.len() && i < l.len() {
        if l[i].0 < a[j].0 {
            i += 1; // l[i] was dequeued in a
        } else {
            i += 1;
            j += 1; // shared entry
        }
    }
    a[j..].to_vec()
}

/// `union` of Appendix B: merges two timestamp-ascending lists of fresh
/// entries into one, by timestamp.
fn union<T: Clone>(x: &[Entry<T>], y: &[Entry<T>]) -> Vec<Entry<T>> {
    let mut out = Vec::with_capacity(x.len() + y.len());
    let (mut i, mut j) = (0, 0);
    while i < x.len() && j < y.len() {
        if x[i].0 < y[j].0 {
            out.push(x[i].clone());
            i += 1;
        } else if y[j].0 < x[i].0 {
            out.push(y[j].clone());
            j += 1;
        } else {
            // Same timestamp on both sides: the same entry arrived through
            // two paths (criss-cross history); keep one copy.
            out.push(x[i].clone());
            i += 1;
            j += 1;
        }
    }
    out.extend_from_slice(&x[i..]);
    out.extend_from_slice(&y[j..]);
    out
}

impl<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug> Mrdt for Queue<T> {
    type Op = QueueOp<T>;
    type Value = QueueValue<T>;
    type Query = QueueQuery;
    type Output = Option<Entry<T>>;

    fn initial() -> Self {
        Queue {
            front: Vec::new(),
            rear: Vec::new(),
        }
    }

    fn apply(&self, op: &QueueOp<T>, t: Timestamp) -> (Self, QueueValue<T>) {
        match op {
            QueueOp::Enqueue(v) => {
                let mut next = self.clone();
                next.rear.push((t, v.clone()));
                (next, QueueValue::Ack)
            }
            QueueOp::Dequeue => {
                let mut next = self.clone();
                if next.front.is_empty() {
                    // norm: reverse the rear into the front.
                    next.front = std::mem::take(&mut next.rear);
                    next.front.reverse();
                }
                let popped = next.front.pop();
                (next, QueueValue::Dequeued(popped))
            }
        }
    }

    fn query(&self, q: &QueueQuery) -> Option<Entry<T>> {
        match q {
            QueueQuery::Peek => self.head().cloned(),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        // Dequeue-wins merge on timestamp-keyed entry sets:
        //
        //   keep e  ⟺  (e ∈ a ∧ e ∈ b)  ∨  e ∉ lca
        //
        // i.e. an ancestor entry survives only if neither branch dequeued
        // it, and entries new on either branch survive; the result is laid
        // out in timestamp order. This computes the same result as the
        // paper's Appendix-B `intersection`/`diff_s`/`union` pipeline
        // ([`Queue::merge_appendix_b`]) whenever that pipeline's
        // assumption holds (every fresh entry is newer than all of the
        // LCA — the paper's strong Ψ_lca), and stays correct on the
        // asymmetric repeated-merge histories where the assumption fails;
        // see the module docs. O(n log n) over the longest version.
        use std::collections::BTreeSet;
        let l = lca.to_list();
        let la = a.to_list();
        let lb = b.to_list();
        let in_l: BTreeSet<Timestamp> = l.iter().map(|(t, _)| *t).collect();
        let in_a: BTreeSet<Timestamp> = la.iter().map(|(t, _)| *t).collect();
        let in_b: BTreeSet<Timestamp> = lb.iter().map(|(t, _)| *t).collect();
        let merged = union(&la, &lb)
            .into_iter()
            .filter(|(t, _)| !in_l.contains(t) || (in_a.contains(t) && in_b.contains(t)))
            .collect();
        Queue::from_list(merged)
    }

    fn observably_equal(&self, other: &Self) -> bool {
        // The front/rear split is internal; only the dequeue order is
        // observable.
        self.to_list() == other.to_list()
    }
}

impl<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug> Queue<T> {
    /// The paper's Appendix-B three-way merge, verbatim: longest common
    /// contiguous subsequence (`intersection`), newly enqueued suffixes
    /// (`diff_s`), timestamp-merged (`union`).
    ///
    /// This transliteration is correct exactly when every entry that is
    /// fresh relative to the LCA carries a timestamp greater than all LCA
    /// entries — the situation the paper's strong Ψ_lca store property
    /// describes, and what holds for branch pairs that diverged once.
    /// Under asymmetric repeated merges (`merge a←b` followed later by
    /// `merge b←a`) a branch can hold an old local entry that is *fresh*
    /// relative to the new LCA yet older than LCA entries, and this
    /// algorithm then drops it and duplicates an LCA entry. The
    /// certification harness found that divergence; [`Mrdt::merge`] on
    /// [`Queue`] uses the general set-semantics merge instead, and the
    /// test suite checks the two agree on the paper's envelope.
    #[must_use]
    pub fn merge_appendix_b(lca: &Self, a: &Self, b: &Self) -> Self {
        let l = lca.to_list();
        let la = a.to_list();
        let lb = b.to_list();
        let ixn = intersection(&l, &la, &lb);
        let fresh = union(&diff_s(&la, &l), &diff_s(&lb, &l));
        let mut merged = ixn;
        merged.extend(fresh);
        Queue::from_list(merged)
    }
}

impl<T: fmt::Debug> fmt::Debug for Queue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Queue(front≤{:?}, rear≥{:?})", self.front, self.rear)
    }
}

/// The *live* enqueues of an abstract queue execution: enqueue events not
/// matched (by enqueue-timestamp tag) by any visible dequeue's return
/// value. Sorted ascending by timestamp — the FIFO order, since visibility
/// refines timestamp order (Ψ_ts).
pub fn live_enqueues<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug>(
    abs: &AbstractOf<Queue<T>>,
) -> Vec<Entry<T>> {
    let mut live: Vec<Entry<T>> = abs
        .events()
        .filter_map(|e| match e.op() {
            QueueOp::Enqueue(v) => Some((e.time(), v.clone())),
            _ => None,
        })
        .filter(|(t, _)| {
            !abs.events()
                .any(|d| matches!(d.rval(), QueueValue::Dequeued(Some((dt, _))) if dt == t))
        })
        .collect();
    live.sort_by_key(|(t, _)| *t);
    live
}

/// Specification `F_queue` (§6.2): a dequeue returns the **oldest live**
/// enqueue (`None` when there is none); enqueue returns `⊥`. This is the
/// operational reading of the declarative queue axioms — adding the new
/// dequeue event with this return value keeps `AddRem`, `Empty`, `FIFO_1`
/// and `FIFO_2` satisfiable (see [`axioms`]).
#[derive(Debug)]
pub struct QueueSpec;

impl<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug> Specification<Queue<T>> for QueueSpec {
    fn spec(op: &QueueOp<T>, state: &AbstractOf<Queue<T>>) -> QueueValue<T> {
        match op {
            QueueOp::Enqueue(_) => QueueValue::Ack,
            QueueOp::Dequeue => QueueValue::Dequeued(live_enqueues(state).first().cloned()),
        }
    }

    fn query(q: &QueueQuery, state: &AbstractOf<Queue<T>>) -> Option<Entry<T>> {
        match q {
            QueueQuery::Peek => live_enqueues(state).first().cloned(),
        }
    }
}

/// Simulation relation for the replicated queue (Appendix B.1): the
/// concrete queue, read in dequeue order, is exactly the live enqueues in
/// timestamp order. Membership is the relation's first conjunct; ordering
/// (visibility order, refined to timestamp order under Ψ_ts) the second.
#[derive(Debug)]
pub struct QueueSim;

impl<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug> SimulationRelation<Queue<T>>
    for QueueSim
{
    fn holds(abs: &AbstractOf<Queue<T>>, conc: &Queue<T>) -> bool {
        conc.to_list() == live_enqueues(abs)
    }

    fn explain_failure(abs: &AbstractOf<Queue<T>>, conc: &Queue<T>) -> Option<String> {
        let live = live_enqueues(abs);
        let got = conc.to_list();
        (got != live).then(|| format!("queue {got:?} but live enqueues {live:?}"))
    }
}

impl<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug> Certified for Queue<T> {
    type Spec = QueueSpec;
    type Sim = QueueSim;
}

/// Executable forms of the declarative queue axioms of §6.2.
///
/// These quantify over the events of an abstract execution and hold of
/// every execution our store semantics can produce; the verification
/// harness asserts them on final abstract states as an extra,
/// implementation-independent sanity layer.
pub mod axioms {
    use super::*;
    use peepul_core::EventId;

    /// `match_I(e1, e2)`: `e1` is an enqueue whose tagged entry the dequeue
    /// `e2` returned.
    pub fn matches<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug>(
        abs: &AbstractOf<Queue<T>>,
        e1: EventId,
        e2: EventId,
    ) -> bool {
        let (Some(enq), Some(deq)) = (abs.event(e1), abs.event(e2)) else {
            return false;
        };
        matches!(enq.op(), QueueOp::Enqueue(_))
            && matches!(deq.rval(), QueueValue::Dequeued(Some((t, _))) if *t == e1)
    }

    fn dequeues<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug>(
        abs: &AbstractOf<Queue<T>>,
    ) -> Vec<EventId> {
        abs.events()
            .filter(|e| matches!(e.op(), QueueOp::Dequeue))
            .map(|e| e.id())
            .collect()
    }

    fn enqueues<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug>(
        abs: &AbstractOf<Queue<T>>,
    ) -> Vec<EventId> {
        abs.events()
            .filter(|e| matches!(e.op(), QueueOp::Enqueue(_)))
            .map(|e| e.id())
            .collect()
    }

    /// `AddRem`: every dequeue that returns an entry has a matching
    /// enqueue that it observed.
    pub fn add_rem<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug>(
        abs: &AbstractOf<Queue<T>>,
    ) -> bool {
        dequeues(abs).into_iter().all(|d| {
            match abs.event(d).expect("dequeue id came from abs").rval() {
                QueueValue::Dequeued(Some((t, _))) => enqueues(abs).contains(t) && abs.vis(*t, d),
                _ => true,
            }
        })
    }

    /// `Empty`: a dequeue that returned `EMPTY` has no *unmatched* enqueue
    /// visible to it — every enqueue it saw was already consumed by a
    /// dequeue it also saw.
    pub fn empty<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug>(
        abs: &AbstractOf<Queue<T>>,
    ) -> bool {
        dequeues(abs).into_iter().all(|d1| {
            let returned_empty = matches!(
                abs.event(d1).expect("dequeue id came from abs").rval(),
                QueueValue::Dequeued(None)
            );
            if !returned_empty {
                return true;
            }
            enqueues(abs)
                .into_iter()
                .filter(|e| abs.vis(*e, d1))
                .all(|e| {
                    dequeues(abs)
                        .into_iter()
                        .any(|d3| matches(abs, e, d3) && abs.vis(d3, d1))
                })
        })
    }

    /// `FIFO_1`: if an enqueue `e1` precedes (is visible to) an enqueue
    /// `e2` whose entry has been dequeued somewhere, then `e1`'s entry has
    /// been dequeued somewhere too.
    pub fn fifo1<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug>(
        abs: &AbstractOf<Queue<T>>,
    ) -> bool {
        let enqs = enqueues(abs);
        let deqs = dequeues(abs);
        enqs.iter().all(|&e1| {
            enqs.iter().all(|&e2| {
                if e1 == e2 || !abs.vis(e1, e2) {
                    return true;
                }
                let e2_matched = deqs.iter().any(|&d| matches(abs, e2, d));
                if !e2_matched {
                    return true;
                }
                deqs.iter().any(|&d| matches(abs, e1, d))
            })
        })
    }

    /// `FIFO_2`: no out-of-order consumption — it never happens that a
    /// later dequeue (`d4`, after `d3`) returns an *earlier* enqueue (`e1`,
    /// before `e2`) while `d3` returned `e2`.
    pub fn fifo2<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug>(
        abs: &AbstractOf<Queue<T>>,
    ) -> bool {
        let enqs = enqueues(abs);
        let deqs = dequeues(abs);
        for &e1 in &enqs {
            for &e2 in &enqs {
                if !abs.vis(e1, e2) {
                    continue;
                }
                for &d3 in &deqs {
                    if !matches(abs, e2, d3) {
                        continue;
                    }
                    for &d4 in &deqs {
                        if abs.vis(d3, d4) && matches(abs, e1, d4) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// All four axioms at once.
    pub fn all<T: Clone + PartialEq + peepul_core::Wire + fmt::Debug>(
        abs: &AbstractOf<Queue<T>>,
    ) -> bool {
        add_rem(abs) && empty(abs) && fifo1(abs) && fifo2(abs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64, r: u32) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(r))
    }

    fn enq(q: &Queue<u32>, v: u32, t: Timestamp) -> Queue<u32> {
        q.apply(&QueueOp::Enqueue(v), t).0
    }

    fn deq(q: &Queue<u32>, t: Timestamp) -> (Queue<u32>, Option<Entry<u32>>) {
        match q.apply(&QueueOp::Dequeue, t) {
            (q, QueueValue::Dequeued(e)) => (q, e),
            _ => unreachable!("dequeue returns Dequeued"),
        }
    }

    #[test]
    fn fifo_order_locally() {
        let mut q: Queue<u32> = Queue::initial();
        for v in 1..=3 {
            q = enq(&q, v, ts(v as u64, 0));
        }
        let (q, e1) = deq(&q, ts(10, 0));
        let (q, e2) = deq(&q, ts(11, 0));
        let (q, e3) = deq(&q, ts(12, 0));
        let (_, e4) = deq(&q, ts(13, 0));
        assert_eq!(e1.map(|e| e.1), Some(1));
        assert_eq!(e2.map(|e| e.1), Some(2));
        assert_eq!(e3.map(|e| e.1), Some(3));
        assert_eq!(e4, None);
    }

    #[test]
    fn peek_does_not_consume() {
        let q = enq(&Queue::initial(), 7, ts(1, 0));
        assert_eq!(q.query(&QueueQuery::Peek), Some((ts(1, 0), 7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn figure_11_three_way_merge() {
        let mut lca: Queue<u32> = Queue::initial();
        for v in 1..=5 {
            lca = enq(&lca, v, ts(v as u64, 0));
        }
        // As in the paper's figure, enqueue timestamps equal the enqueued
        // values (dequeues take intermediate ticks; replica ids keep all
        // timestamps unique).
        let (a, d1) = deq(&lca, ts(5, 1));
        let (a, d2) = deq(&a, ts(6, 1));
        let a = enq(&a, 8, ts(8, 1));
        let a = enq(&a, 9, ts(9, 1));
        assert_eq!(d1.map(|e| e.1), Some(1));
        assert_eq!(d2.map(|e| e.1), Some(2));

        let (b, d3) = deq(&lca, ts(5, 2));
        let b = enq(&b, 6, ts(6, 2));
        let b = enq(&b, 7, ts(7, 2));
        assert_eq!(d3.map(|e| e.1), Some(1)); // 1 dequeued on BOTH branches

        let m = Queue::merge(&lca, &a, &b);
        let values: Vec<u32> = m.to_list().into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, [3, 4, 5, 6, 7, 8, 9]);

        // Merge must be commutative.
        let m2 = Queue::merge(&lca, &b, &a);
        assert!(m.observably_equal(&m2));
    }

    #[test]
    fn merge_with_unchanged_branch_keeps_changes() {
        let mut lca: Queue<u32> = Queue::initial();
        for v in 1..=3 {
            lca = enq(&lca, v, ts(v as u64, 0));
        }
        let (a, _) = deq(&lca, ts(5, 1));
        let a = enq(&a, 4, ts(6, 1));
        let m = Queue::merge(&lca, &a, &lca);
        assert!(m.observably_equal(&a));
    }

    #[test]
    fn concurrent_enqueues_order_by_timestamp() {
        let lca: Queue<u32> = Queue::initial();
        let a = enq(&lca, 10, ts(2, 1));
        let b = enq(&lca, 20, ts(1, 2));
        let m = Queue::merge(&lca, &a, &b);
        let values: Vec<u32> = m.to_list().into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, [20, 10]);
    }

    #[test]
    fn element_dequeued_on_either_branch_is_gone() {
        let mut lca: Queue<u32> = Queue::initial();
        for v in 1..=2 {
            lca = enq(&lca, v, ts(v as u64, 0));
        }
        let (a, _) = deq(&lca, ts(5, 1)); // a consumed 1
        let b = lca.clone(); // b untouched
        let m = Queue::merge(&lca, &a, &b);
        let values: Vec<u32> = m.to_list().into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, [2]);
    }

    #[test]
    fn at_least_once_concurrent_dequeues_consume_same_element() {
        let lca = enq(&Queue::initial(), 1, ts(1, 0));
        let (a, ea) = deq(&lca, ts(2, 1));
        let (b, eb) = deq(&lca, ts(3, 2));
        // Both branches dequeued the same entry: at-least-once delivery.
        assert_eq!(ea, eb);
        let m = Queue::merge(&lca, &a, &b);
        assert!(m.is_empty());
    }

    #[test]
    fn dequeue_on_empty_returns_none_and_keeps_state() {
        let q: Queue<u32> = Queue::initial();
        let (q2, e) = deq(&q, ts(1, 0));
        assert_eq!(e, None);
        assert!(q2.is_empty());
    }

    #[test]
    fn norm_moves_rear_to_front_once() {
        let mut q: Queue<u32> = Queue::initial();
        for v in 1..=4 {
            q = enq(&q, v, ts(v as u64, 0));
        }
        let (q, _) = deq(&q, ts(10, 0)); // triggers norm
        assert_eq!(q.front.len(), 3);
        assert!(q.rear.is_empty());
    }

    #[test]
    fn to_list_is_timestamp_ascending_after_any_mix() {
        let mut q: Queue<u32> = Queue::initial();
        let mut tick = 0;
        for round in 0..5 {
            for v in 0..4 {
                tick += 1;
                q = enq(&q, v + round * 10, ts(tick, 0));
            }
            tick += 1;
            q = deq(&q, ts(tick, 0)).0;
        }
        let times: Vec<Timestamp> = q.to_list().iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn appendix_b_merge_agrees_on_single_divergence() {
        // On once-diverged branch pairs (the paper's Ψ_lca envelope) the
        // Appendix-B pipeline and the general set-semantics merge agree.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let mut tick = 0u64;
            let mut next = |r: u32| {
                tick += 1;
                ts(tick, r)
            };
            let mut lca: Queue<u32> = Queue::initial();
            for v in 0..rng.gen_range(0..15u32) {
                lca = enq(&lca, v, next(0));
            }
            let mut sides = Vec::new();
            for r in 1..=2u32 {
                let mut q = lca.clone();
                for i in 0..rng.gen_range(0..12u32) {
                    let t = next(r);
                    if rng.gen_bool(0.4) {
                        q = deq(&q, t).0;
                    } else {
                        q = enq(&q, 100 * r + i, t);
                    }
                }
                sides.push(q);
            }
            let general = Queue::merge(&lca, &sides[0], &sides[1]);
            let appendix = Queue::merge_appendix_b(&lca, &sides[0], &sides[1]);
            assert_eq!(general.to_list(), appendix.to_list());
        }
    }

    #[test]
    fn appendix_b_merge_diverges_outside_its_envelope() {
        // The counterexample the certification harness found: b0 enqueues
        // x@1; b1 enqueues y@2; b0 pulls b1; then b1 pulls b0. The LCA of
        // the second merge is b1's head [y], and x — fresh relative to
        // that LCA — is *older* than y, violating the Appendix-B
        // assumption. The general merge keeps both entries; the Appendix-B
        // pipeline drops x and duplicates y.
        let lca: Queue<u32> = Queue::initial();
        let b0 = enq(&lca, 10, ts(1, 0));
        let b1 = enq(&lca, 20, ts(2, 1));
        // b0 pulls b1, becoming [10, 20].
        let b0 = Queue::merge(&lca, &b0, &b1);
        // Second merge: merge b1 ← b0 with LCA = b1's head.
        let general = Queue::merge(&b1, &b1, &b0);
        assert_eq!(
            general
                .to_list()
                .into_iter()
                .map(|(_, v)| v)
                .collect::<Vec<_>>(),
            vec![10, 20]
        );
        let appendix = Queue::merge_appendix_b(&b1, &b1, &b0);
        assert_ne!(
            appendix.to_list(),
            general.to_list(),
            "Appendix B mis-merges outside its envelope (drops 10, duplicates 20)"
        );
    }

    #[test]
    fn spec_dequeue_returns_oldest_live() {
        let i = AbstractOf::<Queue<u32>>::new()
            .perform(QueueOp::Enqueue(1), QueueValue::Ack, ts(1, 0))
            .perform(QueueOp::Enqueue(2), QueueValue::Ack, ts(2, 0));
        assert_eq!(
            QueueSpec::spec(&QueueOp::Dequeue, &i),
            QueueValue::Dequeued(Some((ts(1, 0), 1)))
        );
        // After a dequeue consumed entry 1, entry 2 is the oldest live.
        let i = i.perform(
            QueueOp::Dequeue,
            QueueValue::Dequeued(Some((ts(1, 0), 1))),
            ts(3, 0),
        );
        assert_eq!(
            QueueSpec::spec(&QueueOp::Dequeue, &i),
            QueueValue::Dequeued(Some((ts(2, 0), 2)))
        );
    }

    #[test]
    fn simulation_relates_list_to_live_enqueues() {
        let i = AbstractOf::<Queue<u32>>::new()
            .perform(QueueOp::Enqueue(1), QueueValue::Ack, ts(1, 0))
            .perform(QueueOp::Enqueue(2), QueueValue::Ack, ts(2, 0))
            .perform(
                QueueOp::Dequeue,
                QueueValue::Dequeued(Some((ts(1, 0), 1))),
                ts(3, 0),
            );
        let mut good: Queue<u32> = Queue::initial();
        good = enq(&good, 1, ts(1, 0));
        good = enq(&good, 2, ts(2, 0));
        let (good, _) = deq(&good, ts(3, 0));
        assert!(QueueSim::holds(&i, &good));
        let stale = enq(&enq(&Queue::initial(), 1, ts(1, 0)), 2, ts(2, 0));
        assert!(!QueueSim::holds(&i, &stale));
        assert!(QueueSim::explain_failure(&i, &stale).is_some());
    }

    #[test]
    fn axioms_hold_on_well_formed_executions() {
        // lca: enq 1, enq 2; branch a dequeues 1; branch b dequeues 1 too
        // (at-least-once), then they merge and a dequeues 2.
        let i0 = AbstractOf::<Queue<u32>>::new()
            .perform(QueueOp::Enqueue(1), QueueValue::Ack, ts(1, 0))
            .perform(QueueOp::Enqueue(2), QueueValue::Ack, ts(2, 0));
        let ia = i0.perform(
            QueueOp::Dequeue,
            QueueValue::Dequeued(Some((ts(1, 0), 1))),
            ts(3, 1),
        );
        let ib = i0.perform(
            QueueOp::Dequeue,
            QueueValue::Dequeued(Some((ts(1, 0), 1))),
            ts(4, 2),
        );
        let im = ia.merged(&ib).perform(
            QueueOp::Dequeue,
            QueueValue::Dequeued(Some((ts(2, 0), 2))),
            ts(5, 1),
        );
        assert!(axioms::add_rem(&im));
        assert!(axioms::empty(&im));
        assert!(axioms::fifo1(&im));
        assert!(axioms::fifo2(&im));
        assert!(axioms::all(&im));
    }

    #[test]
    fn fifo2_rejects_out_of_order_consumption() {
        // Fabricate an ill-formed execution: d3 takes entry 2 while entry 1
        // (enqueued before, visible) is untaken, then d4 (after d3) takes 1.
        let i = AbstractOf::<Queue<u32>>::new()
            .perform(QueueOp::Enqueue(1), QueueValue::Ack, ts(1, 0))
            .perform(QueueOp::Enqueue(2), QueueValue::Ack, ts(2, 0))
            .perform(
                QueueOp::Dequeue,
                QueueValue::Dequeued(Some((ts(2, 0), 2))),
                ts(3, 0),
            )
            .perform(
                QueueOp::Dequeue,
                QueueValue::Dequeued(Some((ts(1, 0), 1))),
                ts(4, 0),
            );
        assert!(!axioms::fifo2(&i));
    }

    #[test]
    fn empty_axiom_rejects_wrong_empty_answer() {
        // A dequeue that returns EMPTY while an unconsumed enqueue is
        // visible violates Empty.
        let i = AbstractOf::<Queue<u32>>::new()
            .perform(QueueOp::Enqueue(1), QueueValue::Ack, ts(1, 0))
            .perform(QueueOp::Dequeue, QueueValue::Dequeued(None), ts(2, 0));
        assert!(!axioms::empty(&i));
    }
}

impl<T: peepul_core::Wire> peepul_core::Wire for Queue<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.front.encode(out);
        self.rear.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let front: Vec<Entry<T>> = peepul_core::Wire::decode(input)?;
        let rear: Vec<Entry<T>> = peepul_core::Wire::decode(input)?;
        // Enforce the representation invariants a well-formed queue always
        // has: timestamps strictly descend along `front` (next-out at the
        // end) and strictly ascend along `rear`.
        let front_ok = front.windows(2).all(|w| w[0].0 > w[1].0);
        let rear_ok = rear.windows(2).all(|w| w[0].0 < w[1].0);
        (front_ok && rear_ok).then_some(Queue { front, rear })
    }

    fn max_tick(&self) -> u64 {
        self.front.max_tick().max(self.rear.max_tick())
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use peepul_core::{ReplicaId, Wire};

    #[test]
    fn queue_wire_roundtrip_and_invariant_check() {
        let ts = |t| Timestamp::new(t, ReplicaId::new(0));
        let mut q: Queue<u32> = Queue::initial();
        for v in 1..=5u32 {
            q = q.apply(&QueueOp::Enqueue(v), ts(v as u64)).0;
        }
        q = q.apply(&QueueOp::Dequeue, ts(6)).0;
        assert_eq!(Queue::from_wire(&q.to_wire()), Some(q.clone()));
        assert_eq!(q.max_tick(), 5);
        let bad = Queue {
            front: vec![(ts(1), 1u32), (ts(2), 2)],
            rear: Vec::new(),
        };
        assert_eq!(Queue::<u32>::from_wire(&bad.to_wire()), None);
    }
}

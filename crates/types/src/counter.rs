//! Increment-only counter MRDT (paper, Table 3).
//!
//! The simplest certified data type: local increments, and a three-way
//! merge that adds the increments accumulated on both branches since the
//! lowest common ancestor.

use peepul_core::{AbstractOf, Certified, Mrdt, SimulationRelation, Specification, Timestamp};

/// Update operations of the increment-only counter.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CounterOp {
    /// Add one to the counter.
    Increment,
}

/// Queries of the increment-only counter.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CounterQuery {
    /// Observe the current count.
    Value,
}

/// Increment-only counter state.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::counter::{Counter, CounterOp, CounterQuery};
///
/// let ts = |t| Timestamp::new(t, ReplicaId::new(0));
/// let lca = Counter::initial();
/// let (a, _) = lca.apply(&CounterOp::Increment, ts(1));
/// let (b, _) = lca.apply(&CounterOp::Increment, ts(2));
/// let m = Counter::merge(&lca, &a, &b);
/// assert_eq!(m.query(&CounterQuery::Value), 2);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct Counter(u64);

impl Counter {
    /// The current count.
    pub fn count(self) -> u64 {
        self.0
    }
}

impl Mrdt for Counter {
    type Op = CounterOp;
    type Value = ();
    type Query = CounterQuery;
    type Output = u64;

    fn initial() -> Self {
        Counter(0)
    }

    fn apply(&self, op: &CounterOp, _t: Timestamp) -> (Self, ()) {
        match op {
            CounterOp::Increment => (Counter(self.0 + 1), ()),
        }
    }

    fn query(&self, q: &CounterQuery) -> u64 {
        match q {
            CounterQuery::Value => self.0,
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        // Each branch's count is lca.0 plus its local increments; summing
        // the two deltas on top of the ancestor merges without loss.
        Counter(a.0 + b.0 - lca.0)
    }
}

/// Specification `F_ctr`: a value query returns the number of visible
/// increments.
#[derive(Debug)]
pub struct CounterSpec;

impl Specification<Counter> for CounterSpec {
    fn spec(_op: &CounterOp, _state: &AbstractOf<Counter>) {}

    fn query(q: &CounterQuery, state: &AbstractOf<Counter>) -> u64 {
        match q {
            CounterQuery::Value => state
                .events()
                .filter(|e| matches!(e.op(), CounterOp::Increment))
                .count() as u64,
        }
    }
}

/// Simulation relation: the concrete count equals the number of increment
/// events in the abstract execution.
#[derive(Debug)]
pub struct CounterSim;

impl SimulationRelation<Counter> for CounterSim {
    fn holds(abs: &AbstractOf<Counter>, conc: &Counter) -> bool {
        let incs = abs
            .events()
            .filter(|e| matches!(e.op(), CounterOp::Increment))
            .count() as u64;
        conc.0 == incs
    }

    fn explain_failure(abs: &AbstractOf<Counter>, conc: &Counter) -> Option<String> {
        let incs = abs
            .events()
            .filter(|e| matches!(e.op(), CounterOp::Increment))
            .count() as u64;
        (conc.0 != incs).then(|| format!("concrete count {} but {} increment events", conc.0, incs))
    }
}

impl Certified for Counter {
    type Spec = CounterSpec;
    type Sim = CounterSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(0))
    }

    #[test]
    fn initial_counts_zero() {
        assert_eq!(Counter::initial().query(&CounterQuery::Value), 0);
    }

    #[test]
    fn increments_accumulate() {
        let mut c = Counter::initial();
        for i in 0..5 {
            let (next, ()) = c.apply(&CounterOp::Increment, ts(i + 1));
            c = next;
        }
        assert_eq!(c.count(), 5);
        assert_eq!(c.query(&CounterQuery::Value), 5);
    }

    #[test]
    fn merge_sums_divergent_increments() {
        let lca = Counter(10);
        let a = Counter(13); // +3 since lca
        let b = Counter(11); // +1 since lca
        assert_eq!(Counter::merge(&lca, &a, &b).count(), 14);
    }

    #[test]
    fn merge_with_unchanged_branch_is_identity() {
        let lca = Counter(4);
        let a = Counter(9);
        assert_eq!(Counter::merge(&lca, &a, &lca), a);
        assert_eq!(Counter::merge(&lca, &lca, &a), a);
    }

    #[test]
    fn merge_is_commutative() {
        let lca = Counter(2);
        let a = Counter(7);
        let b = Counter(3);
        assert_eq!(Counter::merge(&lca, &a, &b), Counter::merge(&lca, &b, &a));
    }

    #[test]
    fn query_spec_counts_visible_increments() {
        let i = AbstractOf::<Counter>::new()
            .perform(CounterOp::Increment, (), ts(1))
            .perform(CounterOp::Increment, (), ts(2));
        assert_eq!(CounterSpec::query(&CounterQuery::Value, &i), 2);
    }

    #[test]
    fn simulation_relates_count_to_events() {
        let i = AbstractOf::<Counter>::new()
            .perform(CounterOp::Increment, (), ts(1))
            .perform(CounterOp::Increment, (), ts(2));
        assert!(CounterSim::holds(&i, &Counter(2)));
        assert!(!CounterSim::holds(&i, &Counter(1)));
        assert!(CounterSim::explain_failure(&i, &Counter(1)).is_some());
        assert!(CounterSim::explain_failure(&i, &Counter(2)).is_none());
    }
}

impl peepul_core::Wire for Counter {
    fn encode(&self, out: &mut Vec<u8>) {
        peepul_core::Wire::encode(&self.0, out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Counter(peepul_core::Wire::decode(input)?))
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use peepul_core::Wire;

    #[test]
    fn counter_wire_roundtrip() {
        let c = Counter(42);
        assert_eq!(Counter::from_wire(&c.to_wire()), Some(c));
        assert_eq!(c.max_tick(), 0);
    }
}

//! Increment-only counter MRDT (paper, Table 3).
//!
//! The simplest certified data type: local increments, and a three-way
//! merge that adds the increments accumulated on both branches since the
//! lowest common ancestor.

use peepul_core::{AbstractOf, Certified, Mrdt, SimulationRelation, Specification, Timestamp};

/// Operations of the increment-only counter.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CounterOp {
    /// Add one to the counter. Returns [`CounterValue::Ack`].
    Increment,
    /// Query the current count. Returns [`CounterValue::Count`].
    Value,
}

/// Return values of the increment-only counter.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CounterValue {
    /// The unit reply `⊥` of an update.
    Ack,
    /// The observed count.
    Count(u64),
}

/// Increment-only counter state.
///
/// # Example
///
/// ```
/// use peepul_core::{Mrdt, ReplicaId, Timestamp};
/// use peepul_types::counter::{Counter, CounterOp, CounterValue};
///
/// let ts = |t| Timestamp::new(t, ReplicaId::new(0));
/// let lca = Counter::initial();
/// let (a, _) = lca.apply(&CounterOp::Increment, ts(1));
/// let (b, _) = lca.apply(&CounterOp::Increment, ts(2));
/// let m = Counter::merge(&lca, &a, &b);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct Counter(u64);

impl Counter {
    /// The current count.
    pub fn count(self) -> u64 {
        self.0
    }
}

impl Mrdt for Counter {
    type Op = CounterOp;
    type Value = CounterValue;

    fn initial() -> Self {
        Counter(0)
    }

    fn apply(&self, op: &CounterOp, _t: Timestamp) -> (Self, CounterValue) {
        match op {
            CounterOp::Increment => (Counter(self.0 + 1), CounterValue::Ack),
            CounterOp::Value => (*self, CounterValue::Count(self.0)),
        }
    }

    fn merge(lca: &Self, a: &Self, b: &Self) -> Self {
        // Each branch's count is lca.0 plus its local increments; summing
        // the two deltas on top of the ancestor merges without loss.
        Counter(a.0 + b.0 - lca.0)
    }
}

/// Specification `F_ctr`: a read returns the number of visible increments.
#[derive(Debug)]
pub struct CounterSpec;

impl Specification<Counter> for CounterSpec {
    fn spec(op: &CounterOp, state: &AbstractOf<Counter>) -> CounterValue {
        match op {
            CounterOp::Increment => CounterValue::Ack,
            CounterOp::Value => CounterValue::Count(
                state
                    .events()
                    .filter(|e| matches!(e.op(), CounterOp::Increment))
                    .count() as u64,
            ),
        }
    }
}

/// Simulation relation: the concrete count equals the number of increment
/// events in the abstract execution.
#[derive(Debug)]
pub struct CounterSim;

impl SimulationRelation<Counter> for CounterSim {
    fn holds(abs: &AbstractOf<Counter>, conc: &Counter) -> bool {
        let incs = abs
            .events()
            .filter(|e| matches!(e.op(), CounterOp::Increment))
            .count() as u64;
        conc.0 == incs
    }

    fn explain_failure(abs: &AbstractOf<Counter>, conc: &Counter) -> Option<String> {
        let incs = abs
            .events()
            .filter(|e| matches!(e.op(), CounterOp::Increment))
            .count() as u64;
        (conc.0 != incs).then(|| format!("concrete count {} but {} increment events", conc.0, incs))
    }
}

impl Certified for Counter {
    type Spec = CounterSpec;
    type Sim = CounterSim;
}

#[cfg(test)]
mod tests {
    use super::*;
    use peepul_core::ReplicaId;

    fn ts(tick: u64) -> Timestamp {
        Timestamp::new(tick, ReplicaId::new(0))
    }

    #[test]
    fn initial_counts_zero() {
        let (_, v) = Counter::initial().apply(&CounterOp::Value, ts(1));
        assert_eq!(v, CounterValue::Count(0));
    }

    #[test]
    fn increments_accumulate() {
        let mut c = Counter::initial();
        for i in 0..5 {
            let (next, v) = c.apply(&CounterOp::Increment, ts(i + 1));
            assert_eq!(v, CounterValue::Ack);
            c = next;
        }
        assert_eq!(c.count(), 5);
    }

    #[test]
    fn merge_sums_divergent_increments() {
        let lca = Counter(10);
        let a = Counter(13); // +3 since lca
        let b = Counter(11); // +1 since lca
        assert_eq!(Counter::merge(&lca, &a, &b).count(), 14);
    }

    #[test]
    fn merge_with_unchanged_branch_is_identity() {
        let lca = Counter(4);
        let a = Counter(9);
        assert_eq!(Counter::merge(&lca, &a, &lca), a);
        assert_eq!(Counter::merge(&lca, &lca, &a), a);
    }

    #[test]
    fn merge_is_commutative() {
        let lca = Counter(2);
        let a = Counter(7);
        let b = Counter(3);
        assert_eq!(Counter::merge(&lca, &a, &b), Counter::merge(&lca, &b, &a));
    }

    #[test]
    fn spec_counts_visible_increments() {
        let i = AbstractOf::<Counter>::new()
            .perform(CounterOp::Increment, CounterValue::Ack, ts(1))
            .perform(CounterOp::Value, CounterValue::Count(1), ts(2))
            .perform(CounterOp::Increment, CounterValue::Ack, ts(3));
        assert_eq!(
            CounterSpec::spec(&CounterOp::Value, &i),
            CounterValue::Count(2)
        );
    }

    #[test]
    fn simulation_relates_count_to_events() {
        let i = AbstractOf::<Counter>::new()
            .perform(CounterOp::Increment, CounterValue::Ack, ts(1))
            .perform(CounterOp::Increment, CounterValue::Ack, ts(2));
        assert!(CounterSim::holds(&i, &Counter(2)));
        assert!(!CounterSim::holds(&i, &Counter(1)));
        assert!(CounterSim::explain_failure(&i, &Counter(1)).is_some());
        assert!(CounterSim::explain_failure(&i, &Counter(2)).is_none());
    }
}

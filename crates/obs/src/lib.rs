//! Observability spine for the peepul workspace: metrics + tracing with
//! zero dependencies and no locks on the hot path.
//!
//! Two facilities, bundled behind one cheap handle ([`Obs`]):
//!
//! * a [`Registry`] of named [`Counter`]s, [`Gauge`]s, callback gauges
//!   and log2-bucket latency [`Histogram`]s, rendered on demand as a
//!   Prometheus-style text exposition ([`Registry::render`], parsed back
//!   by [`parse_exposition`]);
//! * an [`EventRing`] — a lock-free bounded ring of structured trace
//!   events (subsystem, kind, label, value, timestamp) with a per-
//!   [`Subsystem`] [`TraceLevel`], dumpable as JSONL
//!   ([`EventRing::dump_jsonl`]).
//!
//! # Design constraints
//!
//! The handles are designed so that instrumented hot paths pay only
//! atomic increments: metric handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are `Arc`-shared slots resolved **once** at attach
//! time — the registry's interior lock is touched only at registration
//! and exposition, never per operation. The event ring is a per-slot
//! seqlock built entirely from atomics (this crate contains no `unsafe`),
//! so producers never block each other or the snapshot reader. The
//! workspace-wide overhead budget — enforced by `bench_obs` in CI — is a
//! **< 5 %** commit-throughput delta between a fully instrumented store
//! and [`ObsConfig::disabled`].
//!
//! # Metric naming scheme
//!
//! `peepul_<subsystem>_<what>[_<unit>][{label="v"}]`, e.g.
//! `peepul_store_commit_micros`, `peepul_net_lag_ticks{peer="b"}`,
//! `peepul_server_requests_total{kind="put"}`. Counters end in `_total`;
//! durations are histograms in microseconds ending in `_micros`; gauges
//! carry a bare unit. Labels are baked into the registry name — the
//! registry itself is label-agnostic, and [`parse_exposition`] splits
//! them back out.

#![forbid(unsafe_code)]

mod expo;
mod registry;
mod ring;

pub use expo::{parse_exposition, Sample};
pub use registry::{Counter, Gauge, Histogram, Registry, Timer};
pub use ring::{EventRing, Subsystem, TraceEvent, TraceLevel};

use std::sync::Arc;

/// Configuration for an [`Obs`] spine: whether instrumentation is live,
/// how many trace events the ring retains, and the initial per-subsystem
/// trace levels.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Master switch. When `false`, consumers should not attach metric
    /// handles at all ([`Obs::enabled`] reports this), so hot paths pay
    /// literally nothing — the contract `bench_obs` measures against.
    pub enabled: bool,
    /// Event-ring capacity in slots; `0` disables tracing entirely.
    pub ring_capacity: usize,
    /// Initial trace level for every [`Subsystem`].
    pub level: TraceLevel,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            ring_capacity: 4096,
            level: TraceLevel::Info,
        }
    }
}

impl ObsConfig {
    /// The all-off configuration: no metrics attached, a zero-capacity
    /// ring, every subsystem at [`TraceLevel::Off`]. `bench_obs` gates
    /// the instrumented build against exactly this baseline.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            ring_capacity: 0,
            level: TraceLevel::Off,
        }
    }
}

/// The bundled observability handle a process threads through its
/// subsystems: one shared [`Registry`] and one shared [`EventRing`].
///
/// Cloning is cheap (two `Arc` bumps); every subsystem holds its own
/// clone. Construct one per process with [`Obs::new`], or
/// [`Obs::disabled`] for an inert spine that consumers skip attaching.
#[derive(Clone)]
pub struct Obs {
    registry: Arc<Registry>,
    ring: Arc<EventRing>,
    enabled: bool,
}

impl Obs {
    /// Builds a spine from `config`.
    pub fn new(config: ObsConfig) -> Self {
        let ring = EventRing::new(config.ring_capacity);
        for sub in Subsystem::ALL {
            ring.set_level(sub, config.level);
        }
        Obs {
            registry: Arc::new(Registry::new()),
            ring: Arc::new(ring),
            enabled: config.enabled,
        }
    }

    /// The inert spine: [`ObsConfig::disabled`] applied.
    pub fn disabled() -> Self {
        Obs::new(ObsConfig::disabled())
    }

    /// Whether instrumentation should be attached at all. Consumers
    /// check this once at construction and skip attaching their metric
    /// structs when `false`.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared trace-event ring.
    pub fn ring(&self) -> &Arc<EventRing> {
        &self.ring
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(ObsConfig::default())
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled)
            .field("metrics", &self.registry.len())
            .field("ring_capacity", &self.ring.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spine_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        assert_eq!(obs.ring().capacity(), 0);
        obs.ring()
            .record(Subsystem::Store, TraceLevel::Info, "commit", "main", 1);
        assert_eq!(obs.ring().recorded(), 0);
    }

    #[test]
    fn default_spine_records() {
        let obs = Obs::default();
        assert!(obs.enabled());
        let c = obs.registry().counter("peepul_test_total");
        c.inc();
        obs.ring()
            .record(Subsystem::Net, TraceLevel::Info, "fetch", "peer-a", 7);
        assert_eq!(obs.ring().recorded(), 1);
        let text = obs.registry().render();
        assert!(text.contains("peepul_test_total 1"));
    }
}

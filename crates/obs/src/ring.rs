//! A lock-free bounded ring of structured trace events.
//!
//! Producers claim slots with a `fetch_add` on the head cursor and
//! publish through a per-slot **seqlock built from atomics only** (no
//! `unsafe`): a slot's sequence word is odd while a writer owns it and
//! `2 * generation` once published. The ring overwrites oldest events
//! when full — tracing is a window onto recent behaviour, not a durable
//! log — and a snapshot reader never blocks a producer: a slot caught
//! mid-write is simply skipped.
//!
//! Events are plain integers in the ring (timestamp, packed ids, value);
//! the human-readable `kind` and `label` strings are interned into side
//! tables so recording costs no allocation for already-seen strings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::RwLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// The subsystem an event or metric originates from; each has an
/// independent [`TraceLevel`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// The storage engine (`peepul-store`).
    Store,
    /// The replication layer (`peepul-net`).
    Net,
    /// The service daemon (`peepul-server`).
    Server,
}

impl Subsystem {
    /// All subsystems, for iteration.
    pub const ALL: [Subsystem; 3] = [Subsystem::Store, Subsystem::Net, Subsystem::Server];

    /// The lowercase name used in metric names and JSONL dumps.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Store => "store",
            Subsystem::Net => "net",
            Subsystem::Server => "server",
        }
    }

    fn index(self) -> usize {
        match self {
            Subsystem::Store => 0,
            Subsystem::Net => 1,
            Subsystem::Server => 2,
        }
    }

    fn from_index(i: u64) -> Subsystem {
        match i {
            0 => Subsystem::Store,
            1 => Subsystem::Net,
            _ => Subsystem::Server,
        }
    }
}

impl std::fmt::Display for Subsystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How much a subsystem traces. Ordered: a ring set to [`TraceLevel::Info`]
/// records `Info` events and drops `Debug` ones.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing.
    Off = 0,
    /// Record operational milestones (commits, merges, sync rounds).
    Info = 1,
    /// Record fine-grained detail (per-request, per-object).
    Debug = 2,
}

impl TraceLevel {
    fn from_u8(v: u8) -> TraceLevel {
        match v {
            0 => TraceLevel::Off,
            1 => TraceLevel::Info,
            _ => TraceLevel::Debug,
        }
    }
}

/// One decoded trace event, as returned by [`EventRing::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Wall-clock microseconds since the Unix epoch at record time.
    pub ts_micros: u64,
    /// Originating subsystem.
    pub subsystem: Subsystem,
    /// Event kind (e.g. `"commit"`, `"fetch"`, `"request"`).
    pub kind: String,
    /// Free-form context: branch, peer, tenant, or request name.
    pub label: String,
    /// Event payload — a duration in microseconds or a size, by kind.
    pub value: u64,
}

/// A published slot: `seq` is `0` when never written, odd while a writer
/// owns it, and `2 * generation` once generation `generation`'s event is
/// readable. All fields are atomics so readers can race writers without
/// `unsafe`; the seq double-check makes torn reads detectable.
struct Slot {
    seq: AtomicU64,
    ts_micros: AtomicU64,
    /// Packed `subsystem << 48 | kind_id << 32 | label_id`.
    meta: AtomicU64,
    value: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts_micros: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

/// Interner for `&'static str` event kinds; the id fits the packed meta
/// word's 16-bit field. Kinds are few (one per instrumented code path),
/// so lookup is a linear scan under a read lock.
#[derive(Default)]
struct KindTable(RwLock<Vec<&'static str>>);

impl KindTable {
    fn intern(&self, kind: &'static str) -> u16 {
        if let Some(i) = self
            .0
            .read()
            .expect("kind table poisoned")
            .iter()
            .position(|k| *k == kind)
        {
            return i as u16;
        }
        let mut table = self.0.write().expect("kind table poisoned");
        if let Some(i) = table.iter().position(|k| *k == kind) {
            return i as u16;
        }
        if table.len() >= u16::MAX as usize {
            return 0;
        }
        table.push(kind);
        (table.len() - 1) as u16
    }

    fn resolve(&self, id: u16) -> String {
        self.0
            .read()
            .expect("kind table poisoned")
            .get(id as usize)
            .copied()
            .unwrap_or("?")
            .to_string()
    }
}

/// Interner for dynamic labels (branch names, peers, tenants). The read
/// path is a `HashMap` hit under a read lock; only a never-seen label
/// takes the write lock.
#[derive(Default)]
struct LabelTable(RwLock<LabelInner>);

#[derive(Default)]
struct LabelInner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl LabelTable {
    fn intern(&self, label: &str) -> u32 {
        if let Some(&i) = self
            .0
            .read()
            .expect("label table poisoned")
            .index
            .get(label)
        {
            return i;
        }
        let mut inner = self.0.write().expect("label table poisoned");
        if let Some(&i) = inner.index.get(label) {
            return i;
        }
        if inner.names.len() >= u32::MAX as usize {
            return 0;
        }
        let id = inner.names.len() as u32;
        inner.names.push(label.to_string());
        inner.index.insert(label.to_string(), id);
        id
    }

    fn resolve(&self, id: u32) -> String {
        self.0
            .read()
            .expect("label table poisoned")
            .names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| "?".to_string())
    }
}

/// The lock-free bounded trace ring: a fixed-capacity buffer of
/// structured trace events, overwritten oldest-first, readable without
/// stopping writers.
pub struct EventRing {
    slots: Vec<Slot>,
    /// Next global write position; slot = `pos % capacity`,
    /// generation = `pos / capacity + 1`.
    head: AtomicU64,
    /// Events accepted (level passed and a slot claim was attempted).
    recorded: AtomicU64,
    /// Writes abandoned because a newer generation already claimed the
    /// slot — distinct from routine overwrite of old events.
    lost: AtomicU64,
    levels: [AtomicU8; 3],
    kinds: KindTable,
    labels: LabelTable,
}

impl EventRing {
    /// A ring retaining up to `capacity` events; `0` disables recording.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            levels: [AtomicU8::new(0), AtomicU8::new(0), AtomicU8::new(0)],
            kinds: KindTable::default(),
            labels: LabelTable::default(),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Sets `sub`'s trace level.
    pub fn set_level(&self, sub: Subsystem, level: TraceLevel) {
        self.levels[sub.index()].store(level as u8, Ordering::Relaxed);
    }

    /// `sub`'s current trace level.
    pub fn level(&self, sub: Subsystem) -> TraceLevel {
        TraceLevel::from_u8(self.levels[sub.index()].load(Ordering::Relaxed))
    }

    /// Whether an event at `level` from `sub` would be recorded — the
    /// cheap pre-check callers use before assembling label strings.
    #[inline]
    pub fn enabled(&self, sub: Subsystem, level: TraceLevel) -> bool {
        !self.slots.is_empty()
            && level != TraceLevel::Off
            && self.levels[sub.index()].load(Ordering::Relaxed) >= level as u8
    }

    /// Total events accepted since construction (including ones since
    /// overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Writes abandoned to a racing newer writer (not routine ring
    /// overwrite) — nonzero only under extreme producer contention.
    pub fn lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }

    /// Records one event if `sub`'s level admits `level`.
    pub fn record(
        &self,
        sub: Subsystem,
        level: TraceLevel,
        kind: &'static str,
        label: &str,
        value: u64,
    ) {
        if !self.enabled(sub, level) {
            return;
        }
        let kind_id = self.kinds.intern(kind) as u64;
        let label_id = self.labels.intern(label) as u64;
        let meta = ((sub.index() as u64) << 48) | (kind_id << 32) | label_id;
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        self.recorded.fetch_add(1, Ordering::Relaxed);

        let cap = self.slots.len() as u64;
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos % cap) as usize];
        let generation = pos / cap + 1;
        let writing = 2 * generation - 1;
        // Claim the slot unless a *newer* generation already has it (a
        // racing producer lapped us); publishing a stale event over a
        // newer one would reorder the window.
        let mut seq = slot.seq.load(Ordering::Acquire);
        loop {
            if seq >= writing {
                self.lost.fetch_add(1, Ordering::Relaxed);
                return;
            }
            match slot
                .seq
                .compare_exchange(seq, writing, Ordering::Acquire, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(actual) => seq = actual,
            }
        }
        slot.ts_micros.store(ts, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store(2 * generation, Ordering::Release);
    }

    /// Decodes the current window of events, oldest first. Slots caught
    /// mid-write are skipped, so a snapshot under fire is consistent but
    /// possibly one event short per racing writer.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let cap = self.slots.len() as u64;
        let mut events: Vec<(u64, TraceEvent)> = Vec::new();
        for (idx, slot) in self.slots.iter().enumerate() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let ts = slot.ts_micros.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue;
            }
            let generation = s1 / 2;
            let pos = (generation - 1) * cap + idx as u64;
            events.push((
                pos,
                TraceEvent {
                    ts_micros: ts,
                    subsystem: Subsystem::from_index(meta >> 48),
                    kind: self.kinds.resolve(((meta >> 32) & 0xFFFF) as u16),
                    label: self.labels.resolve((meta & 0xFFFF_FFFF) as u32),
                    value,
                },
            ));
        }
        events.sort_by_key(|(pos, _)| *pos);
        events.into_iter().map(|(_, e)| e).collect()
    }

    /// Renders the current window as JSONL (one event object per line),
    /// the `--trace-dump` file format.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            out.push_str(&format!(
                "{{\"ts_micros\":{},\"subsystem\":\"{}\",\"kind\":\"{}\",\"label\":\"{}\",\"value\":{}}}\n",
                e.ts_micros,
                e.subsystem,
                json_escape(&e.kind),
                json_escape(&e.label),
                e.value
            ));
        }
        out
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info_ring(cap: usize) -> EventRing {
        let r = EventRing::new(cap);
        for sub in Subsystem::ALL {
            r.set_level(sub, TraceLevel::Info);
        }
        r
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let r = info_ring(8);
        for i in 0..5u64 {
            r.record(Subsystem::Store, TraceLevel::Info, "commit", "main", i);
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 5);
        assert_eq!(
            events.iter().map(|e| e.value).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(events
            .iter()
            .all(|e| e.kind == "commit" && e.label == "main"));
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let r = info_ring(4);
        for i in 0..10u64 {
            r.record(Subsystem::Net, TraceLevel::Info, "fetch", "peer", i);
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.value).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "ring keeps the newest window"
        );
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn levels_filter_per_subsystem() {
        let r = info_ring(8);
        r.set_level(Subsystem::Net, TraceLevel::Off);
        r.record(Subsystem::Store, TraceLevel::Info, "commit", "main", 1);
        r.record(Subsystem::Net, TraceLevel::Info, "fetch", "peer", 2);
        r.record(Subsystem::Store, TraceLevel::Debug, "read", "main", 3);
        let events = r.snapshot();
        assert_eq!(events.len(), 1, "net is off and store debug is filtered");
        assert_eq!(events[0].value, 1);
    }

    #[test]
    fn jsonl_escapes_and_shapes() {
        let r = info_ring(4);
        r.record(Subsystem::Server, TraceLevel::Info, "request", "a\"b", 9);
        let dump = r.dump_jsonl();
        assert_eq!(dump.lines().count(), 1);
        assert!(dump.contains("\"subsystem\":\"server\""));
        assert!(dump.contains("\"label\":\"a\\\"b\""));
        assert!(dump.contains("\"value\":9"));
    }

    #[test]
    fn concurrent_producers_keep_ring_consistent() {
        use std::sync::Arc;
        let r = Arc::new(info_ring(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        r.record(Subsystem::Store, TraceLevel::Info, "op", "b", t * 1000 + i);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            let _ = r.snapshot();
        }
        for t in threads {
            t.join().unwrap();
        }
        let events = r.snapshot();
        assert!(events.len() <= 64);
        assert!(!events.is_empty());
        assert_eq!(r.recorded(), 4000);
    }
}

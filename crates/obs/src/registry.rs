//! The metrics registry: named counters, gauges, callback gauges and
//! log2-bucket histograms, rendered as a Prometheus-style exposition.
//!
//! Handles returned by the registry ([`Counter`], [`Gauge`],
//! [`Histogram`]) are `Arc`-shared slots: consumers resolve them once at
//! attach time and then update them with plain atomic operations — the
//! registry's interior lock is only taken at registration and at
//! [`Registry::render`] time, never on a hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A monotonically increasing `u64` metric.
///
/// Cloning shares the underlying slot; a default-constructed counter is
/// a free-standing slot not attached to any registry (useful as an inert
/// placeholder).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed instantaneous value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (which may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i` (for `i >= 1`) holds observations
/// in `[2^(i-1), 2^i - 1]`; bucket 0 holds exactly `0`. 64 value buckets
/// plus the zero bucket cover the full `u64` range.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket latency histogram with log2 buckets.
///
/// Observations are whole numbers (the workspace convention is
/// microseconds for durations). Quantiles are answered from the bucket
/// counts: [`Histogram::quantile`] returns the **upper bound** of the
/// bucket containing the requested rank, so the estimate is conservative
/// (never below the true percentile) and at most one power of two above
/// it.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// The bucket index for an observed value: 0 for 0, otherwise
/// `floor(log2(v)) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records the microseconds elapsed since `start`.
    #[inline]
    pub fn observe_since(&self, start: Instant) {
        self.observe(start.elapsed().as_micros() as u64);
    }

    /// Starts a timer that records into this histogram when dropped.
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` (clamped to `[0, 1]`): the upper bound
    /// of the first bucket whose cumulative count reaches rank
    /// `ceil(q * count)`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank is 1-based: q=0 still needs the first observation's bucket.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }
}

/// Records elapsed microseconds into a [`Histogram`] on drop — the RAII
/// form of [`Histogram::observe_since`] for multi-exit functions.
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Instant,
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.hist.observe_since(self.start);
    }
}

/// A registered metric slot.
enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    GaugeFn(Arc<dyn Fn() -> f64 + Send + Sync>),
    Histogram(Histogram),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) | Entry::GaugeFn(_) => "gauge",
            Entry::Histogram(_) => "summary",
        }
    }
}

/// A process-wide table of named metrics.
///
/// Names follow the workspace scheme described in the [crate docs]
/// (crate): `peepul_<subsystem>_<what>[_<unit>]`, with any labels baked
/// into the name (`peepul_net_lag_ticks{peer="b"}`). Registration is
/// get-or-create: asking twice for the same name returns handles to the
/// same slot, so independent subsystems can share a metric without
/// coordination.
///
/// # Panics
///
/// Registering a name that already exists **as a different kind**
/// (e.g. asking for a counter where a gauge lives) panics: that is a
/// naming-scheme bug, not a runtime condition.
#[derive(Default)]
pub struct Registry {
    entries: RwLock<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry lock poisoned").len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        extract: impl Fn(&Entry) -> Option<T>,
        make: impl FnOnce() -> (T, Entry),
    ) -> T {
        let check = |e: &Entry| -> T {
            match extract(e) {
                Some(t) => t,
                None => panic!("metric {name:?} already registered as a {}", e.kind()),
            }
        };
        if let Some(e) = self
            .entries
            .read()
            .expect("registry lock poisoned")
            .get(name)
        {
            return check(e);
        }
        let mut entries = self.entries.write().expect("registry lock poisoned");
        if let Some(e) = entries.get(name) {
            return check(e);
        }
        let (handle, entry) = make();
        entries.insert(name.to_string(), entry);
        handle
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            |e| match e {
                Entry::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::default();
                (c.clone(), Entry::Counter(c))
            },
        )
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            |e| match e {
                Entry::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::default();
                (g.clone(), Entry::Gauge(g))
            },
        )
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.get_or_insert(
            name,
            |e| match e {
                Entry::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::default();
                (h.clone(), Entry::Histogram(h))
            },
        )
    }

    /// Registers (or replaces) a **callback gauge**: `f` is evaluated at
    /// every [`Registry::render`]. This is the bridge for values that
    /// already live elsewhere — connection stats, uptime, derived ratios
    /// — so they appear in the same exposition without a second
    /// side-channel.
    ///
    /// Unlike the slot-based kinds, re-registering a callback gauge
    /// replaces the previous callback (the newest closure owns the
    /// freshest captures); registering over a slot-based kind panics.
    pub fn gauge_fn(&self, name: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        let mut entries = self.entries.write().expect("registry lock poisoned");
        if let Some(e) = entries.get(name) {
            if !matches!(e, Entry::GaugeFn(_)) {
                panic!("metric {name:?} already registered as a {}", e.kind());
            }
        }
        entries.insert(name.to_string(), Entry::GaugeFn(Arc::new(f)));
    }

    /// Renders every metric as Prometheus-style text exposition.
    ///
    /// Counters and gauges render as single samples; histograms render
    /// as summaries (`{quantile="0.5"|"0.95"|"0.99"}` plus `_count` and
    /// `_sum`). One `# TYPE` line is emitted per distinct base name
    /// (label variants of one family share it). The output round-trips
    /// through [`parse_exposition`](crate::parse_exposition).
    pub fn render(&self) -> String {
        let entries = self.entries.read().expect("registry lock poisoned");
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, entry) in entries.iter() {
            let base = base_name(name);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} {}\n", entry.kind()));
                last_base = base.to_string();
            }
            match entry {
                Entry::Counter(c) => {
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Entry::Gauge(g) => {
                    out.push_str(&format!("{name} {}\n", g.get()));
                }
                Entry::GaugeFn(f) => {
                    out.push_str(&format!("{name} {}\n", fmt_f64(f())));
                }
                Entry::Histogram(h) => {
                    for (q, qs) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        let labeled = with_label(name, &format!("quantile=\"{qs}\""));
                        out.push_str(&format!("{labeled} {}\n", h.quantile(q)));
                    }
                    out.push_str(&format!("{} {}\n", with_suffix(name, "_count"), h.count()));
                    out.push_str(&format!("{} {}\n", with_suffix(name, "_sum"), h.sum()));
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("len", &self.len())
            .finish()
    }
}

/// The metric family name: everything before the label block.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Merges one `k="v"` pair into a possibly-labeled metric name.
fn with_label(name: &str, label: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{{{label},{}", &name[..i], &name[i + 1..]),
        None => format!("{name}{{{label}}}"),
    }
}

/// Appends a suffix to the family name, keeping any label block.
fn with_suffix(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{suffix}{}", &name[..i], &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

/// Formats an `f64` sample: integral values print without a trailing
/// `.0` so counters bridged through callbacks look like counters.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("peepul_x_total");
        c.add(3);
        r.counter("peepul_x_total").inc();
        assert_eq!(c.get(), 4, "same name returns the same slot");
        let g = r.gauge("peepul_x_active");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("peepul_x_total");
        r.gauge("peepul_x_total");
    }

    #[test]
    fn gauge_fn_renders_live_values() {
        let r = Registry::new();
        let v = Arc::new(AtomicU64::new(41));
        let v2 = v.clone();
        r.gauge_fn("peepul_x_live", move || v2.load(Ordering::Relaxed) as f64);
        v.store(42, Ordering::Relaxed);
        assert!(r.render().contains("peepul_x_live 42\n"));
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn labeled_names_render_correctly() {
        let r = Registry::new();
        r.counter("peepul_srv_req_total{kind=\"get\"}").inc();
        r.histogram("peepul_srv_req_micros{kind=\"get\"}")
            .observe(5);
        let text = r.render();
        assert!(text.contains("peepul_srv_req_total{kind=\"get\"} 1\n"));
        assert!(text.contains("peepul_srv_req_micros{quantile=\"0.5\",kind=\"get\"} "));
        assert!(text.contains("peepul_srv_req_micros_count{kind=\"get\"} 1\n"));
        assert!(text.contains("# TYPE peepul_srv_req_micros summary\n"));
    }

    #[test]
    fn timer_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("peepul_x_micros");
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
    }
}

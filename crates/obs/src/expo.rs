//! Parser for the Prometheus-style text exposition the registry renders.
//!
//! `peepul-cli top` diffs two expositions to show per-second rates, the
//! service smoke test asserts a live node's exposition parses, and the
//! registry concurrency test checks render/parse round-trips — all three
//! share this one hand-rolled parser (the workspace has no serde).

/// One parsed exposition sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric family name (without the label block).
    pub name: String,
    /// Label pairs in source order, unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a text exposition into samples, skipping comment (`#`) and
/// blank lines.
///
/// # Errors
///
/// A `String` describing the first malformed line: missing value,
/// unparsable number, or an unterminated label block.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sample = parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        samples.push(sample);
    }
    Ok(samples)
}

fn parse_line(line: &str) -> Result<Sample, String> {
    let (name_part, value_part) = match line.find('{') {
        Some(brace) => {
            let close = find_label_end(line, brace)?;
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let sp = line
                .find(char::is_whitespace)
                .ok_or_else(|| "missing value".to_string())?;
            (&line[..sp], line[sp..].trim())
        }
    };
    let value: f64 = value_part
        .split_whitespace()
        .next()
        .ok_or_else(|| "missing value".to_string())?
        .parse()
        .map_err(|e| format!("bad value {value_part:?}: {e}"))?;
    let (name, labels) = match name_part.find('{') {
        Some(brace) => (
            name_part[..brace].to_string(),
            parse_labels(&name_part[brace + 1..name_part.len() - 1])?,
        ),
        None => (name_part.to_string(), Vec::new()),
    };
    if name.is_empty() {
        return Err("empty metric name".to_string());
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Finds the index of the `}` closing the label block that opens at
/// `brace`, honouring escapes inside quoted values.
fn find_label_end(line: &str, brace: usize) -> Result<usize, String> {
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(brace + 1) {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Ok(i),
            _ => {}
        }
    }
    Err("unterminated label block".to_string())
}

/// Parses `k="v",k2="v2"` (the inside of a label block).
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {s:?}"))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return Err(format!("unquoted label value in {s:?}"));
        }
        let (value, consumed) = parse_quoted(&after[1..])?;
        labels.push((key, value));
        rest = after[1 + consumed..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("trailing junk after label value in {s:?}"));
        }
    }
    Ok(labels)
}

/// Parses a quoted-string body up to its closing quote, unescaping
/// `\"`, `\\` and `\n`. Returns the value and the number of input bytes
/// consumed **including** the closing quote.
fn parse_quoted(s: &str) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, other)) => out.push(other),
                None => return Err("dangling escape in label value".to_string()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated label value".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn parses_plain_and_labeled_samples() {
        let text = "# TYPE a counter\n\
                    a_total 41\n\
                    b{peer=\"node-b\",kind=\"get\"} 2.5\n\
                    \n\
                    c{q=\"0.5\"} 12\n";
        let samples = parse_exposition(text).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "a_total");
        assert_eq!(samples[0].value, 41.0);
        assert!(samples[0].labels.is_empty());
        assert_eq!(samples[1].name, "b");
        assert_eq!(samples[1].label("peer"), Some("node-b"));
        assert_eq!(samples[1].label("kind"), Some("get"));
        assert_eq!(samples[1].value, 2.5);
        assert_eq!(samples[2].label("q"), Some("0.5"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_exposition("name_without_value").is_err());
        assert!(parse_exposition("name{unclosed 1").is_err());
        assert!(parse_exposition("name not_a_number").is_err());
    }

    #[test]
    fn escaped_label_values_roundtrip() {
        let samples = parse_exposition("m{l=\"a\\\"b\\\\c\"} 1").unwrap();
        assert_eq!(samples[0].label("l"), Some("a\"b\\c"));
    }

    #[test]
    fn registry_render_roundtrips() {
        let r = Registry::new();
        r.counter("peepul_store_commits_total").add(3);
        r.gauge("peepul_server_conns_active").set(2);
        r.histogram("peepul_server_req_micros{kind=\"get\"}")
            .observe(100);
        r.gauge_fn("peepul_store_memo_hit_rate", || 0.75);
        let text = r.render();
        let samples = parse_exposition(&text).unwrap();
        // counter + gauge + gauge_fn + (3 quantiles + count + sum) = 8.
        assert_eq!(samples.len(), 8);
        let commits = samples
            .iter()
            .find(|s| s.name == "peepul_store_commits_total")
            .unwrap();
        assert_eq!(commits.value, 3.0);
        let q95 = samples
            .iter()
            .find(|s| s.name == "peepul_server_req_micros" && s.label("quantile") == Some("0.95"))
            .unwrap();
        assert!(q95.value >= 100.0);
        assert_eq!(q95.label("kind"), Some("get"));
        let rate = samples
            .iter()
            .find(|s| s.name == "peepul_store_memo_hit_rate")
            .unwrap();
        assert_eq!(rate.value, 0.75);
    }
}

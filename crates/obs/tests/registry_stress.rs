//! Satellite coverage for the observability spine: an 8-thread hammer on
//! the registry with concurrent exposition snapshots (counters must never
//! regress and every snapshot must parse), and a histogram-percentile
//! check against an exact reference computed from the raw observations.

use peepul_obs::{parse_exposition, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// 8 writer threads hammer counters, gauges and histograms while the
/// main thread repeatedly renders and parses the exposition. Asserts the
/// lock-free contract: parsed counter values never regress between
/// snapshots, and the final totals are exact.
#[test]
fn eight_threads_hammer_registry_under_snapshots() {
    const THREADS: usize = 8;
    const OPS: u64 = 20_000;

    let registry = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = registry.clone();
            std::thread::spawn(move || {
                // Each thread shares one counter family and owns one
                // labeled counter, exercising both shared-slot and
                // per-thread registration under contention.
                let shared = registry.counter("peepul_test_shared_total");
                let own = registry.counter(&format!("peepul_test_ops_total{{thread=\"{t}\"}}"));
                let gauge = registry.gauge("peepul_test_inflight");
                let hist = registry.histogram("peepul_test_latency_micros");
                for i in 0..OPS {
                    shared.inc();
                    own.inc();
                    gauge.add(1);
                    hist.observe(i % 1000);
                    gauge.add(-1);
                }
            })
        })
        .collect();

    // Snapshot loop: render + parse while the writers run, tracking the
    // shared counter's parsed value to prove monotonicity.
    let mut last_shared = 0.0f64;
    let mut snapshots = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let text = registry.render();
        let samples = parse_exposition(&text)
            .unwrap_or_else(|e| panic!("mid-flight exposition failed to parse: {e}\n{text}"));
        if let Some(s) = samples
            .iter()
            .find(|s| s.name == "peepul_test_shared_total")
        {
            assert!(
                s.value >= last_shared,
                "counter regressed across snapshots: {} -> {}",
                last_shared,
                s.value
            );
            last_shared = s.value;
        }
        snapshots += 1;
        if writers.iter().all(|w| w.is_finished()) {
            stop.store(true, Ordering::Relaxed);
        }
    }
    for w in writers {
        w.join().unwrap();
    }
    assert!(snapshots > 0);

    // Final exposition is exact.
    let samples = parse_exposition(&registry.render()).unwrap();
    let shared = samples
        .iter()
        .find(|s| s.name == "peepul_test_shared_total")
        .unwrap();
    assert_eq!(shared.value, (THREADS as u64 * OPS) as f64);
    for t in 0..THREADS {
        let own = samples
            .iter()
            .find(|s| {
                s.name == "peepul_test_ops_total" && s.label("thread") == Some(&t.to_string())
            })
            .unwrap_or_else(|| panic!("missing per-thread counter for thread {t}"));
        assert_eq!(own.value, OPS as f64);
    }
    let inflight = samples
        .iter()
        .find(|s| s.name == "peepul_test_inflight")
        .unwrap();
    assert_eq!(inflight.value, 0.0, "every add(1) was matched by add(-1)");
    let hist_count = samples
        .iter()
        .find(|s| s.name == "peepul_test_latency_micros_count")
        .unwrap();
    assert_eq!(hist_count.value, (THREADS as u64 * OPS) as f64);
}

/// Exact reference percentile: the value at (1-based) rank
/// `ceil(q * len)` of the sorted observations.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The histogram's log2-bucket quantiles versus an exact reference over
/// the same data: the estimate must never be below the true percentile
/// and at most one power-of-two bucket above it.
#[test]
fn histogram_percentiles_match_exact_reference() {
    let registry = Registry::new();
    let hist = registry.histogram("peepul_test_ref_micros");

    // A deliberately skewed workload: many fast ops, a slow tail —
    // deterministic LCG so the test needs no RNG dependency.
    let mut seed = 0x2545F4914F6CDD1Du64;
    let mut observations: Vec<u64> = (0..10_000)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = seed >> 33;
            match r % 100 {
                0..=89 => r % 128,         // fast path: < 128 us
                90..=98 => 128 + r % 2048, // mid tier
                _ => 10_000 + r % 100_000, // slow tail
            }
        })
        .collect();
    for &v in &observations {
        hist.observe(v);
    }
    observations.sort_unstable();

    for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
        let exact = exact_percentile(&observations, q);
        let estimate = hist.quantile(q);
        assert!(
            estimate >= exact,
            "q={q}: estimate {estimate} below exact percentile {exact}"
        );
        // The estimate is the containing bucket's upper bound, so it is
        // less than twice the exact value (next power of two minus one),
        // except around zero where the bound is the bucket edge itself.
        let bound = exact.saturating_mul(2).max(1);
        assert!(
            estimate <= bound,
            "q={q}: estimate {estimate} exceeds log2 bound {bound} (exact {exact})"
        );
    }
    assert_eq!(hist.count(), observations.len() as u64);
    assert_eq!(hist.sum(), observations.iter().sum::<u64>());

    // Degenerate shapes stay exact: constant streams hit the bucket
    // containing the constant.
    let constant = registry.histogram("peepul_test_const_micros");
    for _ in 0..100 {
        constant.observe(64);
    }
    assert_eq!(constant.quantile(0.5), 127, "64 lives in bucket [64,127]");
    let zeros = registry.histogram("peepul_test_zero_micros");
    for _ in 0..10 {
        zeros.observe(0);
    }
    assert_eq!(zeros.quantile(0.99), 0);
}

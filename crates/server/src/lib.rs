//! **peepul-server** — the Peepul branch store as a *service*: a
//! concurrent, durable, multi-tenant key-value daemon built on the
//! workspace's certified MRDTs.
//!
//! The store layers below this crate give us a content-addressed commit
//! graph with certified three-way merges ([`peepul_store`]), a canonical
//! wire codec ([`peepul_core::Wire`]) and a Git-shaped replication
//! protocol ([`peepul_net`]). This crate is the last step to a running
//! system: a daemon (`peepul-server`) that owns one durable
//! [`Replica`](peepul_net::Replica) of [`Kv`] — a map of last-writer-wins
//! registers — and serves it to many concurrent clients and peers over
//! one TCP port, plus a typed [`ServiceClient`] the `peepul-cli` binary,
//! the benches and the tests all speak.
//!
//! The pieces:
//!
//! * [`service`] — the KV command protocol ([`ServiceRequest`] /
//!   [`ServiceResponse`]), tag-partitioned above the replication protocol
//!   so both share a socket, and the per-connection [`Session`] carrying
//!   the tenant binding;
//! * [`server`] — [`Server`]: the daemon proper, a
//!   [`FrameServer`](peepul_net::FrameServer) dispatching each frame to
//!   the replication handler or the KV handler, with a background
//!   anti-entropy thread converging a fleet of peers.
//!
//! Reads (`get`, `query`, `status`, `branches`, and every read-only
//! replication request) run under the store's shared read lock — the
//! commit-free query path — so they are concurrent with each other and
//! never minted into history. Writes (`put`, `fork`, `merge`, pushed
//! packs) serialize under the write lock. Convergence across a fleet is
//! the paper's guarantee surfaced operationally: every node's branch
//! heads settle to identical state ids once anti-entropy quiesces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod server;
pub mod service;

pub use metrics::ServerMetrics;
pub use server::{Server, ServerConfig, ServiceClient, SyncRoundReport};
pub use service::{
    Kv, ServiceRequest, ServiceResponse, Session, SERVICE_TAG_BASE, TRACKING_PREFIX,
};

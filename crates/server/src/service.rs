//! The service protocol: the KV commands `peepul-cli` speaks and the
//! per-connection session they run in.
//!
//! Service frames share the PPL1 socket with the replication protocol.
//! The two are distinguished by the first payload byte: replication
//! requests ([`peepul_net::Request`]) tag themselves with small values,
//! service requests start at [`SERVICE_TAG_BASE`]. One port therefore
//! serves both clients (`peepul-cli`) and peers (fetch/push/anti-entropy)
//! — exactly like Git's smart protocol riding on one endpoint.
//!
//! ## Multi-tenancy
//!
//! A session optionally binds a **tenant** ([`ServiceRequest::Hello`]).
//! Every branch name a bound session mentions is resolved to the
//! namespaced branch `tenant/branch`; an unbound session addresses
//! branches verbatim (the operator view — it can see every namespace).
//! Tenant names and tenant-relative branch names may not contain `/`, so
//! namespaces cannot be escaped; the `remote/` prefix is reserved for the
//! replication layer's tracking branches and refused everywhere.

use peepul_core::wire::Wire;
use peepul_store::ObjectId;
use peepul_types::lww_register::LwwRegister;
use peepul_types::map::MrdtMap;

/// The service's replicated state: a multi-branch key-value map. Keys are
/// strings; each value is a last-writer-wins register of a string, so
/// concurrent puts to one key resolve deterministically by timestamp
/// (certified LWW semantics) while puts to different keys merge
/// losslessly.
pub type Kv = MrdtMap<LwwRegister<String>>;

/// First tag byte used by service frames. Everything below this is the
/// replication protocol's ([`peepul_net::Request`] currently uses 0–4);
/// the dispatcher in `peepul-server` routes on this boundary.
pub const SERVICE_TAG_BASE: u8 = 32;

/// A client command to a `peepul-server`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceRequest {
    /// Bind this session to a tenant namespace: every later branch name
    /// in the session resolves to `tenant/<branch>`.
    Hello {
        /// The tenant namespace (no `/`, not `remote`).
        tenant: String,
    },
    /// Read one key (commit-free, served concurrently).
    Get {
        /// The branch to read.
        branch: String,
        /// The key.
        key: String,
    },
    /// Write one key (one commit).
    Put {
        /// The branch to write. Created by forking the root branch when
        /// it does not exist yet.
        branch: String,
        /// The key.
        key: String,
        /// The value.
        value: String,
    },
    /// Dump a branch's full table (commit-free).
    Query {
        /// The branch to dump.
        branch: String,
    },
    /// Fork a new branch off an existing one.
    Fork {
        /// The existing branch.
        from: String,
        /// The branch to create.
        to: String,
    },
    /// Three-way-merge one branch into another.
    Merge {
        /// The branch receiving the merge commit.
        into: String,
        /// The branch merged in (unchanged).
        from: String,
    },
    /// List the session's visible branches (tenant-relative when bound).
    Branches,
    /// The node's status: identity, clock, connection counters and every
    /// branch head — what the smoke test compares across a fleet to
    /// assert convergence.
    Status,
    /// A Prometheus-style text exposition of every metric the node's
    /// observability registry holds — store, net and server subsystems in
    /// one snapshot. An empty exposition means observability is disabled.
    Metrics,
    /// Flush the node's trace [`EventRing`](peepul_obs::EventRing) to its
    /// configured `--trace-dump` path as JSONL, right now — the
    /// SIGUSR-style "dump your state" poke, without signals so it works
    /// identically everywhere. Fails when the server has no dump path.
    TraceDump,
}

/// A `peepul-server`'s answer to a [`ServiceRequest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceResponse {
    /// The command succeeded with nothing to report.
    Ok,
    /// A [`ServiceRequest::Get`] result.
    Value {
        /// The key's value, `None` when never written.
        value: Option<String>,
    },
    /// A [`ServiceRequest::Query`] result.
    Table {
        /// `(key, value)` pairs in key order.
        entries: Vec<(String, String)>,
    },
    /// A [`ServiceRequest::Branches`] result.
    BranchList {
        /// Visible branch names, sorted.
        branches: Vec<String>,
    },
    /// A [`ServiceRequest::Status`] result.
    Status {
        /// The node's replica name.
        node: String,
        /// The node's Lamport clock.
        tick: u64,
        /// Connections being served right now.
        active_connections: u64,
        /// High-water mark of concurrently served connections.
        peak_connections: u64,
        /// Connections accepted over the node's lifetime.
        connections_accepted: u64,
        /// Request frames answered over the node's lifetime.
        frames_served: u64,
        /// Seconds since the server started.
        uptime_secs: u64,
        /// The backend's flush policy, as reported by
        /// [`StorageInfo`](peepul_store::StorageInfo): `volatile`,
        /// `none`, `per-commit`, `coalesced:<ms>ms` or `explicit`.
        flush: String,
        /// Bytes the backend holds on disk (0 for volatile backends).
        disk_bytes: u64,
        /// Segment files the backend holds (0 for volatile backends).
        segments: u64,
        /// Every branch as `(name, head commit id, head state id)` —
        /// tracking branches included, sorted by name.
        branches: Vec<(String, ObjectId, ObjectId)>,
    },
    /// A [`ServiceRequest::Metrics`] result.
    Metrics {
        /// The Prometheus-style text exposition; empty when the node's
        /// observability is disabled.
        text: String,
    },
    /// The command failed.
    Err {
        /// Human-readable failure description.
        message: String,
    },
}

macro_rules! service_wire_enum {
    ($ty:ident { $($tag:literal => $variant:ident $(($($field:ident : $ftype:ty),*))? ,)* }) => {
        impl Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                match self {
                    $( $ty::$variant $({ $($field),* })? => {
                        out.push(SERVICE_TAG_BASE + $tag);
                        $( $($field.encode(out);)* )?
                    } )*
                }
            }

            fn decode(input: &mut &[u8]) -> Option<Self> {
                match u8::decode(input)?.checked_sub(SERVICE_TAG_BASE)? {
                    $( $tag => {
                        $( $(let $field = <$ftype>::decode(input)?;)* )?
                        Some($ty::$variant $({ $($field),* })?)
                    } )*
                    _ => None,
                }
            }
        }
    };
}

service_wire_enum!(ServiceRequest {
    0 => Hello(tenant: String),
    1 => Get(branch: String, key: String),
    2 => Put(branch: String, key: String, value: String),
    3 => Query(branch: String),
    4 => Fork(from: String, to: String),
    5 => Merge(into: String, from: String),
    6 => Branches,
    7 => Status,
    8 => Metrics,
    9 => TraceDump,
});

service_wire_enum!(ServiceResponse {
    0 => Ok,
    1 => Value(value: Option<String>),
    2 => Table(entries: Vec<(String, String)>),
    3 => BranchList(branches: Vec<String>),
    4 => Status(
        node: String,
        tick: u64,
        active_connections: u64,
        peak_connections: u64,
        connections_accepted: u64,
        frames_served: u64,
        uptime_secs: u64,
        flush: String,
        disk_bytes: u64,
        segments: u64,
        branches: Vec<(String, ObjectId, ObjectId)>
    ),
    5 => Err(message: String),
    6 => Metrics(text: String),
});

/// The branch-name prefix reserved for the replication layer's tracking
/// branches; the service refuses to read or write under it.
pub const TRACKING_PREFIX: &str = "remote/";

/// One connection's session state: the tenant namespace it is bound to,
/// if any.
#[derive(Default, Debug)]
pub struct Session {
    /// The bound tenant, set by [`ServiceRequest::Hello`].
    pub tenant: Option<String>,
    /// The tenant's op counter
    /// (`peepul_server_tenant_ops_total{tenant="..."}`), resolved once at
    /// `Hello` so the per-request path never touches the registry.
    pub tenant_ops: Option<peepul_obs::Counter>,
}

impl Session {
    /// Validates a tenant name: non-empty, no `/` (namespaces cannot
    /// nest or escape), no control characters, not the reserved
    /// `remote`.
    pub fn validate_tenant(tenant: &str) -> Result<(), String> {
        if tenant.is_empty() {
            return Err("tenant name must not be empty".into());
        }
        if tenant.contains('/') {
            return Err(format!("tenant name must not contain '/': {tenant:?}"));
        }
        if tenant.chars().any(char::is_control) {
            return Err("tenant name must not contain control characters".into());
        }
        if tenant == "remote" {
            return Err("tenant name 'remote' is reserved for tracking branches".into());
        }
        Ok(())
    }

    /// Resolves a session-relative branch name to the store branch it
    /// addresses: `tenant/<branch>` for a bound session, `branch`
    /// verbatim otherwise. Rejects names that would cross namespaces or
    /// touch the reserved tracking prefix.
    pub fn resolve(&self, branch: &str) -> Result<String, String> {
        if branch.is_empty() {
            return Err("branch name must not be empty".into());
        }
        match &self.tenant {
            Some(tenant) => {
                if branch.contains('/') {
                    return Err(format!(
                        "tenant-relative branch names must not contain '/': {branch:?}"
                    ));
                }
                Ok(format!("{tenant}/{branch}"))
            }
            None => {
                if branch.starts_with(TRACKING_PREFIX) || branch == "remote" {
                    return Err(format!(
                        "the {TRACKING_PREFIX}* namespace is reserved for replication tracking \
                         branches: {branch:?}"
                    ));
                }
                Ok(branch.to_owned())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u8) -> ObjectId {
        peepul_store::content_id(&n)
    }

    #[test]
    fn service_messages_roundtrip() {
        let reqs = [
            ServiceRequest::Hello {
                tenant: "acme".into(),
            },
            ServiceRequest::Get {
                branch: "main".into(),
                key: "k".into(),
            },
            ServiceRequest::Put {
                branch: "main".into(),
                key: "k".into(),
                value: "v".into(),
            },
            ServiceRequest::Query {
                branch: "main".into(),
            },
            ServiceRequest::Fork {
                from: "main".into(),
                to: "feature".into(),
            },
            ServiceRequest::Merge {
                into: "main".into(),
                from: "feature".into(),
            },
            ServiceRequest::Branches,
            ServiceRequest::Status,
            ServiceRequest::Metrics,
            ServiceRequest::TraceDump,
        ];
        for r in reqs {
            assert_eq!(ServiceRequest::from_wire(&r.to_wire()), Some(r));
        }
        let resps = [
            ServiceResponse::Ok,
            ServiceResponse::Value {
                value: Some("v".into()),
            },
            ServiceResponse::Value { value: None },
            ServiceResponse::Table {
                entries: vec![("k".into(), "v".into())],
            },
            ServiceResponse::BranchList {
                branches: vec!["a".into(), "b".into()],
            },
            ServiceResponse::Status {
                node: "n1".into(),
                tick: 7,
                active_connections: 1,
                peak_connections: 2,
                connections_accepted: 3,
                frames_served: 4,
                uptime_secs: 5,
                flush: "coalesced:5ms".into(),
                disk_bytes: 6,
                segments: 2,
                branches: vec![("main".into(), oid(1), oid(2))],
            },
            ServiceResponse::Metrics {
                text: "peepul_store_commits_total 3\n".into(),
            },
            ServiceResponse::Err {
                message: "nope".into(),
            },
        ];
        for r in resps {
            assert_eq!(ServiceResponse::from_wire(&r.to_wire()), Some(r));
        }
    }

    #[test]
    fn service_tags_do_not_collide_with_the_sync_protocol() {
        // Replication requests tag themselves below SERVICE_TAG_BASE; a
        // service frame's first byte is always >= it. The dispatcher
        // relies on this boundary.
        let sync = peepul_net::Request::FetchRefs.to_wire();
        assert!(sync[0] < SERVICE_TAG_BASE);
        let service = ServiceRequest::Status.to_wire();
        assert!(service[0] >= SERVICE_TAG_BASE);
    }

    #[test]
    fn tenants_resolve_and_cannot_escape() {
        let unbound = Session::default();
        assert_eq!(unbound.resolve("main").unwrap(), "main");
        assert_eq!(unbound.resolve("acme/main").unwrap(), "acme/main");
        assert!(unbound.resolve("remote/x/main").is_err());
        assert!(unbound.resolve("").is_err());

        let bound = Session {
            tenant: Some("acme".into()),
            ..Session::default()
        };
        assert_eq!(bound.resolve("main").unwrap(), "acme/main");
        assert!(bound.resolve("other/main").is_err());
        assert!(bound.resolve("remote/x").is_err());

        assert!(Session::validate_tenant("acme").is_ok());
        assert!(Session::validate_tenant("").is_err());
        assert!(Session::validate_tenant("a/b").is_err());
        assert!(Session::validate_tenant("remote").is_err());
    }
}

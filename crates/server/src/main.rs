//! The `peepul-server` binary: a durable multi-tenant KV daemon.
//!
//! ```text
//! peepul-server --listen 127.0.0.1:7401 --data /var/lib/peepul/n1 \
//!     --name n1 --peer 127.0.0.1:7402 --peer 127.0.0.1:7403
//! ```
//!
//! Prints `peepul-server <name> listening on <addr>` once serving (the
//! smoke script scrapes this line for the bound ephemeral port), then
//! runs until killed. State lives in the `--data` directory's segment
//! backend, so a restarted node comes back with its full history and
//! clock.

use peepul_obs::{ObsConfig, TraceLevel};
use peepul_server::{Server, ServerConfig};
use peepul_store::{FlushPolicy, SegmentBackend, SegmentOptions};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    listen: String,
    data: String,
    config: ServerConfig,
    options: SegmentOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: peepul-server --listen ADDR --data DIR --name NAME \
         [--root-branch BRANCH] [--peer ADDR]... [--max-conns N] \
         [--sync-interval-ms MS] [--flush per-commit|coalesced:MS|explicit] \
         [--segment-bytes N] [--no-obs] [--trace-level off|info|debug] \
         [--trace-ring N] [--trace-dump PATH]"
    );
    std::process::exit(2);
}

/// `per-commit`, `coalesced:MS` or `explicit`.
fn parse_flush(arg: &str) -> Option<FlushPolicy> {
    match arg {
        "per-commit" => Some(FlushPolicy::PerCommit),
        "explicit" => Some(FlushPolicy::Explicit),
        other => {
            let ms: u64 = other.strip_prefix("coalesced:")?.parse().ok()?;
            Some(FlushPolicy::Coalesced {
                max_delay: Duration::from_millis(ms),
            })
        }
    }
}

fn parse_args() -> Args {
    let mut listen = None;
    let mut data = None;
    let mut name = None;
    let mut root_branch = "main".to_owned();
    let mut peers = Vec::new();
    let mut max_connections = 64usize;
    let mut sync_interval = Duration::from_millis(500);
    let mut options = SegmentOptions::default();
    let mut obs = ObsConfig::default();
    let mut trace_dump = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--listen" => listen = Some(value()),
            "--data" => data = Some(value()),
            "--name" => name = Some(value()),
            "--root-branch" => root_branch = value(),
            "--peer" => peers.push(value()),
            "--max-conns" => {
                max_connections = value().parse().unwrap_or_else(|_| usage());
            }
            "--sync-interval-ms" => {
                sync_interval = Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            "--flush" => {
                options.flush = parse_flush(&value()).unwrap_or_else(|| usage());
            }
            "--segment-bytes" => {
                options.max_segment_bytes = value().parse().unwrap_or_else(|_| usage());
            }
            "--no-obs" => obs = ObsConfig::disabled(),
            "--trace-level" => {
                obs.level = match value().as_str() {
                    "off" => TraceLevel::Off,
                    "info" => TraceLevel::Info,
                    "debug" => TraceLevel::Debug,
                    _ => usage(),
                };
            }
            "--trace-ring" => {
                obs.ring_capacity = value().parse().unwrap_or_else(|_| usage());
            }
            "--trace-dump" => trace_dump = Some(PathBuf::from(value())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let (Some(listen), Some(data), Some(name)) = (listen, data, name) else {
        usage();
    };
    // A non-per-commit policy defers fsyncs to the background flusher;
    // bound the exposure at one second.
    let flush_interval = match options.flush {
        FlushPolicy::PerCommit => None,
        FlushPolicy::Coalesced { .. } | FlushPolicy::Explicit => Some(Duration::from_secs(1)),
    };
    Args {
        listen,
        data,
        config: ServerConfig {
            name,
            root_branch,
            max_connections,
            peers,
            sync_interval,
            flush_interval,
            obs,
            trace_dump,
        },
        options,
    }
}

fn main() {
    let args = parse_args();
    let backend = match SegmentBackend::open_with(&args.data, args.options) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "peepul-server: cannot open data directory {}: {e}",
                args.data
            );
            std::process::exit(1);
        }
    };
    let name = args.config.name.clone();
    let server = match Server::spawn(args.config, args.listen.as_str(), backend) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("peepul-server: cannot start: {e}");
            std::process::exit(1);
        }
    };
    // The line the smoke script (and operators) scrape for the bound port.
    println!("peepul-server {name} listening on {}", server.addr());

    // Serving happens on the accept/connection threads; this thread only
    // keeps the process (and thereby the Server) alive.
    loop {
        std::thread::park();
    }
}

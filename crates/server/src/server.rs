//! The daemon: one durable [`Replica`] served concurrently to clients and
//! peers over a single port.
//!
//! [`Server`] binds a [`FrameServer`] (the shared accept-loop machinery
//! of `peepul-net`: one serving thread per connection, a hard connection
//! cap with accept-time backpressure) over a dispatching
//! [`FrameService`]: frames whose tag byte is below
//! [`SERVICE_TAG_BASE`](crate::service::SERVICE_TAG_BASE) are replication
//! protocol requests answered by [`Replica::handle_frame`], everything
//! else is a [`ServiceRequest`] run in the connection's [`Session`].
//!
//! ## Concurrency model
//!
//! The store sits behind the replica's `RwLock`. `Get`/`Query`/`Status`/
//! `Branches` and the read-only replication requests take the shared read
//! lock and run concurrently across any number of sessions — the store's
//! query path is commit-free and needs only `&self`. `Put`/`Fork`/`Merge`
//! and pushed packs take the write lock and serialize. Backpressure is
//! layered: past `max_connections` the acceptor stops accepting (clients
//! queue in the OS listen backlog), and within a connection the
//! one-frame-at-a-time request/response discipline bounds in-flight work
//! to one request per session.
//!
//! ## Peering
//!
//! A background thread runs an anti-entropy round every `sync_interval`:
//! for each configured peer it pulls every advertised non-tracking branch
//! and pushes every local non-tracking branch (ignoring non-fast-forward
//! refusals — the next round pulls, merges and retries). Unreachable
//! peers are skipped, so a fleet can be started in any order.

use crate::metrics::{request_kind, ServerMetrics};
use crate::service::{Kv, ServiceRequest, ServiceResponse, Session, TRACKING_PREFIX};
use peepul_core::wire::Wire;
use peepul_net::{
    ConnStats, FrameServer, FrameService, NetError, NetMetrics, Remote, Replica, ServeOptions,
    TcpTransport,
};
use peepul_obs::{Obs, ObsConfig};
use peepul_store::{Backend, BranchStore, CommitId, StoreError, StoreMetrics};
use peepul_types::lww_register::{LwwOp, LwwQuery};
use peepul_types::map::{MapOp, MapQuery};
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a [`Server`] is to be run: identity, limits and peering.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The node's replica name (determines its timestamp replica-id
    /// range — must be unique across a fleet).
    pub name: String,
    /// The branch every node starts with and new branches fork from.
    pub root_branch: String,
    /// Hard cap on concurrently served connections.
    pub max_connections: usize,
    /// Peer addresses (`host:port`) to anti-entropy with.
    pub peers: Vec<String>,
    /// Delay between anti-entropy rounds. Ignored when `peers` is empty.
    pub sync_interval: Duration,
    /// When set, a background thread flushes the store to stable storage
    /// at this interval — the companion of a coalesced/explicit
    /// [`FlushPolicy`](peepul_store::FlushPolicy) backend: sessions
    /// commit without paying a per-commit fsync and this bounds how long
    /// acknowledged writes may stay volatile. `None` (the default) means
    /// the backend's own policy is the whole durability story.
    pub flush_interval: Option<Duration>,
    /// The observability spine: how many trace events to retain and at
    /// what level. [`ObsConfig::disabled`] removes every metric and
    /// trace touch from the hot paths (the [`ServiceRequest::Metrics`]
    /// exposition is then empty).
    pub obs: ObsConfig,
    /// When set, the trace [`EventRing`](peepul_obs::EventRing) is
    /// flushed to this path as JSONL on shutdown and on every
    /// [`ServiceRequest::TraceDump`].
    pub trace_dump: Option<PathBuf>,
}

impl ServerConfig {
    /// A config with the given node name and the defaults: root branch
    /// `main`, 64 connections, no peers, 500 ms sync interval, no
    /// background flusher.
    pub fn new(name: impl Into<String>) -> Self {
        ServerConfig {
            name: name.into(),
            root_branch: "main".into(),
            max_connections: 64,
            peers: Vec::new(),
            sync_interval: Duration::from_millis(500),
            flush_interval: None,
            obs: ObsConfig::default(),
            trace_dump: None,
        }
    }
}

/// What one anti-entropy round did (one pass over every peer).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncRoundReport {
    /// Peers that answered.
    pub peers_reached: usize,
    /// Peers that could not be reached (skipped, not fatal).
    pub peers_unreachable: usize,
    /// Branches pulled (fetched and integrated) across all peers.
    pub branches_pulled: usize,
    /// Branches pushed (accepted fast-forwards) across all peers.
    pub branches_pushed: usize,
}

/// The `peepul-server` daemon: a durable multi-tenant KV service over one
/// [`Replica`], serving clients and peers concurrently on one port.
#[derive(Debug)]
pub struct Server<B: Backend + Send + Sync + 'static> {
    replica: Replica<Kv, B>,
    frames: FrameServer,
    sync_shutdown: Arc<AtomicBool>,
    sync_thread: Option<JoinHandle<()>>,
    flush_thread: Option<JoinHandle<()>>,
    name: String,
    obs: Obs,
    trace_dump: Option<PathBuf>,
}

impl<B: Backend + Send + Sync + 'static> Server<B> {
    /// Opens (or creates) the store on `backend`, binds `listen` and
    /// starts serving. When `config.peers` is non-empty, also starts the
    /// background anti-entropy thread.
    ///
    /// # Errors
    ///
    /// Store errors from [`Replica::open`] (a corrupt or foreign
    /// backend); [`NetError::Io`] when the bind fails.
    pub fn spawn(
        config: ServerConfig,
        listen: impl ToSocketAddrs,
        backend: B,
    ) -> Result<Self, NetError> {
        let replica: Replica<Kv, B> =
            Replica::open(config.name.clone(), config.root_branch.clone(), backend)?;

        // The observability spine: one registry + trace ring shared by
        // every subsystem. Attaching hands each layer its pre-resolved
        // handles; a disabled spine attaches nothing, so the hot paths
        // pay only a `None` check.
        let obs = Obs::new(config.obs.clone());
        replica.with_store(|s| s.set_metrics(StoreMetrics::attach(&obs)));
        replica.set_net_metrics(NetMetrics::attach(&obs));
        let metrics = ServerMetrics::attach(&obs);
        let started = Instant::now();
        if obs.enabled() {
            obs.registry()
                .gauge_fn("peepul_server_uptime_seconds", move || {
                    started.elapsed().as_secs_f64()
                });
        }

        let stats = ConnStats::default();
        if obs.enabled() {
            // Satellite fix: the connection counters used to be reachable
            // only through the handle returned at construction — publish
            // them in the shared exposition too.
            stats.register_gauges(obs.registry());
        }
        let service = Arc::new(KvService {
            replica: replica.clone(),
            node: config.name.clone(),
            root_branch: config.root_branch.clone(),
            stats: stats.clone(),
            obs: obs.clone(),
            metrics: metrics.clone(),
            started,
            trace_dump: config.trace_dump.clone(),
        });
        let frames = FrameServer::bind_with_stats(
            service,
            listen,
            ServeOptions {
                max_connections: config.max_connections,
            },
            stats,
        )?;

        let sync_shutdown = Arc::new(AtomicBool::new(false));
        let sync_thread = if config.peers.is_empty() {
            None
        } else {
            let replica = replica.clone();
            let peers = config.peers.clone();
            let interval = config.sync_interval;
            let flag = Arc::clone(&sync_shutdown);
            let metrics = metrics.clone();
            Some(std::thread::spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    let _ = sync_round(&replica, &peers, metrics.as_deref());
                    // Sleep in small slices so shutdown is prompt even
                    // under long intervals.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !flag.load(Ordering::SeqCst) {
                        let slice = remaining.min(Duration::from_millis(50));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            }))
        };

        let flush_thread = config.flush_interval.map(|interval| {
            let replica = replica.clone();
            let flag = Arc::clone(&sync_shutdown);
            std::thread::spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    // One sync covers every commit any session landed
                    // since the last pass — group commit across sessions.
                    let _ = replica.with_store(|s| s.flush());
                    let mut remaining = interval;
                    while !remaining.is_zero() && !flag.load(Ordering::SeqCst) {
                        let slice = remaining.min(Duration::from_millis(50));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
        });

        Ok(Server {
            replica,
            frames,
            sync_shutdown,
            sync_thread,
            flush_thread,
            name: config.name,
            obs,
            trace_dump: config.trace_dump,
        })
    }

    /// The address clients and peers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.frames.addr()
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The replica this server serves — the in-process handle tests and
    /// embedding applications use.
    pub fn replica(&self) -> &Replica<Kv, B> {
        &self.replica
    }

    /// Currently served connections.
    pub fn active_connections(&self) -> usize {
        self.frames.active_connections()
    }

    /// The most connections ever served at once.
    pub fn peak_connections(&self) -> usize {
        self.frames.peak_connections()
    }

    /// Request frames answered over the server's lifetime.
    pub fn frames_served(&self) -> u64 {
        self.frames.frames_served()
    }

    /// The node's observability spine: the registry and trace ring every
    /// subsystem reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Runs one anti-entropy round against `peers` right now, on the
    /// calling thread — deterministic syncing for tests and benches (the
    /// background thread runs exactly this).
    pub fn sync_with(&self, peers: &[String]) -> SyncRoundReport {
        sync_round(
            &self.replica,
            peers,
            ServerMetrics::attach(&self.obs).as_deref(),
        )
    }

    /// Stops the sync thread and the frame server (joining every serving
    /// thread). Called automatically on drop; idempotent.
    pub fn shutdown(&mut self) {
        self.sync_shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.sync_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.flush_thread.take() {
            let _ = t.join();
            // A clean shutdown persists everything the flusher was
            // amortizing, whatever the backend's policy.
            let _ = self.replica.with_store(|s| s.flush());
        }
        self.frames.shutdown();
        if let Some(path) = &self.trace_dump {
            let _ = std::fs::write(path, self.obs.ring().dump_jsonl());
        }
    }
}

impl<B: Backend + Send + Sync + 'static> Drop for Server<B> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One anti-entropy round: pull every non-tracking branch each reachable
/// peer advertises, then push every local non-tracking branch (ignoring
/// divergence refusals — pulled next round, merged, retried).
///
/// With `metrics` attached the round's duration lands in
/// `peepul_net_sync_round_micros` and every reached peer's replication
/// lag (in Lamport ticks) in `peepul_net_lag_ticks{peer="..."}`.
fn sync_round<B: Backend>(
    replica: &Replica<Kv, B>,
    peers: &[String],
    metrics: Option<&ServerMetrics>,
) -> SyncRoundReport {
    let start = metrics.map(|_| Instant::now());
    let mut report = SyncRoundReport::default();
    for peer in peers {
        let Ok(transport) = TcpTransport::connect(peer.as_str()) else {
            report.peers_unreachable += 1;
            continue;
        };
        let mut remote = Remote::new(peer.clone(), transport);
        let Ok(refs) = remote.refs() else {
            report.peers_unreachable += 1;
            continue;
        };
        report.peers_reached += 1;
        for (branch, _) in refs {
            if branch.starts_with(TRACKING_PREFIX) {
                continue;
            }
            if replica.pull(&mut remote, &branch).is_ok() {
                report.branches_pulled += 1;
            }
        }
        let locals: Vec<String> = replica.with_store_read(|s| {
            s.branch_names()
                .iter()
                .filter(|b| !b.starts_with(TRACKING_PREFIX))
                .map(|b| (*b).to_owned())
                .collect()
        });
        for branch in locals {
            // Divergence refusals are resolved by the next round's
            // pull+merge; other errors are transient network conditions.
            if replica.push(&mut remote, &branch).is_ok() {
                report.branches_pushed += 1;
            }
        }
        if let Some(m) = metrics {
            if let Some(lag) = replica.with_store_read(|s| peer_lag_ticks(s, peer)) {
                m.peer_lag(peer).set(lag as i64);
            }
        }
    }
    if let (Some(m), Some(start)) = (metrics, start) {
        let micros = start.elapsed().as_micros() as u64;
        m.sync_rounds_total.inc();
        m.sync_round_micros.observe(micros);
        m.trace("sync_round", "", report.peers_reached as u64);
    }
    report
}

/// How many Lamport ticks the newest event this node has observed from
/// `peer` (via its `remote/<peer>/…` tracking branches) trails the local
/// clock. `None` when nothing has been fetched from the peer yet.
fn peer_lag_ticks<B: Backend>(s: &BranchStore<Kv, B>, peer: &str) -> Option<u64> {
    let prefix = format!("{TRACKING_PREFIX}{peer}/");
    let mut newest: Option<u64> = None;
    for branch in s.branch_names() {
        if !branch.starts_with(&prefix) {
            continue;
        }
        if let Ok(head) = s.head(branch) {
            let seen = newest_visible_tick(s, head);
            newest = Some(newest.unwrap_or(0).max(seen));
        }
    }
    newest.map(|n| s.tick().saturating_sub(n))
}

/// The newest Lamport tick visible at `head`. A commit's mint tick bounds
/// every tick in its ancestry, so the walk only descends through
/// mint-free commits (roots and merges, mint tick 0) until it reaches the
/// operation-commit frontier — no full history traversal.
fn newest_visible_tick<B: Backend>(s: &BranchStore<Kv, B>, head: CommitId) -> u64 {
    let mut visited = vec![false; s.commit_count()];
    let mut frontier = vec![head];
    let mut newest = 0u64;
    while let Some(c) = frontier.pop() {
        if std::mem::replace(&mut visited[c.index()], true) {
            continue;
        }
        let tick = s.commit_mint(c).tick();
        if tick > 0 {
            newest = newest.max(tick);
        } else {
            frontier.extend_from_slice(s.graph().parents(c));
        }
    }
    newest
}

/// The dispatching [`FrameService`]: replication frames to the replica,
/// service frames to the KV command handler, each connection carrying its
/// own [`Session`].
struct KvService<B: Backend + Send + Sync + 'static> {
    replica: Replica<Kv, B>,
    node: String,
    root_branch: String,
    stats: ConnStats,
    obs: Obs,
    metrics: Option<Arc<ServerMetrics>>,
    started: Instant,
    trace_dump: Option<PathBuf>,
}

impl<B: Backend + Send + Sync + 'static> FrameService for KvService<B> {
    type Session = Session;

    fn open_session(&self) -> Session {
        Session::default()
    }

    fn handle(&self, frame: &[u8], session: &mut Session) -> Vec<u8> {
        if frame
            .first()
            .is_some_and(|tag| *tag < crate::service::SERVICE_TAG_BASE)
        {
            return self.replica.handle_frame(frame);
        }
        let resp = match ServiceRequest::from_wire(frame) {
            None => ServiceResponse::Err {
                message: "undecodable service frame".into(),
            },
            Some(req) => {
                let start = self.metrics.as_ref().map(|_| Instant::now());
                let kind = request_kind(&req);
                let resp = match self.serve(req, session) {
                    Ok(resp) => resp,
                    Err(message) => ServiceResponse::Err { message },
                };
                if let (Some(m), Some(start)) = (&self.metrics, start) {
                    m.observe_request(kind, start.elapsed().as_micros() as u64);
                    if let Some(ops) = &session.tenant_ops {
                        ops.inc();
                    }
                }
                resp
            }
        };
        resp.to_wire()
    }
}

/// Folds store errors into the service's string error channel.
fn store_err(e: StoreError) -> String {
    e.to_string()
}

impl<B: Backend + Send + Sync + 'static> KvService<B> {
    fn serve(&self, req: ServiceRequest, session: &mut Session) -> Result<ServiceResponse, String> {
        match req {
            ServiceRequest::Hello { tenant } => {
                Session::validate_tenant(&tenant)?;
                // Resolve the tenant's op counter once, here, so the
                // per-request accounting path never touches the registry.
                session.tenant_ops = self.metrics.as_ref().map(|m| m.tenant_ops(&tenant));
                session.tenant = Some(tenant);
                Ok(ServiceResponse::Ok)
            }
            ServiceRequest::Get { branch, key } => {
                let branch = session.resolve(&branch)?;
                // Commit-free and under the shared read lock: concurrent
                // with every other reader. An unknown branch reads as
                // empty — tenants see a uniform keyspace before their
                // first put.
                let value = match self
                    .replica
                    .read(&branch, &MapQuery::Get(key, LwwQuery::Read))
                {
                    Ok(v) => v,
                    Err(StoreError::UnknownBranch(_)) => None,
                    Err(e) => return Err(store_err(e)),
                };
                Ok(ServiceResponse::Value { value })
            }
            ServiceRequest::Put { branch, key, value } => {
                let branch = session.resolve(&branch)?;
                let root = &self.root_branch;
                self.replica
                    .with_store(|s| -> Result<(), StoreError> {
                        if !s.has_branch(&branch) {
                            // First put to a fresh namespace: fork the
                            // root branch so every tenant branch shares
                            // the common ancestor.
                            s.branch_mut(root)?.fork(branch.clone())?;
                        }
                        s.branch_mut(&branch)?
                            .apply(&MapOp::Set(key, LwwOp::Write(value)))?;
                        Ok(())
                    })
                    .map_err(store_err)?;
                Ok(ServiceResponse::Ok)
            }
            ServiceRequest::Query { branch } => {
                let branch = session.resolve(&branch)?;
                let entries = self.replica.with_store_read(|s| match s.state(&branch) {
                    Ok(state) => Ok(state
                        .keys()
                        .filter_map(|k| {
                            state
                                .get(k)
                                .and_then(|reg| reg.get().cloned())
                                .map(|v| (k.to_owned(), v))
                        })
                        .collect()),
                    Err(StoreError::UnknownBranch(_)) => Ok(Vec::new()),
                    Err(e) => Err(store_err(e)),
                })?;
                Ok(ServiceResponse::Table { entries })
            }
            ServiceRequest::Fork { from, to } => {
                let from = session.resolve(&from)?;
                let to = session.resolve(&to)?;
                self.replica
                    .with_store(|s| s.branch_mut(&from).and_then(|mut b| b.fork(to)))
                    .map_err(store_err)?;
                Ok(ServiceResponse::Ok)
            }
            ServiceRequest::Merge { into, from } => {
                let into = session.resolve(&into)?;
                let from = session.resolve(&from)?;
                self.replica
                    .with_store(|s| s.branch_mut(&into).and_then(|mut b| b.merge_from(&from)))
                    .map_err(store_err)?;
                Ok(ServiceResponse::Ok)
            }
            ServiceRequest::Branches => {
                let branches = self.replica.with_store_read(|s| {
                    let names = s.branch_names();
                    match &session.tenant {
                        Some(tenant) => {
                            let prefix = format!("{tenant}/");
                            names
                                .iter()
                                .filter_map(|b| b.strip_prefix(&prefix))
                                .map(str::to_owned)
                                .collect()
                        }
                        None => names
                            .iter()
                            .filter(|b| !b.starts_with(TRACKING_PREFIX))
                            .map(|b| (*b).to_owned())
                            .collect(),
                    }
                });
                Ok(ServiceResponse::BranchList { branches })
            }
            ServiceRequest::Status => {
                let (tick, info, branches) = self.replica.with_store_read(|s| {
                    let branches = s
                        .branch_names()
                        .iter()
                        .map(|b| {
                            let head = s.head_id(b).expect("listed branch has a head");
                            let state = s.state_id(b).expect("listed branch has a state");
                            ((*b).to_owned(), head, state)
                        })
                        .collect();
                    (s.tick(), s.backend().storage_info(), branches)
                });
                Ok(ServiceResponse::Status {
                    node: self.node.clone(),
                    tick,
                    active_connections: self.stats.active() as u64,
                    peak_connections: self.stats.peak() as u64,
                    connections_accepted: self.stats.accepted(),
                    frames_served: self.stats.frames(),
                    uptime_secs: self.started.elapsed().as_secs(),
                    flush: info.flush,
                    disk_bytes: info.disk_bytes,
                    segments: info.segments,
                    branches,
                })
            }
            ServiceRequest::Metrics => {
                // Pull-model gauges (memo stats, storage info, graph
                // sizes) are synced into the registry at exposition time,
                // under the same read lock every other reader shares.
                self.replica.with_store_read(|s| s.publish_gauges());
                Ok(ServiceResponse::Metrics {
                    text: self.obs.registry().render(),
                })
            }
            ServiceRequest::TraceDump => {
                let Some(path) = &self.trace_dump else {
                    return Err("server has no --trace-dump path configured".into());
                };
                std::fs::write(path, self.obs.ring().dump_jsonl())
                    .map_err(|e| format!("cannot write trace dump to {}: {e}", path.display()))?;
                if let Some(m) = &self.metrics {
                    m.trace("trace_dump", "", self.obs.ring().recorded());
                }
                Ok(ServiceResponse::Ok)
            }
        }
    }
}

/// A typed client for the service protocol — one connection, one session.
///
/// This is what `peepul-cli` (and the benches and tests) speak; it reuses
/// [`TcpTransport`]'s framing, so replication traffic and service traffic
/// are byte-compatible on the same socket.
#[derive(Debug)]
pub struct ServiceClient {
    transport: TcpTransport,
}

impl ServiceClient {
    /// Connects to a `peepul-server`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Ok(ServiceClient {
            transport: TcpTransport::connect(addr)?,
        })
    }

    /// Sends one request and decodes the response. Peer-reported errors
    /// surface as [`NetError::Remote`].
    ///
    /// # Errors
    ///
    /// Transport errors; [`NetError::BadFrame`] on an undecodable
    /// response; [`NetError::Remote`] when the server reports an error.
    pub fn call(&mut self, req: &ServiceRequest) -> Result<ServiceResponse, NetError> {
        use peepul_net::Transport;
        let frame = self.transport.request(&req.to_wire())?;
        match ServiceResponse::from_wire(&frame) {
            None => Err(NetError::BadFrame("undecodable service response".into())),
            Some(ServiceResponse::Err { message }) => Err(NetError::Remote(message)),
            Some(resp) => Ok(resp),
        }
    }

    /// Binds the session to a tenant namespace.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn hello(&mut self, tenant: impl Into<String>) -> Result<(), NetError> {
        match self.call(&ServiceRequest::Hello {
            tenant: tenant.into(),
        })? {
            ServiceResponse::Ok => Ok(()),
            r => Err(unexpected("Ok", &r)),
        }
    }

    /// Reads one key.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn get(
        &mut self,
        branch: impl Into<String>,
        key: impl Into<String>,
    ) -> Result<Option<String>, NetError> {
        match self.call(&ServiceRequest::Get {
            branch: branch.into(),
            key: key.into(),
        })? {
            ServiceResponse::Value { value } => Ok(value),
            r => Err(unexpected("Value", &r)),
        }
    }

    /// Writes one key.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn put(
        &mut self,
        branch: impl Into<String>,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<(), NetError> {
        match self.call(&ServiceRequest::Put {
            branch: branch.into(),
            key: key.into(),
            value: value.into(),
        })? {
            ServiceResponse::Ok => Ok(()),
            r => Err(unexpected("Ok", &r)),
        }
    }

    /// Dumps a branch's full table.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn query(&mut self, branch: impl Into<String>) -> Result<Vec<(String, String)>, NetError> {
        match self.call(&ServiceRequest::Query {
            branch: branch.into(),
        })? {
            ServiceResponse::Table { entries } => Ok(entries),
            r => Err(unexpected("Table", &r)),
        }
    }

    /// Forks a branch.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn fork(&mut self, from: impl Into<String>, to: impl Into<String>) -> Result<(), NetError> {
        match self.call(&ServiceRequest::Fork {
            from: from.into(),
            to: to.into(),
        })? {
            ServiceResponse::Ok => Ok(()),
            r => Err(unexpected("Ok", &r)),
        }
    }

    /// Merges `from` into `into`.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn merge(
        &mut self,
        into: impl Into<String>,
        from: impl Into<String>,
    ) -> Result<(), NetError> {
        match self.call(&ServiceRequest::Merge {
            into: into.into(),
            from: from.into(),
        })? {
            ServiceResponse::Ok => Ok(()),
            r => Err(unexpected("Ok", &r)),
        }
    }

    /// Lists the session's visible branches.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn branches(&mut self) -> Result<Vec<String>, NetError> {
        match self.call(&ServiceRequest::Branches)? {
            ServiceResponse::BranchList { branches } => Ok(branches),
            r => Err(unexpected("BranchList", &r)),
        }
    }

    /// The node's status response, undigested.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn status(&mut self) -> Result<ServiceResponse, NetError> {
        match self.call(&ServiceRequest::Status)? {
            s @ ServiceResponse::Status { .. } => Ok(s),
            r => Err(unexpected("Status", &r)),
        }
    }

    /// The node's metrics as a Prometheus-style text exposition (empty
    /// when the node's observability is disabled).
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn metrics(&mut self) -> Result<String, NetError> {
        match self.call(&ServiceRequest::Metrics)? {
            ServiceResponse::Metrics { text } => Ok(text),
            r => Err(unexpected("Metrics", &r)),
        }
    }

    /// Asks the node to flush its trace ring to its `--trace-dump` path.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`]; [`NetError::Remote`] when the node has
    /// no dump path configured.
    pub fn trace_dump(&mut self) -> Result<(), NetError> {
        match self.call(&ServiceRequest::TraceDump)? {
            ServiceResponse::Ok => Ok(()),
            r => Err(unexpected("Ok", &r)),
        }
    }
}

fn unexpected(wanted: &str, got: &ServiceResponse) -> NetError {
    NetError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

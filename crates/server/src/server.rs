//! The daemon: one durable [`Replica`] served concurrently to clients and
//! peers over a single port.
//!
//! [`Server`] binds a [`FrameServer`] (the shared accept-loop machinery
//! of `peepul-net`: one serving thread per connection, a hard connection
//! cap with accept-time backpressure) over a dispatching
//! [`FrameService`]: frames whose tag byte is below
//! [`SERVICE_TAG_BASE`](crate::service::SERVICE_TAG_BASE) are replication
//! protocol requests answered by [`Replica::handle_frame`], everything
//! else is a [`ServiceRequest`] run in the connection's [`Session`].
//!
//! ## Concurrency model
//!
//! The store sits behind the replica's `RwLock`. `Get`/`Query`/`Status`/
//! `Branches` and the read-only replication requests take the shared read
//! lock and run concurrently across any number of sessions — the store's
//! query path is commit-free and needs only `&self`. `Put`/`Fork`/`Merge`
//! and pushed packs take the write lock and serialize. Backpressure is
//! layered: past `max_connections` the acceptor stops accepting (clients
//! queue in the OS listen backlog), and within a connection the
//! one-frame-at-a-time request/response discipline bounds in-flight work
//! to one request per session.
//!
//! ## Peering
//!
//! A background thread runs an anti-entropy round every `sync_interval`:
//! for each configured peer it pulls every advertised non-tracking branch
//! and pushes every local non-tracking branch (ignoring non-fast-forward
//! refusals — the next round pulls, merges and retries). Unreachable
//! peers are skipped, so a fleet can be started in any order.

use crate::service::{Kv, ServiceRequest, ServiceResponse, Session, TRACKING_PREFIX};
use peepul_core::wire::Wire;
use peepul_net::{
    ConnStats, FrameServer, FrameService, NetError, Remote, Replica, ServeOptions, TcpTransport,
};
use peepul_store::{Backend, StoreError};
use peepul_types::lww_register::{LwwOp, LwwQuery};
use peepul_types::map::{MapOp, MapQuery};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How a [`Server`] is to be run: identity, limits and peering.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The node's replica name (determines its timestamp replica-id
    /// range — must be unique across a fleet).
    pub name: String,
    /// The branch every node starts with and new branches fork from.
    pub root_branch: String,
    /// Hard cap on concurrently served connections.
    pub max_connections: usize,
    /// Peer addresses (`host:port`) to anti-entropy with.
    pub peers: Vec<String>,
    /// Delay between anti-entropy rounds. Ignored when `peers` is empty.
    pub sync_interval: Duration,
    /// When set, a background thread flushes the store to stable storage
    /// at this interval — the companion of a coalesced/explicit
    /// [`FlushPolicy`](peepul_store::FlushPolicy) backend: sessions
    /// commit without paying a per-commit fsync and this bounds how long
    /// acknowledged writes may stay volatile. `None` (the default) means
    /// the backend's own policy is the whole durability story.
    pub flush_interval: Option<Duration>,
}

impl ServerConfig {
    /// A config with the given node name and the defaults: root branch
    /// `main`, 64 connections, no peers, 500 ms sync interval, no
    /// background flusher.
    pub fn new(name: impl Into<String>) -> Self {
        ServerConfig {
            name: name.into(),
            root_branch: "main".into(),
            max_connections: 64,
            peers: Vec::new(),
            sync_interval: Duration::from_millis(500),
            flush_interval: None,
        }
    }
}

/// What one anti-entropy round did (one pass over every peer).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncRoundReport {
    /// Peers that answered.
    pub peers_reached: usize,
    /// Peers that could not be reached (skipped, not fatal).
    pub peers_unreachable: usize,
    /// Branches pulled (fetched and integrated) across all peers.
    pub branches_pulled: usize,
    /// Branches pushed (accepted fast-forwards) across all peers.
    pub branches_pushed: usize,
}

/// The `peepul-server` daemon: a durable multi-tenant KV service over one
/// [`Replica`], serving clients and peers concurrently on one port.
#[derive(Debug)]
pub struct Server<B: Backend + Send + Sync + 'static> {
    replica: Replica<Kv, B>,
    frames: FrameServer,
    sync_shutdown: Arc<AtomicBool>,
    sync_thread: Option<JoinHandle<()>>,
    flush_thread: Option<JoinHandle<()>>,
    name: String,
}

impl<B: Backend + Send + Sync + 'static> Server<B> {
    /// Opens (or creates) the store on `backend`, binds `listen` and
    /// starts serving. When `config.peers` is non-empty, also starts the
    /// background anti-entropy thread.
    ///
    /// # Errors
    ///
    /// Store errors from [`Replica::open`] (a corrupt or foreign
    /// backend); [`NetError::Io`] when the bind fails.
    pub fn spawn(
        config: ServerConfig,
        listen: impl ToSocketAddrs,
        backend: B,
    ) -> Result<Self, NetError> {
        let replica: Replica<Kv, B> =
            Replica::open(config.name.clone(), config.root_branch.clone(), backend)?;
        let stats = ConnStats::default();
        let service = Arc::new(KvService {
            replica: replica.clone(),
            node: config.name.clone(),
            root_branch: config.root_branch.clone(),
            stats: stats.clone(),
        });
        let frames = FrameServer::bind_with_stats(
            service,
            listen,
            ServeOptions {
                max_connections: config.max_connections,
            },
            stats,
        )?;

        let sync_shutdown = Arc::new(AtomicBool::new(false));
        let sync_thread = if config.peers.is_empty() {
            None
        } else {
            let replica = replica.clone();
            let peers = config.peers.clone();
            let interval = config.sync_interval;
            let flag = Arc::clone(&sync_shutdown);
            Some(std::thread::spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    let _ = sync_round(&replica, &peers);
                    // Sleep in small slices so shutdown is prompt even
                    // under long intervals.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !flag.load(Ordering::SeqCst) {
                        let slice = remaining.min(Duration::from_millis(50));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            }))
        };

        let flush_thread = config.flush_interval.map(|interval| {
            let replica = replica.clone();
            let flag = Arc::clone(&sync_shutdown);
            std::thread::spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    // One sync covers every commit any session landed
                    // since the last pass — group commit across sessions.
                    let _ = replica.with_store(|s| s.flush());
                    let mut remaining = interval;
                    while !remaining.is_zero() && !flag.load(Ordering::SeqCst) {
                        let slice = remaining.min(Duration::from_millis(50));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
        });

        Ok(Server {
            replica,
            frames,
            sync_shutdown,
            sync_thread,
            flush_thread,
            name: config.name,
        })
    }

    /// The address clients and peers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.frames.addr()
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The replica this server serves — the in-process handle tests and
    /// embedding applications use.
    pub fn replica(&self) -> &Replica<Kv, B> {
        &self.replica
    }

    /// Currently served connections.
    pub fn active_connections(&self) -> usize {
        self.frames.active_connections()
    }

    /// The most connections ever served at once.
    pub fn peak_connections(&self) -> usize {
        self.frames.peak_connections()
    }

    /// Request frames answered over the server's lifetime.
    pub fn frames_served(&self) -> u64 {
        self.frames.frames_served()
    }

    /// Runs one anti-entropy round against `peers` right now, on the
    /// calling thread — deterministic syncing for tests and benches (the
    /// background thread runs exactly this).
    pub fn sync_with(&self, peers: &[String]) -> SyncRoundReport {
        sync_round(&self.replica, peers)
    }

    /// Stops the sync thread and the frame server (joining every serving
    /// thread). Called automatically on drop; idempotent.
    pub fn shutdown(&mut self) {
        self.sync_shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.sync_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.flush_thread.take() {
            let _ = t.join();
            // A clean shutdown persists everything the flusher was
            // amortizing, whatever the backend's policy.
            let _ = self.replica.with_store(|s| s.flush());
        }
        self.frames.shutdown();
    }
}

impl<B: Backend + Send + Sync + 'static> Drop for Server<B> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One anti-entropy round: pull every non-tracking branch each reachable
/// peer advertises, then push every local non-tracking branch (ignoring
/// divergence refusals — pulled next round, merged, retried).
fn sync_round<B: Backend>(replica: &Replica<Kv, B>, peers: &[String]) -> SyncRoundReport {
    let mut report = SyncRoundReport::default();
    for peer in peers {
        let Ok(transport) = TcpTransport::connect(peer.as_str()) else {
            report.peers_unreachable += 1;
            continue;
        };
        let mut remote = Remote::new(peer.clone(), transport);
        let Ok(refs) = remote.refs() else {
            report.peers_unreachable += 1;
            continue;
        };
        report.peers_reached += 1;
        for (branch, _) in refs {
            if branch.starts_with(TRACKING_PREFIX) {
                continue;
            }
            if replica.pull(&mut remote, &branch).is_ok() {
                report.branches_pulled += 1;
            }
        }
        let locals: Vec<String> = replica.with_store_read(|s| {
            s.branch_names()
                .iter()
                .filter(|b| !b.starts_with(TRACKING_PREFIX))
                .map(|b| (*b).to_owned())
                .collect()
        });
        for branch in locals {
            // Divergence refusals are resolved by the next round's
            // pull+merge; other errors are transient network conditions.
            if replica.push(&mut remote, &branch).is_ok() {
                report.branches_pushed += 1;
            }
        }
    }
    report
}

/// The dispatching [`FrameService`]: replication frames to the replica,
/// service frames to the KV command handler, each connection carrying its
/// own [`Session`].
struct KvService<B: Backend + Send + Sync + 'static> {
    replica: Replica<Kv, B>,
    node: String,
    root_branch: String,
    stats: ConnStats,
}

impl<B: Backend + Send + Sync + 'static> FrameService for KvService<B> {
    type Session = Session;

    fn open_session(&self) -> Session {
        Session::default()
    }

    fn handle(&self, frame: &[u8], session: &mut Session) -> Vec<u8> {
        if frame
            .first()
            .is_some_and(|tag| *tag < crate::service::SERVICE_TAG_BASE)
        {
            return self.replica.handle_frame(frame);
        }
        let resp = match ServiceRequest::from_wire(frame) {
            None => ServiceResponse::Err {
                message: "undecodable service frame".into(),
            },
            Some(req) => match self.serve(req, session) {
                Ok(resp) => resp,
                Err(message) => ServiceResponse::Err { message },
            },
        };
        resp.to_wire()
    }
}

/// Folds store errors into the service's string error channel.
fn store_err(e: StoreError) -> String {
    e.to_string()
}

impl<B: Backend + Send + Sync + 'static> KvService<B> {
    fn serve(&self, req: ServiceRequest, session: &mut Session) -> Result<ServiceResponse, String> {
        match req {
            ServiceRequest::Hello { tenant } => {
                Session::validate_tenant(&tenant)?;
                session.tenant = Some(tenant);
                Ok(ServiceResponse::Ok)
            }
            ServiceRequest::Get { branch, key } => {
                let branch = session.resolve(&branch)?;
                // Commit-free and under the shared read lock: concurrent
                // with every other reader. An unknown branch reads as
                // empty — tenants see a uniform keyspace before their
                // first put.
                let value = match self
                    .replica
                    .read(&branch, &MapQuery::Get(key, LwwQuery::Read))
                {
                    Ok(v) => v,
                    Err(StoreError::UnknownBranch(_)) => None,
                    Err(e) => return Err(store_err(e)),
                };
                Ok(ServiceResponse::Value { value })
            }
            ServiceRequest::Put { branch, key, value } => {
                let branch = session.resolve(&branch)?;
                let root = &self.root_branch;
                self.replica
                    .with_store(|s| -> Result<(), StoreError> {
                        if !s.has_branch(&branch) {
                            // First put to a fresh namespace: fork the
                            // root branch so every tenant branch shares
                            // the common ancestor.
                            s.branch_mut(root)?.fork(branch.clone())?;
                        }
                        s.branch_mut(&branch)?
                            .apply(&MapOp::Set(key, LwwOp::Write(value)))?;
                        Ok(())
                    })
                    .map_err(store_err)?;
                Ok(ServiceResponse::Ok)
            }
            ServiceRequest::Query { branch } => {
                let branch = session.resolve(&branch)?;
                let entries = self.replica.with_store_read(|s| match s.state(&branch) {
                    Ok(state) => Ok(state
                        .keys()
                        .filter_map(|k| {
                            state
                                .get(k)
                                .and_then(|reg| reg.get().cloned())
                                .map(|v| (k.to_owned(), v))
                        })
                        .collect()),
                    Err(StoreError::UnknownBranch(_)) => Ok(Vec::new()),
                    Err(e) => Err(store_err(e)),
                })?;
                Ok(ServiceResponse::Table { entries })
            }
            ServiceRequest::Fork { from, to } => {
                let from = session.resolve(&from)?;
                let to = session.resolve(&to)?;
                self.replica
                    .with_store(|s| s.branch_mut(&from).and_then(|mut b| b.fork(to)))
                    .map_err(store_err)?;
                Ok(ServiceResponse::Ok)
            }
            ServiceRequest::Merge { into, from } => {
                let into = session.resolve(&into)?;
                let from = session.resolve(&from)?;
                self.replica
                    .with_store(|s| s.branch_mut(&into).and_then(|mut b| b.merge_from(&from)))
                    .map_err(store_err)?;
                Ok(ServiceResponse::Ok)
            }
            ServiceRequest::Branches => {
                let branches = self.replica.with_store_read(|s| {
                    let names = s.branch_names();
                    match &session.tenant {
                        Some(tenant) => {
                            let prefix = format!("{tenant}/");
                            names
                                .iter()
                                .filter_map(|b| b.strip_prefix(&prefix))
                                .map(str::to_owned)
                                .collect()
                        }
                        None => names
                            .iter()
                            .filter(|b| !b.starts_with(TRACKING_PREFIX))
                            .map(|b| (*b).to_owned())
                            .collect(),
                    }
                });
                Ok(ServiceResponse::BranchList { branches })
            }
            ServiceRequest::Status => {
                let (tick, branches) = self.replica.with_store_read(|s| {
                    let branches = s
                        .branch_names()
                        .iter()
                        .map(|b| {
                            let head = s.head_id(b).expect("listed branch has a head");
                            let state = s.state_id(b).expect("listed branch has a state");
                            ((*b).to_owned(), head, state)
                        })
                        .collect();
                    (s.tick(), branches)
                });
                Ok(ServiceResponse::Status {
                    node: self.node.clone(),
                    tick,
                    active_connections: self.stats.active() as u64,
                    peak_connections: self.stats.peak() as u64,
                    connections_accepted: self.stats.accepted(),
                    frames_served: self.stats.frames(),
                    branches,
                })
            }
        }
    }
}

/// A typed client for the service protocol — one connection, one session.
///
/// This is what `peepul-cli` (and the benches and tests) speak; it reuses
/// [`TcpTransport`]'s framing, so replication traffic and service traffic
/// are byte-compatible on the same socket.
#[derive(Debug)]
pub struct ServiceClient {
    transport: TcpTransport,
}

impl ServiceClient {
    /// Connects to a `peepul-server`.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Ok(ServiceClient {
            transport: TcpTransport::connect(addr)?,
        })
    }

    /// Sends one request and decodes the response. Peer-reported errors
    /// surface as [`NetError::Remote`].
    ///
    /// # Errors
    ///
    /// Transport errors; [`NetError::BadFrame`] on an undecodable
    /// response; [`NetError::Remote`] when the server reports an error.
    pub fn call(&mut self, req: &ServiceRequest) -> Result<ServiceResponse, NetError> {
        use peepul_net::Transport;
        let frame = self.transport.request(&req.to_wire())?;
        match ServiceResponse::from_wire(&frame) {
            None => Err(NetError::BadFrame("undecodable service response".into())),
            Some(ServiceResponse::Err { message }) => Err(NetError::Remote(message)),
            Some(resp) => Ok(resp),
        }
    }

    /// Binds the session to a tenant namespace.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn hello(&mut self, tenant: impl Into<String>) -> Result<(), NetError> {
        match self.call(&ServiceRequest::Hello {
            tenant: tenant.into(),
        })? {
            ServiceResponse::Ok => Ok(()),
            r => Err(unexpected("Ok", &r)),
        }
    }

    /// Reads one key.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn get(
        &mut self,
        branch: impl Into<String>,
        key: impl Into<String>,
    ) -> Result<Option<String>, NetError> {
        match self.call(&ServiceRequest::Get {
            branch: branch.into(),
            key: key.into(),
        })? {
            ServiceResponse::Value { value } => Ok(value),
            r => Err(unexpected("Value", &r)),
        }
    }

    /// Writes one key.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn put(
        &mut self,
        branch: impl Into<String>,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<(), NetError> {
        match self.call(&ServiceRequest::Put {
            branch: branch.into(),
            key: key.into(),
            value: value.into(),
        })? {
            ServiceResponse::Ok => Ok(()),
            r => Err(unexpected("Ok", &r)),
        }
    }

    /// Dumps a branch's full table.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn query(&mut self, branch: impl Into<String>) -> Result<Vec<(String, String)>, NetError> {
        match self.call(&ServiceRequest::Query {
            branch: branch.into(),
        })? {
            ServiceResponse::Table { entries } => Ok(entries),
            r => Err(unexpected("Table", &r)),
        }
    }

    /// Forks a branch.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn fork(&mut self, from: impl Into<String>, to: impl Into<String>) -> Result<(), NetError> {
        match self.call(&ServiceRequest::Fork {
            from: from.into(),
            to: to.into(),
        })? {
            ServiceResponse::Ok => Ok(()),
            r => Err(unexpected("Ok", &r)),
        }
    }

    /// Merges `from` into `into`.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn merge(
        &mut self,
        into: impl Into<String>,
        from: impl Into<String>,
    ) -> Result<(), NetError> {
        match self.call(&ServiceRequest::Merge {
            into: into.into(),
            from: from.into(),
        })? {
            ServiceResponse::Ok => Ok(()),
            r => Err(unexpected("Ok", &r)),
        }
    }

    /// Lists the session's visible branches.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn branches(&mut self) -> Result<Vec<String>, NetError> {
        match self.call(&ServiceRequest::Branches)? {
            ServiceResponse::BranchList { branches } => Ok(branches),
            r => Err(unexpected("BranchList", &r)),
        }
    }

    /// The node's status response, undigested.
    ///
    /// # Errors
    ///
    /// As [`ServiceClient::call`].
    pub fn status(&mut self) -> Result<ServiceResponse, NetError> {
        match self.call(&ServiceRequest::Status)? {
            s @ ServiceResponse::Status { .. } => Ok(s),
            r => Err(unexpected("Status", &r)),
        }
    }
}

fn unexpected(wanted: &str, got: &ServiceResponse) -> NetError {
    NetError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

//! Service-layer observability: the [`ServerMetrics`] bundle the daemon
//! updates when its [`Obs`] spine is enabled.
//!
//! Request latencies are per-request-type summaries
//! (`peepul_server_request_micros{kind="put"}`), resolved once at attach
//! time; per-tenant op counters and per-peer replication-lag gauges are
//! minted on demand from the shared registry because their label sets
//! (tenants, peers) are only known at runtime — the minted handles are
//! cached by the callers (the session caches its tenant counter at
//! `Hello`, the sync thread caches one gauge per configured peer).

use crate::service::ServiceRequest;
use peepul_obs::{Counter, EventRing, Gauge, Histogram, Obs, Registry, Subsystem, TraceLevel};
use std::sync::Arc;

/// The service request kinds, in tag order — the `kind` label values of
/// `peepul_server_request_micros`.
pub const REQUEST_KINDS: [&str; 10] = [
    "hello",
    "get",
    "put",
    "query",
    "fork",
    "merge",
    "branches",
    "status",
    "metrics",
    "trace-dump",
];

/// The index of a request's kind in [`REQUEST_KINDS`].
pub fn request_kind(req: &ServiceRequest) -> usize {
    match req {
        ServiceRequest::Hello { .. } => 0,
        ServiceRequest::Get { .. } => 1,
        ServiceRequest::Put { .. } => 2,
        ServiceRequest::Query { .. } => 3,
        ServiceRequest::Fork { .. } => 4,
        ServiceRequest::Merge { .. } => 5,
        ServiceRequest::Branches => 6,
        ServiceRequest::Status => 7,
        ServiceRequest::Metrics => 8,
        ServiceRequest::TraceDump => 9,
    }
}

/// Metric handles for the daemon's service traffic and fleet syncing.
#[derive(Debug)]
pub struct ServerMetrics {
    /// `peepul_server_requests_total` — service frames answered.
    pub requests_total: Counter,
    /// `peepul_server_request_micros{kind="..."}` — per-request-type
    /// latency, parallel to [`REQUEST_KINDS`].
    request_micros: Vec<Histogram>,
    /// `peepul_net_sync_rounds_total` — anti-entropy rounds completed.
    pub sync_rounds_total: Counter,
    /// `peepul_net_sync_round_micros` — whole-round duration (all peers).
    pub sync_round_micros: Histogram,
    /// The registry per-tenant counters and per-peer gauges are minted
    /// from.
    registry: Arc<Registry>,
    /// The trace ring request/sync events are recorded into.
    pub ring: Arc<EventRing>,
}

impl ServerMetrics {
    /// Resolves every fixed handle from `registry`, recording trace
    /// events into `ring`.
    pub fn register(registry: &Arc<Registry>, ring: Arc<EventRing>) -> Arc<ServerMetrics> {
        Arc::new(ServerMetrics {
            requests_total: registry.counter("peepul_server_requests_total"),
            request_micros: REQUEST_KINDS
                .iter()
                .map(|kind| {
                    registry.histogram(&format!("peepul_server_request_micros{{kind=\"{kind}\"}}"))
                })
                .collect(),
            sync_rounds_total: registry.counter("peepul_net_sync_rounds_total"),
            sync_round_micros: registry.histogram("peepul_net_sync_round_micros"),
            registry: Arc::clone(registry),
            ring,
        })
    }

    /// Attaches to an [`Obs`] spine: `Some` handles when the spine is
    /// enabled, `None` when it is disabled.
    pub fn attach(obs: &Obs) -> Option<Arc<ServerMetrics>> {
        obs.enabled()
            .then(|| ServerMetrics::register(obs.registry(), Arc::clone(obs.ring())))
    }

    /// Records one answered request: `kind` indexes [`REQUEST_KINDS`].
    pub fn observe_request(&self, kind: usize, micros: u64) {
        self.requests_total.inc();
        self.request_micros[kind].observe(micros);
        self.ring.record(
            Subsystem::Server,
            TraceLevel::Debug,
            "request",
            REQUEST_KINDS[kind],
            micros,
        );
    }

    /// The op counter for one tenant
    /// (`peepul_server_tenant_ops_total{tenant="..."}`) — minted on first
    /// use, cached by the session.
    pub fn tenant_ops(&self, tenant: &str) -> Counter {
        self.registry.counter(&format!(
            "peepul_server_tenant_ops_total{{tenant=\"{tenant}\"}}"
        ))
    }

    /// The replication-lag gauge for one peer
    /// (`peepul_net_lag_ticks{peer="..."}`): how many Lamport ticks the
    /// newest event this node has observed from the peer trails its own
    /// clock.
    pub fn peer_lag(&self, peer: &str) -> Gauge {
        self.registry
            .gauge(&format!("peepul_net_lag_ticks{{peer=\"{peer}\"}}"))
    }

    /// Records a server trace event at [`TraceLevel::Info`].
    #[inline]
    pub(crate) fn trace(&self, kind: &'static str, label: &str, value: u64) {
        self.ring
            .record(Subsystem::Server, TraceLevel::Info, kind, label, value);
    }
}

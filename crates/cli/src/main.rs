//! The `peepul-cli` binary: a scriptable client for `peepul-server`.
//!
//! ```text
//! peepul-cli --addr 127.0.0.1:7401 put main greeting hello
//! peepul-cli --addr 127.0.0.1:7401 get main greeting
//! peepul-cli --addr 127.0.0.1:7401 --tenant acme put main greeting hi
//! peepul-cli --addr 127.0.0.1:7401 serve-status
//! ```
//!
//! Output is plain text, one fact per line, made for shell pipelines:
//! `get` prints the value (exit 1 when unset), `query` prints
//! `key<TAB>value` lines, `branches` prints one name per line,
//! `serve-status` prints `field value` lines plus one
//! `branch <name> <head-hex> <state-hex>` line per branch — which is what
//! the fleet smoke test compares across nodes to assert convergence.
//! `watch` polls a key and prints each newly observed value until
//! `--count` changes were seen. `metrics` prints the node's Prometheus
//! exposition verbatim (scrape-ready); `top` polls it and prints
//! per-second rates for every counter that moved between samples.

use peepul_obs::parse_exposition;
use peepul_server::{ServiceClient, ServiceResponse};
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: peepul-cli --addr HOST:PORT [--tenant NAME] COMMAND\n\
         commands:\n\
         \x20 get BRANCH KEY                 print the value (exit 1 when unset)\n\
         \x20 put BRANCH KEY VALUE           write the value\n\
         \x20 query BRANCH                   print every key<TAB>value\n\
         \x20 watch BRANCH KEY [--interval-ms MS] [--count N]\n\
         \x20                                print each newly observed value\n\
         \x20 fork FROM TO                   create branch TO off FROM\n\
         \x20 merge INTO FROM                three-way merge FROM into INTO\n\
         \x20 branches                       print visible branch names\n\
         \x20 serve-status                   print node status and branch heads\n\
         \x20 metrics                        print the node's metric exposition\n\
         \x20 top [--interval-ms MS] [--count N]\n\
         \x20                                poll metrics, print counter rates/sec\n\
         \x20 trace-dump                     flush the node's trace ring to its\n\
         \x20                                --trace-dump path"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("peepul-cli: {msg}");
    std::process::exit(1);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut tenant = None;
    let mut rest = Vec::new();
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().unwrap_or_else(|| usage())),
            "--tenant" => tenant = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => {
                rest.push(arg);
                rest.extend(it);
                break;
            }
        }
    }
    let Some(addr) = addr else { usage() };
    if rest.is_empty() {
        usage();
    }

    let mut client = ServiceClient::connect(addr.as_str())
        .unwrap_or_else(|e| fail(format_args!("cannot connect to {addr}: {e}")));
    if let Some(tenant) = tenant {
        client.hello(tenant).unwrap_or_else(|e| fail(e));
    }

    let cmd = rest[0].as_str();
    let args = &rest[1..];
    match (cmd, args) {
        ("get", [branch, key]) => match client.get(branch, key).unwrap_or_else(|e| fail(e)) {
            Some(value) => println!("{value}"),
            None => std::process::exit(1),
        },
        ("put", [branch, key, value]) => {
            client.put(branch, key, value).unwrap_or_else(|e| fail(e));
        }
        ("query", [branch]) => {
            for (k, v) in client.query(branch).unwrap_or_else(|e| fail(e)) {
                println!("{k}\t{v}");
            }
        }
        ("watch", [branch, key, opts @ ..]) => watch(&mut client, branch, key, opts),
        ("fork", [from, to]) => {
            client.fork(from, to).unwrap_or_else(|e| fail(e));
        }
        ("merge", [into, from]) => {
            client.merge(into, from).unwrap_or_else(|e| fail(e));
        }
        ("branches", []) => {
            for b in client.branches().unwrap_or_else(|e| fail(e)) {
                println!("{b}");
            }
        }
        ("serve-status", []) => serve_status(&mut client),
        ("metrics", []) => {
            let text = client.metrics().unwrap_or_else(|e| fail(e));
            if text.is_empty() {
                fail("node reports no metrics (observability disabled?)");
            }
            print!("{text}");
        }
        ("top", opts) => top(&mut client, opts),
        ("trace-dump", []) => client.trace_dump().unwrap_or_else(|e| fail(e)),
        _ => usage(),
    }
}

/// Polls one key, printing each *newly observed* value (including the
/// first observation, even `unset`) until `--count` values were printed.
fn watch(client: &mut ServiceClient, branch: &str, key: &str, opts: &[String]) {
    let mut interval = Duration::from_millis(200);
    let mut count = u64::MAX;
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--interval-ms" => {
                interval = Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            "--count" => count = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let mut last: Option<Option<String>> = None;
    let mut printed = 0u64;
    while printed < count {
        let seen = client.get(branch, key).unwrap_or_else(|e| fail(e));
        if last.as_ref() != Some(&seen) {
            match &seen {
                Some(v) => println!("{v}"),
                None => println!("(unset)"),
            }
            printed += 1;
            last = Some(seen);
        }
        if printed < count {
            std::thread::sleep(interval);
        }
    }
}

fn serve_status(client: &mut ServiceClient) {
    let ServiceResponse::Status {
        node,
        tick,
        active_connections,
        peak_connections,
        connections_accepted,
        frames_served,
        uptime_secs,
        flush,
        disk_bytes,
        segments,
        branches,
    } = client.status().unwrap_or_else(|e| fail(e))
    else {
        fail("malformed status response");
    };
    println!("node {node}");
    println!("tick {tick}");
    println!("uptime-secs {uptime_secs}");
    println!("flush {flush}");
    println!("disk-bytes {disk_bytes}");
    println!("segments {segments}");
    println!("active-connections {active_connections}");
    println!("peak-connections {peak_connections}");
    println!("connections-accepted {connections_accepted}");
    println!("frames-served {frames_served}");
    for (name, head, state) in branches {
        println!("branch {name} {head} {state}");
    }
}

/// Polls the node's exposition, printing per-second rates for every
/// counter (and histogram `_count`) that moved since the previous sample.
/// One block per tick; `--count` bounds the number of blocks.
fn top(client: &mut ServiceClient, opts: &[String]) {
    let mut interval = Duration::from_millis(1000);
    let mut count = u64::MAX;
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--interval-ms" => {
                interval = Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
            }
            "--count" => count = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    let mut last: Option<(Instant, std::collections::BTreeMap<String, f64>)> = None;
    let mut printed = 0u64;
    while printed < count {
        let text = client.metrics().unwrap_or_else(|e| fail(e));
        let samples = parse_exposition(&text).unwrap_or_else(|e| fail(e));
        let now = Instant::now();
        // Counters and histogram counts — the monotone samples a
        // delta/sec is meaningful for.
        let cumulative: std::collections::BTreeMap<String, f64> = samples
            .iter()
            .filter(|s| s.name.ends_with("_total") || s.name.ends_with("_count"))
            .map(|s| {
                let mut key = s.name.clone();
                if !s.labels.is_empty() {
                    let labels: Vec<String> = s
                        .labels
                        .iter()
                        .map(|(k, v)| format!("{k}=\"{v}\""))
                        .collect();
                    key = format!("{key}{{{}}}", labels.join(","));
                }
                (key, s.value)
            })
            .collect();
        if let Some((before, prev)) = &last {
            let secs = now.duration_since(*before).as_secs_f64().max(1e-9);
            let mut moved: Vec<(String, f64, f64)> = cumulative
                .iter()
                .filter_map(|(name, v)| {
                    let delta = v - prev.get(name).copied().unwrap_or(0.0);
                    (delta > 0.0).then(|| (name.clone(), delta / secs, *v))
                })
                .collect();
            moved.sort_by(|a, b| b.1.total_cmp(&a.1));
            println!("-- {:.1}s", secs);
            if moved.is_empty() {
                println!("(idle)");
            }
            for (name, rate, total) in moved {
                println!("{name}\t{rate:.1}/s\t{total}");
            }
            printed += 1;
        }
        last = Some((now, cumulative));
        if printed < count {
            std::thread::sleep(interval);
        }
    }
}
